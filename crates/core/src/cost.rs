//! Analytic cost models for the three MWU variants.
//!
//! Two layers, matching the paper:
//!
//! 1. **Table I asymptotics** (§II-C): communication congestion, per-node
//!    memory overhead, convergence time, and minimum agents, expressed
//!    uniformly in `k` (options), `n` (nodes), ε (error tolerance) and
//!    δ = ln(β/(1−β)) (the attention parameter of Distributed). The
//!    functions here evaluate those bounds at concrete parameter values —
//!    the "solve for one in terms of the other, for clarity" exercise the
//!    paper performs so practitioners can compare variants directly.
//!
//! 2. **The weighted decision model** (§IV-E.1): a practitioner assigns
//!    weights encoding the relative importance of communication cost,
//!    convergence time, CPU demand and memory; the model then predicts
//!    which variant minimizes total cost. §IV-E.2's concrete
//!    recommendations — e.g. APR's expensive-evaluation/cheap-communication
//!    regime favors Standard or Slate — fall out of [`WeightedCostModel::recommend`].

use serde::{Deserialize, Serialize};

/// The three MWU realizations compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Weighted-majority with full information (Fig. 1).
    Standard,
    /// Fixed-size subset selection (Fig. 2).
    Slate,
    /// Memoryless population protocol (Fig. 3).
    Distributed,
}

impl Variant {
    /// All variants, in the paper's column order.
    pub const ALL: [Variant; 3] = [Variant::Standard, Variant::Distributed, Variant::Slate];

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Standard => "standard",
            Variant::Slate => "slate",
            Variant::Distributed => "distributed",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem parameters at which the asymptotic bounds are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Number of options `k`.
    pub k: usize,
    /// Number of nodes / parallel agents `n`.
    pub n: usize,
    /// Error tolerance ε (paper default 0.05).
    pub epsilon: f64,
    /// Attention parameter δ = ln(β/(1−β)) (β = 0.9 ⇒ δ ≈ 2.197).
    pub delta: f64,
}

impl CostParams {
    /// Paper-default tolerances with explicit `k` and `n`.
    pub fn new(k: usize, n: usize) -> Self {
        Self {
            k,
            n,
            epsilon: 0.05,
            delta: (0.9f64 / 0.1).ln(),
        }
    }
}

/// Each variant's default operating point for a `k`-option problem under
/// the paper's §IV-B parameter settings: Standard synchronizes `k` agents
/// (full information), Slate a γ·k-sized slate, Distributed a `k^{3/2}`
/// population.
pub fn default_operating_point(variant: Variant, k: usize) -> CostParams {
    let n = match variant {
        Variant::Standard => k,
        Variant::Slate => ((0.05 * k as f64).ceil() as usize).clamp(2, k),
        Variant::Distributed => (k as f64).powf(1.5).ceil() as usize,
    };
    CostParams::new(k, n)
}

/// Table I, one row set per variant, evaluated at concrete parameters.
///
/// Units are "abstract cost" — the constants hidden by O(·) are set to 1, so
/// only *comparisons across variants* and *scaling in k, n* are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsymptoticCosts {
    /// Which variant this row describes.
    pub variant: Variant,
    /// Expected congestion of the heaviest-hit node per round.
    pub communication: f64,
    /// Per-node memory overhead (weight-vector coordinates held locally).
    pub memory: f64,
    /// Update cycles until the weights converge.
    pub convergence_time: f64,
    /// Minimum number of agents required to run the variant at all.
    pub min_agents: f64,
}

/// Evaluate Table I for one variant.
///
/// * Standard — communication `O(n)`, memory `O(k)`, convergence
///   `O(ln k / ε²)`, min agents `O(n)` (one agent per evaluated option,
///   `n = k` under full information).
/// * Slate — communication `O(n)` (the slate synchronizes globally), memory
///   `O(k)`, convergence `O((k/n)·ln k / ε²)` — slower than Standard by the
///   subset ratio because only `n` of `k` options learn per cycle — and min
///   agents `O(n)` with `n` the slate size.
/// * Distributed — communication `O(ln n / ln ln n)` w.h.p.
///   (balls-into-bins), memory `O(1)`, convergence `O(ln k / δ)`, and
///   min agents `O(k^{3/2})`: the population must be large enough that the
///   implicit weight vector does not lose diversity prematurely (§II-C;
///   this is the super-linear agent demand that makes the two largest
///   scenarios of Tables II–IV intractable).
pub fn asymptotic_costs(variant: Variant, p: &CostParams) -> AsymptoticCosts {
    let k = p.k as f64;
    let n = p.n.max(2) as f64;
    let ln_k = k.max(2.0).ln();
    let ln_n = n.ln();
    match variant {
        Variant::Standard => AsymptoticCosts {
            variant,
            communication: n,
            memory: k,
            convergence_time: ln_k / (p.epsilon * p.epsilon),
            min_agents: n,
        },
        Variant::Slate => AsymptoticCosts {
            variant,
            communication: n,
            memory: k,
            convergence_time: (k / n) * ln_k / (p.epsilon * p.epsilon),
            min_agents: n,
        },
        Variant::Distributed => AsymptoticCosts {
            variant,
            communication: ln_n / ln_n.ln().max(1.0),
            memory: 1.0,
            convergence_time: ln_k / p.delta,
            min_agents: k.powf(1.5),
        },
    }
}

/// Relative importance weights for the §IV-E.1 decision model:
/// `cost = α·communication + β·convergence (+ γ·cpus + θ·memory)`.
///
/// The paper's simple example uses only α (communication) and β
/// (convergence); the CPU and memory weights extend it per §IV-E.1's
/// discussion of CPU-constrained and memory-relevant regimes (set them to
/// zero to recover the two-term model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// α — price of one unit of per-round communication congestion.
    pub communication: f64,
    /// β — price of one update cycle of convergence time. In the paper's
    /// framing this is dominated by the cost of *evaluating an option*
    /// (e.g. running a test suite), which is why APR has large β.
    pub convergence: f64,
    /// γ — price of occupying one CPU for the whole run.
    pub cpus: f64,
    /// θ — price of one coordinate of per-node memory.
    pub memory: f64,
}

impl CostWeights {
    /// The paper's two-term example model (communication + convergence).
    pub fn two_term(communication: f64, convergence: f64) -> Self {
        Self {
            communication,
            convergence,
            cpus: 0.0,
            memory: 0.0,
        }
    }

    /// The APR regime of §IV-E.2: evaluating an option is expensive
    /// (running a test suite takes minutes–hours) while the information
    /// communicated per process is small, i.e. α ≪ β — **and** every
    /// occupied CPU pays that evaluation price on every cycle, so CPU
    /// demand is priced too. The paper's resolution of the two-term model
    /// (which "clearly favors Distributed") is exactly that "a model in
    /// which the number of CPUs used in each iteration is weighted ...
    /// will prefer Standard instead"; APR is such a model because each
    /// CPU-iteration is a test-suite execution.
    pub fn apr_regime() -> Self {
        Self {
            communication: 1.0,
            convergence: 100.0,
            cpus: 10.0,
            memory: 0.0,
        }
    }

    /// A communication-bound regime (e.g. geo-distributed agents with cheap
    /// local evaluation): α ≫ β.
    pub fn communication_bound() -> Self {
        Self::two_term(1_000.0, 1.0)
    }

    /// A CPU-constrained regime: parallel resources are the scarce quantity.
    pub fn cpu_constrained() -> Self {
        Self {
            communication: 1.0,
            convergence: 1.0,
            cpus: 100.0,
            memory: 0.0,
        }
    }
}

/// The §IV-E.1 weighted decision model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedCostModel {
    /// The feature prices.
    pub weights: CostWeights,
}

impl WeightedCostModel {
    /// Build from weights.
    pub fn new(weights: CostWeights) -> Self {
        Self { weights }
    }

    /// Total predicted cost of running `variant` at parameters `p`.
    pub fn cost(&self, variant: Variant, p: &CostParams) -> f64 {
        let a = asymptotic_costs(variant, p);
        self.weights.communication * a.communication
            + self.weights.convergence * a.convergence_time
            + self.weights.cpus * a.min_agents
            + self.weights.memory * a.memory
    }

    /// The variant this model predicts is cheapest at `p`.
    pub fn recommend(&self, p: &CostParams) -> Variant {
        let mut best = Variant::Standard;
        let mut best_cost = self.cost(best, p);
        for v in [Variant::Distributed, Variant::Slate] {
            let c = self.cost(v, p);
            if c < best_cost {
                best_cost = c;
                best = v;
            }
        }
        best
    }

    /// Cost of every variant, in [`Variant::ALL`] order.
    pub fn costs(&self, p: &CostParams) -> [(Variant, f64); 3] {
        [
            (Variant::Standard, self.cost(Variant::Standard, p)),
            (Variant::Distributed, self.cost(Variant::Distributed, p)),
            (Variant::Slate, self.cost(Variant::Slate, p)),
        ]
    }

    /// Cost of a variant at its own default operating point for `k`
    /// options (Standard: n = k; Slate: n = slate size; Distributed:
    /// n = population).
    pub fn cost_at_default(&self, variant: Variant, k: usize) -> f64 {
        self.cost(variant, &default_operating_point(variant, k))
    }

    /// The cheapest variant for a `k`-option problem, each evaluated at its
    /// own default operating point.
    pub fn recommend_for_k(&self, k: usize) -> Variant {
        let mut best = Variant::Standard;
        let mut best_cost = self.cost_at_default(best, k);
        for v in [Variant::Distributed, Variant::Slate] {
            let c = self.cost_at_default(v, k);
            if c < best_cost {
                best_cost = c;
                best = v;
            }
        }
        best
    }
}

/// Probability that at least one of `m` trials lands in the worst `worst_k`
/// of `n` equally likely outcomes: `1 − ((n − worst_k)/n)^m`.
///
/// This is the paper's §III-C synchronization-tail argument: with 64
/// threads each drawing a mutation count in 1..=100, some thread draws from
/// the worst decile with probability ≈ 99.9 %, so *every* synchronized
/// iteration pays near-worst-case latency — the motivation for precomputing
/// safe mutations.
pub fn prob_worst_case_hit(n: u64, worst_k: u64, m: u64) -> f64 {
    assert!(worst_k <= n && n > 0);
    1.0 - ((n - worst_k) as f64 / n as f64).powi(m as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(k: usize, n: usize) -> CostParams {
        CostParams::new(k, n)
    }

    #[test]
    fn table1_orderings_hold() {
        let p = params(1024, 64);
        let std = asymptotic_costs(Variant::Standard, &p);
        let slate = asymptotic_costs(Variant::Slate, &p);
        let dist = asymptotic_costs(Variant::Distributed, &p);

        // Communication: Distributed ≪ Standard = Slate.
        assert!(dist.communication < std.communication);
        assert_eq!(std.communication, slate.communication);
        // Memory: Distributed O(1) vs O(k).
        assert_eq!(dist.memory, 1.0);
        assert_eq!(std.memory, 1024.0);
        // Convergence: Slate slower than Standard (subset ratio),
        // Distributed comparable to Standard.
        assert!(slate.convergence_time > std.convergence_time);
        assert!(dist.convergence_time < slate.convergence_time);
        // Agents: Distributed needs super-linearly many.
        assert!(dist.min_agents > std.min_agents);
        assert!((dist.min_agents - 1024f64.powf(1.5)).abs() < 1e-6);
    }

    #[test]
    fn communication_bound_model_prefers_distributed() {
        let m = WeightedCostModel::new(CostWeights::communication_bound());
        assert_eq!(m.recommend(&params(1024, 256)), Variant::Distributed);
    }

    #[test]
    fn apr_regime_prefers_standard_or_slate() {
        // §IV-E.2: evaluation expensive, communication cheap ⇒ Distributed's
        // communication edge cannot pay for its CPU/convergence profile.
        let m = WeightedCostModel::new(CostWeights::apr_regime());
        let rec = m.recommend(&params(1024, 1024));
        assert!(
            rec == Variant::Standard || rec == Variant::Slate,
            "recommended {rec}"
        );
    }

    #[test]
    fn two_term_model_favors_distributed_as_paper_notes() {
        // §IV-E.1: "this analysis clearly favors Distributed" for the
        // bare communication+convergence model.
        let m = WeightedCostModel::new(CostWeights::two_term(1.0, 1.0));
        assert_eq!(m.recommend(&params(1024, 256)), Variant::Distributed);
    }

    #[test]
    fn cpu_constrained_model_penalizes_distributed() {
        let m = WeightedCostModel::new(CostWeights::cpu_constrained());
        let p = params(4096, 64);
        let c_dist = m.cost(Variant::Distributed, &p);
        let c_std = m.cost(Variant::Standard, &p);
        assert!(c_std < c_dist);
        assert_ne!(m.recommend(&p), Variant::Distributed);
    }

    #[test]
    fn costs_array_is_consistent_with_recommend() {
        let m = WeightedCostModel::new(CostWeights::two_term(3.0, 7.0));
        let p = params(512, 128);
        let costs = m.costs(&p);
        let best = costs.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
        assert_eq!(best, m.recommend(&p));
    }

    #[test]
    fn default_operating_points() {
        assert_eq!(default_operating_point(Variant::Standard, 1024).n, 1024);
        assert_eq!(default_operating_point(Variant::Slate, 1024).n, 52);
        assert_eq!(default_operating_point(Variant::Distributed, 1024).n, 32768);
        // Tiny k clamps the slate to at least 2.
        assert_eq!(default_operating_point(Variant::Slate, 10).n, 2);
    }

    #[test]
    fn recommend_for_k_uses_per_variant_points() {
        // At each variant's own operating point, Slate's slate is small, so
        // its communication term is far below Standard's.
        let m = WeightedCostModel::new(CostWeights::two_term(1.0, 0.0));
        let c_std = m.cost_at_default(Variant::Standard, 1024);
        let c_slate = m.cost_at_default(Variant::Slate, 1024);
        assert!(c_slate < c_std);
        // Communication-only pricing recommends Distributed overall.
        assert_eq!(m.recommend_for_k(1024), Variant::Distributed);
    }

    #[test]
    fn worst_case_hit_matches_paper_example() {
        // "64 threads choosing between 1 and 100 mutations ... worst 10% of
        // outcomes with probability 1 − (90/100)^64 ≈ 99.9%."
        let p = prob_worst_case_hit(100, 10, 64);
        assert!((p - 0.99882).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn worst_case_hit_edges() {
        assert_eq!(prob_worst_case_hit(10, 0, 5), 0.0);
        assert!((prob_worst_case_hit(10, 10, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variant_display_names() {
        assert_eq!(Variant::Standard.to_string(), "standard");
        assert_eq!(Variant::Slate.to_string(), "slate");
        assert_eq!(Variant::Distributed.to_string(), "distributed");
    }
}
