//! Slate MWU — fixed-size subset selection (paper Fig. 2, after Kale,
//! Reyzin & Schapire's "slates" bandit).
//!
//! Each iteration selects a *slate* of `s` options; only the slate members
//! are evaluated and only their weights are updated (importance-weighted by
//! their inclusion probability). The paper notes (§II-C) that choosing a
//! slate naively — projecting the weight vector onto each of the C(k, s)
//! subsets — is prohibitively expensive, but because the weight vector can
//! be **capped** at `1/s` and renormalized, the scaled vector `q = s·p` lies
//! in the convex hull of the slate indicator vectors and can be decomposed
//! into a convex combination of at most `k` slates in `O(k²)` time.
//!
//! This module implements both that decomposition
//! ([`decompose_into_slates`]) and the operationally-equivalent systematic
//! sampling procedure ([`systematic_sample`]) which achieves the same
//! per-arm inclusion probabilities in `O(k)` per draw; the default
//! configuration uses systematic sampling, and an ablation benchmark
//! compares the two.
//!
//! ## Round-kernel allocation discipline
//!
//! One `plan` + `update` round performs zero heap allocations in the steady
//! state: the mix/cap/inclusion pipeline writes into persistent scratch
//! vectors owned by [`SlateMwu`], the samplers write into the reused plan
//! buffer, and the convex decomposition peels into a flat, pre-reserved
//! [`DecompScratch`]. The allocating public functions remain as thin
//! wrappers over the scratch kernels, so both forms perform bit-identical
//! float operations (see `docs/PERFORMANCE.md`).

use crate::convergence::{ConvergenceCriterion, ConvergenceState};
use crate::cost::Variant;
use crate::weights::WeightVector;
use crate::{CommStats, MwuAlgorithm};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Error, Serialize, Value};

/// How the slate is drawn from the capped inclusion probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlateSampling {
    /// Systematic (stratified) sampling: `O(k)` per draw, inclusion
    /// probability of arm `i` exactly `q_i`. Default.
    Systematic,
    /// Full convex decomposition of `q` into slate vertices, then sample a
    /// vertex: `O(k²)` per draw. Matches the paper's description literally;
    /// used by tests and the ablation bench.
    ConvexDecomposition,
}

/// Configuration for [`SlateMwu`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlateConfig {
    /// Exploration rate γ: the probability mass mixed uniformly over all
    /// options (paper §IV-B sets γ = 0.05). Also determines the default
    /// slate size.
    pub gamma: f64,
    /// Slate size `s`. `None` derives the paper's setting `s = ⌈γ·k⌉`
    /// (clamped to `[2, k]`) — the fixed γ "sets the k/n ratio to a
    /// constant" (§IV-F.1).
    pub slate_size: Option<usize>,
    /// Learning rate for the exponential update. `None` derives
    /// `η = 2·γ·s/k`, which bounds each exponent by
    /// `η/q_min = 2·η·k/(2·s·γ) = 2` and so keeps single-round weight
    /// multipliers ≤ e².
    pub eta: Option<f64>,
    /// Convergence tolerance on the leader's slate-inclusion probability
    /// (paper §IV-C: 1e-5). Slate converges when that probability is within
    /// the tolerance of its maximum possible value — i.e. the leader's
    /// weight has saturated the 1/s cap, so the leader sits in *every*
    /// slate. Unlike Standard's full-probability ceiling, this target is
    /// reachable even among near-tied options (up to `s` options can
    /// saturate the cap simultaneously), so Slate keeps the paper's strict
    /// reading. It is also why Slate is the slowest variant in update
    /// cycles and sometimes fails to converge within the budget (§IV-C).
    pub tolerance: f64,
    /// Quiet-streak length if stabilization-based convergence is wanted
    /// instead (ablation); `0` (default) selects the cap-saturation rule.
    pub stability_window: usize,
    /// Sampling backend.
    pub sampling: SlateSampling,
}

impl Default for SlateConfig {
    fn default() -> Self {
        Self {
            gamma: 0.05,
            slate_size: None,
            eta: None,
            tolerance: crate::convergence::DEFAULT_TOLERANCE,
            stability_window: 0,
            sampling: SlateSampling::Systematic,
        }
    }
}

/// Reusable working storage for the greedy convex decomposition.
///
/// The slates are stored flattened (`slates[j·s .. (j+1)·s]` is slate `j`,
/// weighted by `lambdas[j]`), so one decomposition touches exactly four
/// persistent vectors and allocates nothing once their capacity has grown to
/// the worst case (reserved up front by [`decompose_into_scratch`]).
#[derive(Debug, Clone, Default)]
struct DecompScratch {
    /// Residual inclusion mass per arm.
    r: Vec<f64>,
    /// Index permutation, re-sorted by residual each peeling step.
    order: Vec<usize>,
    /// Convex coefficients λ_j.
    lambdas: Vec<f64>,
    /// Flattened slates, stride `s`.
    slates: Vec<usize>,
}

impl DecompScratch {
    /// Drop all held state, keeping allocations.
    fn clear(&mut self) {
        self.r.clear();
        self.order.clear();
        self.lambdas.clear();
        self.slates.clear();
    }

    /// Number of `(λ, slate)` entries currently held.
    fn len(&self) -> usize {
        self.lambdas.len()
    }

    /// Draw one slate (vertex sampled ∝ λ) into `out`. Performs the same
    /// RNG draw and float operations as [`sample_decomposition`].
    fn sample_into(&self, s: usize, rng: &mut SmallRng, out: &mut Vec<usize>) {
        let total: f64 = self.lambdas.iter().sum();
        let mut u: f64 = rng.gen::<f64>() * total;
        out.clear();
        for (j, &lambda) in self.lambdas.iter().enumerate() {
            if u < lambda {
                out.extend_from_slice(&self.slates[j * s..(j + 1) * s]);
                return;
            }
            u -= lambda;
        }
        // Rounding tail: the last slate (mirrors `sample_decomposition`).
        if let Some(j) = self.len().checked_sub(1) {
            out.extend_from_slice(&self.slates[j * s..(j + 1) * s]);
        }
    }
}

/// The Slate MWU algorithm.
///
/// ```
/// use mwu_core::prelude::*;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut alg = SlateMwu::new(20, SlateConfig::default());
/// assert!(alg.slate_size() >= 2);
/// let mut bandit = ValueBandit::exact(mwu_core::bandit::random_values(20, 9));
/// let mut rng = SmallRng::seed_from_u64(0);
/// for _ in 0..3000 {
///     let plan = alg.plan(&mut rng).to_vec();
///     let rewards: Vec<f64> =
///         plan.iter().map(|&a| bandit.pull(a, &mut rng)).collect();
///     alg.update(&rewards, &mut rng);
/// }
/// // The leader should be among the top arms.
/// let v = bandit.expected_value(alg.leader());
/// assert!(v > 0.8 * bandit.best_value());
/// ```
#[derive(Debug, Clone)]
pub struct SlateMwu {
    weights: WeightVector,
    config: SlateConfig,
    slate_size: usize,
    eta: f64,
    convergence: ConvergenceState,
    comm: CommStats,
    iteration: usize,
    plan_buf: Vec<usize>,
    /// Inclusion probability q_i of each planned arm, aligned with plan_buf.
    plan_q: Vec<f64>,
    /// Last computed full inclusion-probability vector (for leader share).
    inclusion: Vec<f64>,
    /// Scratch: γ-mixed-and-capped weights (fused plan pipeline stage 1).
    capped_scratch: WeightVector,
    /// Scratch: water-filling flags for `mix_capped_into`.
    cap_fixed: Vec<bool>,
    /// Scratch: cumulative-sum axis for systematic sampling.
    sys_acc: Vec<f64>,
    /// Scratch: batched `(arm, multiplier)` pairs for `update`.
    update_scratch: Vec<(usize, f64)>,
    /// Scratch: convex-decomposition working set (ConvexDecomposition mode).
    decomp: DecompScratch,
}

impl SlateMwu {
    /// Create over `k` options.
    ///
    /// # Panics
    /// Panics if `k == 0`, γ ∉ (0, 1), or an explicit slate size is outside
    /// `[1, k]`.
    pub fn new(k: usize, config: SlateConfig) -> Self {
        assert!(k > 0, "need at least one option");
        assert!(
            config.gamma > 0.0 && config.gamma < 1.0,
            "gamma must lie in (0, 1)"
        );
        let s = config
            .slate_size
            .unwrap_or_else(|| ((config.gamma * k as f64).ceil() as usize).clamp(2, k))
            .min(k);
        assert!(s >= 1, "slate size must be positive");
        let eta = config
            .eta
            .unwrap_or(2.0 * config.gamma * s as f64 / k as f64);
        assert!(eta > 0.0, "eta must be positive");
        // Ceiling on the leader's inclusion probability: capping at 1/s
        // means a fully-converged leader has q = 1 exactly (it is in every
        // slate), provided (1−γ) + γ/k ≥ 1/s; for s ≥ 2 and γ = 0.05 this
        // always holds, so max possible is 1.
        let max_possible = 1.0f64.min(s as f64 * ((1.0 - config.gamma) + config.gamma / k as f64));
        let criterion = if config.stability_window > 0 || s == k {
            // A full slate (s == k) degenerates to full information and
            // every option's inclusion probability is constantly 1 — the
            // cap-saturation rule would fire immediately. Track the weight
            // share's stabilization instead (see `leader_share`).
            ConvergenceCriterion::LeaderShareStabilized {
                tolerance: config.tolerance,
                window: if config.stability_window > 0 {
                    config.stability_window
                } else {
                    crate::convergence::DEFAULT_STABILITY_WINDOW
                },
            }
        } else {
            ConvergenceCriterion::WithinToleranceOfMax {
                tolerance: config.tolerance,
                max_possible,
            }
        };
        Self {
            weights: WeightVector::uniform(k),
            config,
            slate_size: s,
            eta,
            convergence: ConvergenceState::new(criterion),
            comm: CommStats::default(),
            iteration: 0,
            plan_buf: Vec::with_capacity(s),
            plan_q: Vec::with_capacity(s),
            inclusion: vec![s as f64 / k as f64; k],
            capped_scratch: WeightVector::uniform(k),
            cap_fixed: Vec::with_capacity(k),
            sys_acc: Vec::with_capacity(k),
            update_scratch: Vec::with_capacity(s),
            decomp: DecompScratch::default(),
        }
    }

    /// Reset to the exact state of a fresh `new(k, config)` while keeping
    /// every buffer's allocation — the [`crate::arena::ThreadArena`] reuse
    /// contract. Trajectories after a reset are bit-identical to a fresh
    /// instance's.
    pub fn reset(&mut self) {
        let k = self.weights.len();
        self.weights.reset_uniform();
        self.convergence = ConvergenceState::new(self.convergence.criterion());
        self.comm = CommStats::default();
        self.iteration = 0;
        self.plan_buf.clear();
        self.plan_q.clear();
        self.inclusion.fill(self.slate_size as f64 / k as f64);
        self.capped_scratch.reset_uniform();
        self.cap_fixed.clear();
        self.sys_acc.clear();
        self.update_scratch.clear();
        self.decomp.clear();
    }

    /// The configuration in force.
    pub fn config(&self) -> &SlateConfig {
        &self.config
    }

    /// The slate size `s` in force.
    pub fn slate_size(&self) -> usize {
        self.slate_size
    }

    /// The derived learning rate η.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The current (uncapped) weight vector.
    pub fn weights(&self) -> &WeightVector {
        &self.weights
    }

    /// Completed update cycles.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The floor applied to a planned arm's inclusion probability before it
    /// divides the importance weight in [`MwuAlgorithm::update`].
    ///
    /// On the valid path every arm in a slate has `q_i ≥ s·γ/k` up to
    /// rounding (the γ-mix floors the mixed weight at `γ/k` and the 1/s cap
    /// only scales free coordinates *up*), so half that bound can never
    /// bind on a legitimately sampled arm — it exists to keep the update
    /// exponent ≤ `η/(γ·s/(2k)) = 4` (with the derived η) even if a
    /// numerically degenerate `q` sneaks through, instead of the unbounded
    /// exponent the historical `1e-12` clamp allowed.
    pub fn inclusion_floor(&self) -> f64 {
        0.5 * self.config.gamma * self.slate_size as f64 / self.weights.len() as f64
    }

    /// Inclusion probabilities `q_i = s·p_i^{capped}` from the current
    /// weights: the chance each arm appears in the next slate.
    ///
    /// Allocating convenience; the plan path computes the same values into
    /// persistent scratch.
    pub fn inclusion_probabilities(&self) -> Vec<f64> {
        let k = self.weights.len();
        let s = self.slate_size;
        let mixed = self.weights.mix_uniform(self.config.gamma);
        let capped = mixed.capped(1.0 / s as f64);
        (0..k)
            .map(|i| (s as f64 * capped.get(i)).min(1.0))
            .collect()
    }
}

impl MwuAlgorithm for SlateMwu {
    fn num_arms(&self) -> usize {
        self.weights.len()
    }

    fn plan(&mut self, rng: &mut SmallRng) -> &[usize] {
        let s = self.slate_size;
        // Inclusion pipeline, all in persistent scratch: mix the exploration
        // floor in, cap at 1/s (one fused pass), scale by s. Same float
        // operations as `inclusion_probabilities()`.
        self.weights.mix_capped_into(
            self.config.gamma,
            1.0 / s as f64,
            &mut self.cap_fixed,
            &mut self.capped_scratch,
        );
        let capped = &self.capped_scratch;
        self.inclusion.clear();
        self.inclusion.extend(
            capped
                .probabilities()
                .iter()
                .map(|&p| (s as f64 * p).min(1.0)),
        );
        {
            let _span = crate::prof::span(crate::prof::Phase::Sample);
            match self.config.sampling {
                SlateSampling::Systematic => {
                    systematic_sample_with_scratch(
                        &self.inclusion,
                        s,
                        rng,
                        &mut self.sys_acc,
                        &mut self.plan_buf,
                    );
                }
                SlateSampling::ConvexDecomposition => {
                    decompose_into_scratch(&self.inclusion, s, &mut self.decomp);
                    self.decomp.sample_into(s, rng, &mut self.plan_buf);
                }
            }
        }
        self.plan_q.clear();
        for &i in &self.plan_buf {
            self.plan_q.push(self.inclusion[i]);
        }
        &self.plan_buf
    }

    fn update(&mut self, rewards: &[f64], _rng: &mut SmallRng) {
        assert_eq!(
            rewards.len(),
            self.plan_buf.len(),
            "Slate expects one reward per slate member"
        );
        self.iteration += 1;
        // Importance-weighted exponential update on the sampled arms only:
        // ŵ_i ← ŵ_i · exp(η · r_i / q_i). Unbiased: E[r_i/q_i · 1{i∈S}] = v_i.
        // Batched so the O(k) renormalization happens once per round, not
        // once per sampled arm. The floor (see `inclusion_floor`) bounds the
        // exponent without ever binding on legitimately sampled arms.
        let q_floor = self.inclusion_floor();
        self.update_scratch.clear();
        for (j, &arm) in self.plan_buf.iter().enumerate() {
            let q = self.plan_q[j].max(q_floor);
            let g_hat = crate::sanitize_reward(rewards[j]) / q;
            self.update_scratch.push((arm, (self.eta * g_hat).exp()));
        }
        self.weights.scale_many(&self.update_scratch);
        // The slate's s agents synchronize with the weight master each round.
        self.comm
            .record_round(self.slate_size, 2 * self.slate_size as u64);
        self.convergence
            .observe(self.iteration, self.leader_share());
    }

    fn leader(&self) -> usize {
        self.weights.argmax()
    }

    /// The leader's *inclusion probability* in the next slate — the quantity
    /// the paper's convergence criterion tracks for Slate. With a full
    /// slate (s == k, where inclusion is constantly 1) the weight share is
    /// tracked instead.
    fn leader_share(&self) -> f64 {
        if self.slate_size == self.weights.len() {
            self.weights.max_probability()
        } else {
            self.inclusion[self.weights.argmax()]
        }
    }

    fn has_converged(&self) -> bool {
        self.convergence.has_converged()
    }

    fn cpus_per_iteration(&self) -> usize {
        self.slate_size
    }

    fn probabilities(&self) -> Vec<f64> {
        self.weights.probabilities().to_vec()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        self.weights.probabilities_into(out);
    }

    fn comm_stats(&self) -> CommStats {
        self.comm
    }

    fn name(&self) -> &'static str {
        "slate"
    }

    fn variant(&self) -> Variant {
        Variant::Slate
    }
}

// The scratch buffers are derived state rebuilt by the next `plan`, so the
// serialized form carries exactly the ten logical fields the derive used to
// emit (the vendored serde_derive has no `#[serde(skip)]`, hence the manual
// impls). Checkpoint compatibility: field names and order are unchanged.
impl Serialize for SlateMwu {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("weights".to_string(), self.weights.to_value()),
            ("config".to_string(), self.config.to_value()),
            ("slate_size".to_string(), self.slate_size.to_value()),
            ("eta".to_string(), self.eta.to_value()),
            ("convergence".to_string(), self.convergence.to_value()),
            ("comm".to_string(), self.comm.to_value()),
            ("iteration".to_string(), self.iteration.to_value()),
            ("plan_buf".to_string(), self.plan_buf.to_value()),
            ("plan_q".to_string(), self.plan_q.to_value()),
            ("inclusion".to_string(), self.inclusion.to_value()),
        ])
    }
}

impl Deserialize for SlateMwu {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let weights = WeightVector::from_value(v.field("weights"))?;
        let k = weights.len();
        let slate_size = usize::from_value(v.field("slate_size"))?;
        Ok(Self {
            weights,
            config: SlateConfig::from_value(v.field("config"))?,
            slate_size,
            eta: f64::from_value(v.field("eta"))?,
            convergence: ConvergenceState::from_value(v.field("convergence"))?,
            comm: CommStats::from_value(v.field("comm"))?,
            iteration: usize::from_value(v.field("iteration"))?,
            plan_buf: Vec::<usize>::from_value(v.field("plan_buf"))?,
            plan_q: Vec::<f64>::from_value(v.field("plan_q"))?,
            inclusion: Vec::<f64>::from_value(v.field("inclusion"))?,
            capped_scratch: WeightVector::uniform(k),
            cap_fixed: Vec::with_capacity(k),
            sys_acc: Vec::with_capacity(k),
            update_scratch: Vec::with_capacity(slate_size),
            decomp: DecompScratch::default(),
        })
    }
}

/// Systematic sampling of a size-`s` subset with inclusion probabilities
/// exactly `q` (requires `Σq = s` and `0 ≤ q_i ≤ 1`).
///
/// One uniform draw `u` places `s` equally-spaced points `u, u+1, …, u+s−1`
/// on the cumulative-sum axis of `q`; the arms whose cumulative intervals
/// contain a point are selected. `O(k)` time, `O(s)` output.
pub fn systematic_sample(q: &[f64], s: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut out = Vec::with_capacity(s);
    systematic_sample_into(q, s, rng, &mut out);
    out
}

/// [`systematic_sample`] into a reused output buffer (cleared first): the
/// allocation-free form used by the `SlateMwu` plan path. Same RNG draw,
/// same float operations, same selected arms.
pub fn systematic_sample_into(q: &[f64], s: usize, rng: &mut SmallRng, out: &mut Vec<usize>) {
    // Validation only in debug builds: the summation is a serial FP
    // dependency chain as long as the sampling scan itself, and the
    // optimizer is not guaranteed to eliminate it through the iterator.
    #[cfg(debug_assertions)]
    {
        debug_assert!(q.iter().all(|&x| (-1e-9..=1.0 + 1e-9).contains(&x)));
        let total: f64 = q.iter().sum();
        debug_assert!(
            (total - s as f64).abs() < 1e-6,
            "inclusion probabilities must sum to s (got {total}, s={s})"
        );
    }
    let u: f64 = rng.gen::<f64>();
    out.clear();
    let mut acc = 0.0;
    let mut next = u; // next sampling point
    for (i, &qi) in q.iter().enumerate() {
        acc += qi.max(0.0);
        while next < acc - 1e-15 && out.len() < s {
            out.push(i);
            next += 1.0;
        }
    }
    // Floating-point slack: pad from the end if a point fell off the axis.
    let mut fill = q.len();
    while out.len() < s && fill > 0 {
        fill -= 1;
        if !out.contains(&fill) {
            out.push(fill);
        }
    }
}

/// [`systematic_sample_into`] with caller-provided prefix-sum scratch: the
/// round-kernel form used by `SlateMwu`.
///
/// The linear scan interleaves the serial `acc += q_i` dependency chain with
/// a data-dependent branch per arm; this form first materializes the prefix
/// sums (the *same* `acc += q_i.max(0.0)` additions, in the same order, so
/// every cumulative value is bit-identical) and then locates each of the `s`
/// sampling points by binary search over the same `next < acc_i − 1e-15`
/// boundary predicate. The prefix sums are non-decreasing, so the predicate
/// is monotone in `i` and the first-crossing index found by
/// `partition_point` is exactly the arm at which the linear scan pushes that
/// point — including the duplicate-push and fell-off-the-axis edge cases.
/// The sampling points themselves advance by the same iterated `next += 1.0`
/// (not `u + j`, whose single rounding can differ from the iterated sum).
pub fn systematic_sample_with_scratch(
    q: &[f64],
    s: usize,
    rng: &mut SmallRng,
    acc_scratch: &mut Vec<f64>,
    out: &mut Vec<usize>,
) {
    #[cfg(debug_assertions)]
    {
        debug_assert!(q.iter().all(|&x| (-1e-9..=1.0 + 1e-9).contains(&x)));
        let total: f64 = q.iter().sum();
        debug_assert!(
            (total - s as f64).abs() < 1e-6,
            "inclusion probabilities must sum to s (got {total}, s={s})"
        );
    }
    let u: f64 = rng.gen::<f64>();
    acc_scratch.clear();
    let mut acc = 0.0;
    acc_scratch.extend(q.iter().map(|&qi| {
        acc += qi.max(0.0);
        acc
    }));
    out.clear();
    let mut next = u;
    for _ in 0..s {
        let i = acc_scratch.partition_point(|&a| a - 1e-15 <= next);
        if i == q.len() {
            // This point fell off the axis through rounding; later points
            // lie even further out, so no more arms can be selected.
            break;
        }
        out.push(i);
        next += 1.0;
    }
    // Floating-point slack: pad from the end if a point fell off the axis.
    let mut fill = q.len();
    while out.len() < s && fill > 0 {
        fill -= 1;
        if !out.contains(&fill) {
            out.push(fill);
        }
    }
}

/// Convex decomposition of scaled inclusion probabilities into slates.
///
/// Given `q` with `Σq = s` and `0 ≤ q_i ≤ 1`, returns `(λ_j, S_j)` pairs with
/// `Σλ_j = 1`, `|S_j| = s` and `Σ_j λ_j·1{i ∈ S_j} = q_i` — the decomposition
/// the paper cites as requiring `O(k²)` time (§II-C).
///
/// Greedy peeling: repeatedly select the `s` currently-largest residuals as
/// a slate and peel off the largest coefficient `λ` that keeps the residual
/// problem feasible (every residual within `[0, B]` for remaining budget
/// `B`). Each step zeroes a residual or pins one to the budget, so at most
/// `2k` slates are produced.
pub fn decompose_into_slates(q: &[f64], s: usize) -> Vec<(f64, Vec<usize>)> {
    let mut sc = DecompScratch::default();
    decompose_into_scratch(q, s, &mut sc);
    (0..sc.len())
        .map(|j| (sc.lambdas[j], sc.slates[j * s..(j + 1) * s].to_vec()))
        .collect()
}

/// The scratch-buffer kernel behind [`decompose_into_slates`]: peels into
/// `sc`'s flat vectors, allocating nothing once their capacity has grown to
/// the `2k + 3` worst case (reserved on entry).
fn decompose_into_scratch(q: &[f64], s: usize, sc: &mut DecompScratch) {
    let k = q.len();
    assert!(s >= 1 && s <= k, "slate size {s} out of range for k={k}");
    let total: f64 = q.iter().sum();
    assert!(
        (total - s as f64).abs() < 1e-6,
        "q must sum to s (got {total})"
    );
    let DecompScratch {
        r,
        order,
        lambdas,
        slates,
    } = sc;
    r.clear();
    r.extend(q.iter().map(|&x| x.clamp(0.0, 1.0)));
    order.clear();
    order.extend(0..k);
    lambdas.clear();
    slates.clear();
    lambdas.reserve(2 * k + 3);
    slates.reserve((2 * k + 3) * s);
    let mut budget = 1.0f64;

    for _ in 0..2 * k + 2 {
        if budget <= 1e-12 {
            break;
        }
        // Sort indices by residual, descending; the slate is the top s.
        order.sort_unstable_by(|&a, &b| r[b].total_cmp(&r[a]));
        let min_in = order[..s]
            .iter()
            .map(|&i| r[i])
            .fold(f64::INFINITY, f64::min);
        // Largest residual outside the slate (0 if none).
        let max_out = if s < k { r[order[s]] } else { 0.0 };
        // λ must not drive any in-slate residual negative (≤ min_in) and
        // must not leave an out-of-slate residual above the shrunken budget
        // (≥ budget − max_out ⇒ λ ≤ budget − max_out is the *upper* bound
        // ... i.e. budget − λ ≥ max_out).
        let lambda = min_in.min(budget - max_out).min(budget).max(0.0);
        if lambda <= 1e-15 {
            // Degenerate (numerical dust): spend the remaining budget on the
            // current top-s slate and stop.
            lambdas.push(budget);
            slates.extend_from_slice(&order[..s]);
            budget = 0.0;
            break;
        }
        for &i in &order[..s] {
            r[i] -= lambda;
        }
        budget -= lambda;
        lambdas.push(lambda);
        slates.extend_from_slice(&order[..s]);
    }
    if budget > 1e-9 {
        // Should be unreachable; keep total mass consistent regardless.
        order.sort_unstable_by(|&a, &b| r[b].total_cmp(&r[a]));
        lambdas.push(budget);
        slates.extend_from_slice(&order[..s]);
    }
}

/// Draw one slate from a convex decomposition (vertex sampled ∝ λ).
pub fn sample_decomposition(decomposition: &[(f64, Vec<usize>)], rng: &mut SmallRng) -> Vec<usize> {
    let total: f64 = decomposition.iter().map(|(l, _)| *l).sum();
    let mut u: f64 = rng.gen::<f64>() * total;
    for (lambda, slate) in decomposition {
        if u < *lambda {
            return slate.clone();
        }
        u -= lambda;
    }
    decomposition
        .last()
        .map(|(_, s)| s.clone())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::{random_values, Bandit, ValueBandit};
    use rand::SeedableRng;

    fn drive(alg: &mut SlateMwu, bandit: &mut ValueBandit, rounds: usize, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..rounds {
            let plan = alg.plan(&mut rng).to_vec();
            let rewards: Vec<f64> = plan.iter().map(|&a| bandit.pull(a, &mut rng)).collect();
            alg.update(&rewards, &mut rng);
            if alg.has_converged() {
                break;
            }
        }
    }

    #[test]
    fn default_slate_size_follows_gamma() {
        assert_eq!(SlateMwu::new(100, SlateConfig::default()).slate_size(), 5);
        assert_eq!(SlateMwu::new(1000, SlateConfig::default()).slate_size(), 50);
        // Small k clamps to at least 2.
        assert_eq!(SlateMwu::new(10, SlateConfig::default()).slate_size(), 2);
    }

    #[test]
    fn plan_has_distinct_members_of_slate_size() {
        let mut alg = SlateMwu::new(50, SlateConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let plan = alg.plan(&mut rng).to_vec();
            assert_eq!(plan.len(), alg.slate_size());
            let mut sorted = plan.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), plan.len(), "slate has duplicates");
            let rewards = vec![0.5; plan.len()];
            alg.update(&rewards, &mut rng);
        }
    }

    #[test]
    fn systematic_sample_matches_inclusion_probabilities() {
        let q = vec![0.9, 0.5, 0.3, 0.2, 0.1];
        let s = 2;
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 40_000;
        let mut counts = vec![0usize; q.len()];
        for _ in 0..n {
            let slate = systematic_sample(&q, s, &mut rng);
            assert_eq!(slate.len(), s);
            for i in slate {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            assert!(
                (rate - q[i]).abs() < 0.02,
                "arm {i}: rate {rate} vs q {}",
                q[i]
            );
        }
    }

    #[test]
    fn systematic_sample_into_matches_allocating_form() {
        let q = vec![0.9, 0.5, 0.3, 0.2, 0.1];
        let mut r1 = SmallRng::seed_from_u64(21);
        let mut r2 = SmallRng::seed_from_u64(21);
        let mut buf = vec![99usize; 7]; // stale contents must be discarded
        for _ in 0..2000 {
            systematic_sample_into(&q, 2, &mut r1, &mut buf);
            assert_eq!(buf, systematic_sample(&q, 2, &mut r2));
        }
    }

    #[test]
    fn systematic_sample_with_scratch_matches_linear_scan() {
        // The binary-search form must select the identical arms as the
        // linear scan for the identical draw, across skewed, uniform and
        // rounding-slack inclusion vectors.
        let cases: Vec<(Vec<f64>, usize)> = vec![
            (vec![0.9, 0.5, 0.3, 0.2, 0.1], 2),
            (vec![0.5; 6], 3),
            (vec![1.0, 1.0, 0.5, 0.25, 0.25], 3),
            // Sums slightly short of s: exercises the pad-from-end path.
            (vec![0.9999999, 0.9999999, 0.5, 0.25, 0.25], 3),
            (
                (0..64)
                    .map(|i| 4.0 * (i + 1) as f64 / (64.0 * 65.0 / 2.0))
                    .collect(),
                4,
            ),
        ];
        for (q, s) in cases {
            let mut r1 = SmallRng::seed_from_u64(33);
            let mut r2 = SmallRng::seed_from_u64(33);
            let mut acc = vec![5.0; 2]; // stale contents must be discarded
            let mut fast = vec![99usize; 7];
            let mut slow = Vec::new();
            for _ in 0..2000 {
                systematic_sample_with_scratch(&q, s, &mut r1, &mut acc, &mut fast);
                systematic_sample_into(&q, s, &mut r2, &mut slow);
                assert_eq!(fast, slow, "q={q:?} s={s}");
            }
        }
    }

    #[test]
    fn decomposition_is_convex_and_exact() {
        let q = vec![1.0, 0.7, 0.5, 0.4, 0.25, 0.15];
        let s = 3;
        let d = decompose_into_slates(&q, s);
        let lambda_sum: f64 = d.iter().map(|(l, _)| l).sum();
        assert!((lambda_sum - 1.0).abs() < 1e-9, "λ sum {lambda_sum}");
        let mut reconstructed = vec![0.0; q.len()];
        for (lambda, slate) in &d {
            assert_eq!(slate.len(), s);
            for &i in slate {
                reconstructed[i] += lambda;
            }
        }
        for i in 0..q.len() {
            assert!(
                (reconstructed[i] - q[i]).abs() < 1e-9,
                "arm {i}: {} vs {}",
                reconstructed[i],
                q[i]
            );
        }
    }

    #[test]
    fn decomposition_handles_uniform_and_degenerate() {
        // Uniform q = s/k.
        let q = vec![0.5; 6];
        let d = decompose_into_slates(&q, 3);
        let lambda_sum: f64 = d.iter().map(|(l, _)| l).sum();
        assert!((lambda_sum - 1.0).abs() < 1e-9);

        // s == k: the only slate is everything.
        let q = vec![1.0; 4];
        let d = decompose_into_slates(&q, 4);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.len(), 4);
    }

    #[test]
    fn decomposition_scratch_reuse_is_stable() {
        // Re-running the scratch kernel over different inputs must not leak
        // state between calls: each result equals a fresh decomposition.
        let mut sc = DecompScratch::default();
        for seed in 0..20u64 {
            let raw = random_values(12, seed);
            let sum: f64 = raw.iter().sum();
            let q: Vec<f64> = raw.iter().map(|&x| (3.0 * x / sum).min(1.0)).collect();
            // Repair the sum to exactly s by padding the deficit onto a
            // synthetic uniform mix — easier: renormalize via capped weights.
            let w = WeightVector::from_weights(&q);
            let capped = w.capped(1.0 / 3.0);
            let q: Vec<f64> = capped.probabilities().iter().map(|&p| 3.0 * p).collect();
            decompose_into_scratch(&q, 3, &mut sc);
            let fresh = decompose_into_slates(&q, 3);
            assert_eq!(sc.len(), fresh.len(), "seed {seed}");
            for (j, (lambda, slate)) in fresh.iter().enumerate() {
                assert_eq!(sc.lambdas[j].to_bits(), lambda.to_bits(), "seed {seed}");
                assert_eq!(&sc.slates[j * 3..(j + 1) * 3], slate.as_slice());
            }
        }
    }

    #[test]
    fn decomposition_sampler_matches_inclusion() {
        let q = vec![0.8, 0.6, 0.4, 0.2];
        let d = decompose_into_slates(&q, 2);
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 40_000;
        let mut counts = vec![0usize; q.len()];
        for _ in 0..n {
            for i in sample_decomposition(&d, &mut rng) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            assert!((rate - q[i]).abs() < 0.02, "arm {i}: {rate} vs {}", q[i]);
        }
    }

    #[test]
    fn scratch_sampler_matches_sample_decomposition() {
        let q = vec![0.8, 0.6, 0.4, 0.2];
        let s = 2;
        let d = decompose_into_slates(&q, s);
        let mut sc = DecompScratch::default();
        decompose_into_scratch(&q, s, &mut sc);
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        let mut buf = Vec::new();
        for _ in 0..5000 {
            sc.sample_into(s, &mut r1, &mut buf);
            assert_eq!(buf, sample_decomposition(&d, &mut r2));
        }
    }

    #[test]
    fn zero_probability_arm_never_enters_slate() {
        // Regression for the importance-weight clamp fix: arms with q = 0
        // must never be selected — not by the decomposition, not by its
        // sampler's rounding fallback, not by systematic sampling — because
        // update would divide their reward by the floor, not their true q.
        let q = vec![1.0, 1.0, 0.5, 0.5, 0.0, 0.0];
        let s = 3;
        let d = decompose_into_slates(&q, s);
        for (lambda, slate) in &d {
            assert!(*lambda >= 0.0);
            for &i in slate {
                assert!(q[i] > 0.0, "zero-probability arm {i} in slate (λ={lambda})");
            }
        }
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..20_000 {
            for i in sample_decomposition(&d, &mut rng) {
                assert!(q[i] > 0.0, "zero-probability arm {i} sampled");
            }
        }
        for _ in 0..20_000 {
            for i in systematic_sample(&q, s, &mut rng) {
                assert!(q[i] > 0.0, "zero-probability arm {i} sampled");
            }
        }
    }

    #[test]
    fn update_exponent_is_bounded_at_full_reward() {
        // The inclusion floor bounds the update exponent at η/q_floor = 4
        // with the derived η, so sustained maximal rewards can never push a
        // weight multiplier past e⁴ in one round — the simplex stays finite.
        let mut alg = SlateMwu::new(40, SlateConfig::default());
        assert!((alg.eta() / alg.inclusion_floor() - 4.0).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..500 {
            let n = alg.plan(&mut rng).len();
            let rewards = vec![1.0; n];
            alg.update(&rewards, &mut rng);
            assert!(alg.weights().probabilities().iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn both_samplers_find_good_arms() {
        for sampling in [
            SlateSampling::Systematic,
            SlateSampling::ConvexDecomposition,
        ] {
            let mut alg = SlateMwu::new(
                30,
                SlateConfig {
                    sampling,
                    ..SlateConfig::default()
                },
            );
            let values = random_values(30, 11);
            let mut bandit = ValueBandit::exact(values);
            drive(&mut alg, &mut bandit, 5000, 7);
            let v = bandit.expected_value(alg.leader());
            assert!(
                v > 0.75 * bandit.best_value(),
                "{sampling:?}: leader value {v} vs best {}",
                bandit.best_value()
            );
        }
    }

    #[test]
    fn cpu_count_is_slate_size() {
        let alg = SlateMwu::new(200, SlateConfig::default());
        assert_eq!(alg.cpus_per_iteration(), 10);
    }

    #[test]
    fn congestion_is_slate_size() {
        let mut alg = SlateMwu::new(100, SlateConfig::default());
        let mut bandit = ValueBandit::exact(vec![0.5; 100]);
        drive(&mut alg, &mut bandit, 4, 0);
        let c = alg.comm_stats();
        assert_eq!(c.peak_congestion, alg.slate_size());
        assert_eq!(c.rounds, 4);
    }

    #[test]
    fn inclusion_probabilities_sum_to_s_and_capped() {
        let mut alg = SlateMwu::new(40, SlateConfig::default());
        let mut bandit = ValueBandit::bernoulli(random_values(40, 2));
        drive(&mut alg, &mut bandit, 200, 3);
        let q = alg.inclusion_probabilities();
        let sum: f64 = q.iter().sum();
        assert!((sum - alg.slate_size() as f64).abs() < 1e-6);
        assert!(q.iter().all(|&x| x <= 1.0 + 1e-9));
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let mut alg = SlateMwu::new(25, SlateConfig::default());
        let mut bandit = ValueBandit::bernoulli(random_values(25, 4));
        drive(&mut alg, &mut bandit, 50, 5);
        let restored = SlateMwu::from_value(&alg.to_value()).expect("roundtrip");
        assert_eq!(restored.weights(), alg.weights());
        assert_eq!(restored.iteration(), alg.iteration());
        // Stepping both with twin RNGs stays in lockstep: the scratch
        // buffers really are derived state.
        let mut a = alg.clone();
        let mut b = restored;
        let mut r1 = SmallRng::seed_from_u64(6);
        let mut r2 = SmallRng::seed_from_u64(6);
        for _ in 0..20 {
            let pa = a.plan(&mut r1).to_vec();
            let pb = b.plan(&mut r2).to_vec();
            assert_eq!(pa, pb);
            let rewards = vec![0.5; pa.len()];
            a.update(&rewards, &mut r1);
            b.update(&rewards, &mut r2);
            assert_eq!(a.weights(), b.weights());
        }
    }

    #[test]
    fn converges_eventually_on_clear_winner() {
        let mut values = vec![0.05; 40];
        values[17] = 0.95;
        let mut alg = SlateMwu::new(40, SlateConfig::default());
        let mut bandit = ValueBandit::exact(values);
        drive(&mut alg, &mut bandit, 100_000, 1);
        assert!(alg.has_converged(), "iterations: {}", alg.iteration());
        assert_eq!(alg.leader(), 17);
        // Convergence = cap saturation: the leader sits in every slate.
        assert!(
            alg.leader_share() > 1.0 - 2e-5,
            "share {}",
            alg.leader_share()
        );
    }

    #[test]
    #[should_panic]
    fn zero_arms_rejected() {
        let _ = SlateMwu::new(0, SlateConfig::default());
    }

    #[test]
    #[should_panic]
    fn bad_gamma_rejected() {
        let _ = SlateMwu::new(
            10,
            SlateConfig {
                gamma: 1.5,
                ..SlateConfig::default()
            },
        );
    }
}
