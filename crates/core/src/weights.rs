//! Normalized weight vectors over the probability simplex.
//!
//! The explicit-memory MWU variants (Standard, Slate) maintain a weight
//! `w_i > 0` per option. [`WeightVector`] stores the weights *normalized*
//! (summing to 1) and renormalizes after every multiplicative update, which
//! keeps the representation immune to the underflow that raw multiplicative
//! weights suffer after a few thousand iterations.
//!
//! For the Slate variant the vector must additionally be *capped*: no
//! coordinate may exceed `1/s` (where `s` is the slate size) so that the
//! scaled vector `q = s·p` lies inside the convex hull of the slate
//! indicator vectors (§II-C of the paper). [`WeightVector::capped`]
//! implements the water-filling cap-and-renormalize step.
//!
//! ## Allocation discipline
//!
//! Every simplex operation that produces a vector has an `_into` variant
//! ([`WeightVector::mix_uniform_into`], [`WeightVector::capped_into`],
//! [`WeightVector::probabilities_into`]) that writes into caller-owned
//! scratch instead of allocating; the allocating forms delegate to them, so
//! both paths perform bit-identical float operations. [`WeightVector::sample`]
//! consults a cumulative-sum cache (built on demand with
//! [`WeightVector::ensure_cdf`], cleared by every mutation) and falls back
//! to the linear scan when the cache is absent; both return the same index
//! for the same draw. See `docs/PERFORMANCE.md` for the ownership rules.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Error, Serialize, Value};

/// A probability vector over `k` options with multiplicative-update support.
#[derive(Debug, Clone)]
pub struct WeightVector {
    p: Vec<f64>,
    /// Cached cumulative sums of `p` (`cdf[i] = p_0 + … + p_i`), used by
    /// [`Self::sample`] for O(log k) draws. Empty means "not built"; every
    /// mutation clears it. Excluded from serialization and equality.
    cdf: Vec<f64>,
}

impl WeightVector {
    /// Uniform distribution over `k` options (the MWU initialization
    /// `w_i = 1` of Fig. 1, normalized).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "weight vector needs at least one option");
        Self {
            p: vec![1.0 / k as f64; k],
            cdf: Vec::new(),
        }
    }

    /// Reset to the uniform distribution in place, keeping the allocation.
    /// Bit-identical to a fresh [`Self::uniform`] of the same length.
    pub fn reset_uniform(&mut self) {
        let k = self.p.len();
        self.p.fill(1.0 / k as f64);
        self.cdf.clear();
    }

    /// Build from arbitrary non-negative weights (normalized on entry).
    ///
    /// # Panics
    /// Panics if the weights are empty, contain a negative or non-finite
    /// entry, or sum to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        let sum: f64 = weights.iter().sum();
        assert!(
            sum.is_finite() && sum > 0.0,
            "weights must have a positive finite sum"
        );
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
        }
        Self {
            p: weights.iter().map(|w| w / sum).collect(),
            cdf: Vec::new(),
        }
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True when the vector has no options (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Probability of option `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.p[i]
    }

    /// The normalized probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.p
    }

    /// Copy the probabilities into caller scratch (cleared first). The
    /// allocation-free counterpart of `probabilities().to_vec()`.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.p);
    }

    /// Index of the highest-probability option (ties: lowest index).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for i in 1..self.p.len() {
            if self.p[i] > self.p[best] {
                best = i;
            }
        }
        best
    }

    /// Probability of the argmax option.
    pub fn max_probability(&self) -> f64 {
        self.p[self.argmax()]
    }

    /// Shannon entropy in nats. Uniform → ln k; a point mass → 0.
    pub fn entropy(&self) -> f64 {
        self.p
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum()
    }

    /// Multiplicative update: `w_i ← w_i · factor(i)`, then renormalize.
    ///
    /// `factor` must return a finite non-negative multiplier. A floor of
    /// `1e-300` per coordinate (before normalization) prevents the vector
    /// from collapsing to all-zero under extreme penalties.
    pub fn scale_all<F: FnMut(usize) -> f64>(&mut self, mut factor: F) {
        for (i, p) in self.p.iter_mut().enumerate() {
            let f = factor(i);
            debug_assert!(f.is_finite() && f >= 0.0, "bad multiplier {f}");
            *p = (*p * f).max(1e-300);
        }
        self.renormalize();
    }

    /// Multiplicative update of a single coordinate, then renormalize.
    pub fn scale_one(&mut self, i: usize, factor: f64) {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        self.p[i] = (self.p[i] * factor).max(1e-300);
        self.renormalize();
    }

    /// Batch multiplicative update: scale each `(index, factor)` pair, then
    /// renormalize once. Equivalent to a sequence of [`Self::scale_one`]
    /// calls but with a single O(k) normalization pass — the hot path for
    /// Slate, which updates `s` sampled coordinates per round.
    pub fn scale_many(&mut self, updates: &[(usize, f64)]) {
        for &(i, f) in updates {
            debug_assert!(f.is_finite() && f >= 0.0, "bad multiplier {f}");
            self.p[i] = (self.p[i] * f).max(1e-300);
        }
        self.renormalize();
    }

    /// Mix with the uniform distribution:
    /// `p ← (1−γ)·p + γ/k` — the exploration floor used by Slate.
    pub fn mix_uniform(&self, gamma: f64) -> WeightVector {
        let mut out = WeightVector {
            p: Vec::with_capacity(self.p.len()),
            cdf: Vec::new(),
        };
        self.mix_uniform_into(gamma, &mut out);
        out
    }

    /// [`Self::mix_uniform`] into caller scratch: `out`'s previous contents
    /// are discarded and its sample cache cleared. Performs the same float
    /// operations as the allocating form.
    pub fn mix_uniform_into(&self, gamma: f64, out: &mut WeightVector) {
        debug_assert!((0.0..=1.0).contains(&gamma));
        let k = self.p.len() as f64;
        out.cdf.clear();
        out.p.clear();
        out.p
            .extend(self.p.iter().map(|&p| (1.0 - gamma) * p + gamma / k));
    }

    /// Cap-and-renormalize: the closest vector (in the water-filling sense)
    /// with every coordinate ≤ `cap`, still summing to 1.
    ///
    /// Used by Slate with `cap = 1/s` so that `s · p` is a valid vector of
    /// inclusion probabilities (each ≤ 1). Mass removed from capped
    /// coordinates is redistributed proportionally among the uncapped ones,
    /// iterating until no coordinate exceeds the cap (at most `k` rounds,
    /// each capping ≥ 1 new coordinate).
    ///
    /// # Panics
    /// Panics if `cap · k < 1` (the simplex has no point below the cap).
    pub fn capped(&self, cap: f64) -> WeightVector {
        let mut fixed = Vec::new();
        let mut out = WeightVector {
            p: Vec::with_capacity(self.p.len()),
            cdf: Vec::new(),
        };
        self.capped_into(cap, &mut fixed, &mut out);
        out
    }

    /// [`Self::capped`] into caller scratch. `fixed` is the water-filling
    /// work buffer (one flag per coordinate) and `out` receives the capped
    /// vector; both are cleared first, so only their capacity is reused.
    /// Performs the same float operations as the allocating form.
    pub fn capped_into(&self, cap: f64, fixed: &mut Vec<bool>, out: &mut WeightVector) {
        let k = self.p.len();
        assert!(
            cap * k as f64 >= 1.0 - 1e-12,
            "cap {cap} too small for {k} options"
        );
        out.cdf.clear();
        if cap * k as f64 <= 1.0 + 1e-12 {
            // Boundary cap == 1/k: the uniform vector is the only feasible
            // point. Return it directly — water-filling here would divide
            // a ~0 remainder by a ~0 free mass and let rounding decide
            // whether the result lands on the simplex at all.
            out.p.clear();
            out.p.resize(k, 1.0 / k as f64);
            return;
        }
        let p = &mut out.p;
        p.clear();
        p.extend_from_slice(&self.p);
        water_fill(p, cap, fixed);
        out.renormalize();
    }

    /// [`Self::capped_into`] with the γ-mix fused in: equivalent to
    /// `self.mix_uniform(gamma).capped_into(cap, fixed, out)` but without
    /// materializing the mixed vector — the mixed values are computed with
    /// the identical float expression and water-filled in place. This is the
    /// Slate plan kernel.
    pub fn mix_capped_into(
        &self,
        gamma: f64,
        cap: f64,
        fixed: &mut Vec<bool>,
        out: &mut WeightVector,
    ) {
        debug_assert!((0.0..=1.0).contains(&gamma));
        let k = self.p.len();
        assert!(
            cap * k as f64 >= 1.0 - 1e-12,
            "cap {cap} too small for {k} options"
        );
        out.cdf.clear();
        if cap * k as f64 <= 1.0 + 1e-12 {
            out.p.clear();
            out.p.resize(k, 1.0 / k as f64);
            return;
        }
        let kf = k as f64;
        let p = &mut out.p;
        p.clear();
        p.extend(self.p.iter().map(|&x| (1.0 - gamma) * x + gamma / kf));
        water_fill(p, cap, fixed);
        out.renormalize();
    }

    /// Build the cumulative-sum cache used by [`Self::sample`], if absent.
    ///
    /// Call once after the weights settle for a round of repeated sampling;
    /// any subsequent mutation (`scale_*`, `_into` writes) clears the cache
    /// and `sample` falls back to the linear scan until it is rebuilt.
    pub fn ensure_cdf(&mut self) {
        if self.cdf.len() == self.p.len() {
            return;
        }
        self.cdf.clear();
        self.cdf.reserve(self.p.len());
        let mut acc = 0.0;
        for &p in &self.p {
            acc += p;
            self.cdf.push(acc);
        }
    }

    /// Sample one option index proportional to probability.
    ///
    /// With a valid cumulative cache (see [`Self::ensure_cdf`]) this is a
    /// binary search; otherwise a linear scan. Both accumulate the same
    /// prefix sums in the same order, so for any draw `u` they return the
    /// identical index (including the rounding tail, which maps to the last
    /// option).
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        if self.cdf.len() == self.p.len() {
            // First index whose cumulative sum exceeds u — the same index
            // the linear scan below stops at.
            return self.cdf.partition_point(|&c| c <= u).min(self.p.len() - 1);
        }
        let mut acc = 0.0;
        for (i, &p) in self.p.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        // Rounding tail: return the last option.
        self.p.len() - 1
    }

    /// Sample from the γ-uniform mixture `(1−γ)·p + γ/k` without
    /// materializing it: one uniform draw, one O(k) scan, zero allocation.
    /// Performs the same float operations as
    /// `self.mix_uniform(gamma).sample(rng)` (the accumulated terms are the
    /// identical expressions, in the identical order), so the drawn index is
    /// bit-for-bit the same — this is Exp3's allocation-free plan path.
    pub fn sample_mixed(&self, gamma: f64, rng: &mut SmallRng) -> usize {
        debug_assert!((0.0..=1.0).contains(&gamma));
        let k = self.p.len() as f64;
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.p.iter().enumerate() {
            acc += (1.0 - gamma) * p + gamma / k;
            if u < acc {
                return i;
            }
        }
        self.p.len() - 1
    }

    /// Largest coordinate / cap diagnostics helper: true if some coordinate
    /// exceeds `cap` by more than `eps`.
    pub fn exceeds_cap(&self, cap: f64, eps: f64) -> bool {
        self.p.iter().any(|&p| p > cap + eps)
    }

    fn renormalize(&mut self) {
        let _span = crate::prof::span(crate::prof::Phase::Normalize);
        self.cdf.clear();
        let sum: f64 = self.p.iter().sum();
        debug_assert!(sum.is_finite() && sum > 0.0, "degenerate weight sum {sum}");
        let inv = 1.0 / sum;
        for p in &mut self.p {
            *p *= inv;
        }
    }
}

/// Water-filling onto the capped simplex, in place: the shared kernel of
/// [`WeightVector::capped_into`] and [`WeightVector::mix_capped_into`].
///
/// Each round first runs a chain-free scan asking whether any free
/// coordinate sits at or above the cap; only when one does is the
/// (serially dependent) mass-accounting pass executed. The scan performs no
/// arithmetic, and the accounting pass accumulates `fixed_sum`/`free_sum`
/// in the exact index order the original fused loop used, so the values
/// written to `p` are bit-identical — the scan only skips work whose
/// results the original discarded on its terminating pass.
fn water_fill(p: &mut [f64], cap: f64, fixed: &mut Vec<bool>) {
    let _span = crate::prof::span(crate::prof::Phase::WaterFill);
    let k = p.len();
    fixed.clear();
    fixed.resize(k, false);
    loop {
        // Would this pass fix a new coordinate? (Chain-free: no FP adds.)
        let over = p
            .iter()
            .zip(fixed.iter())
            .any(|(&pi, &fi)| !fi && pi >= cap);
        if !over {
            break;
        }
        // Mass already frozen at the cap, and the mass of free coords.
        let mut free_sum = 0.0;
        let mut fixed_sum = 0.0;
        for i in 0..k {
            if fixed[i] {
                fixed_sum += cap;
            } else if p[i] >= cap {
                fixed[i] = true;
                fixed_sum += cap;
            } else {
                free_sum += p[i];
            }
        }
        let remaining = (1.0 - fixed_sum).max(0.0);
        if free_sum <= 0.0 {
            // Everything capped: distribute the remainder uniformly over
            // non-fixed coords (possible only through rounding).
            break;
        }
        let scale = remaining / free_sum;
        for i in 0..k {
            if fixed[i] {
                p[i] = cap;
            } else {
                p[i] *= scale;
            }
        }
    }
    for i in 0..k {
        if fixed[i] {
            p[i] = cap;
        }
    }
}

// The sample cache is derived state: equality, hashing and the serialized
// form consider only the probabilities. (The vendored serde_derive has no
// `#[serde(skip)]`, hence the manual impls.)
impl PartialEq for WeightVector {
    fn eq(&self, other: &Self) -> bool {
        self.p == other.p
    }
}

impl Serialize for WeightVector {
    fn to_value(&self) -> Value {
        Value::Object(vec![("p".to_string(), self.p.to_value())])
    }
}

impl Deserialize for WeightVector {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let p = Vec::<f64>::from_value(v.field("p"))?;
        if p.is_empty() {
            return Err(Error::custom("WeightVector: empty probability vector"));
        }
        Ok(Self { p, cdf: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn assert_simplex(w: &WeightVector) {
        let sum: f64 = w.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(w.probabilities().iter().all(|&p| p >= 0.0));
    }

    /// A cache-less twin with bitwise-identical probabilities (bypasses
    /// `from_weights`, whose normalizing division would perturb the values).
    fn uncached_twin(w: &WeightVector) -> WeightVector {
        WeightVector {
            p: w.probabilities().to_vec(),
            cdf: Vec::new(),
        }
    }

    #[test]
    fn uniform_is_uniform() {
        let w = WeightVector::uniform(8);
        assert_eq!(w.len(), 8);
        for i in 0..8 {
            assert!((w.get(i) - 0.125).abs() < 1e-12);
        }
        assert_simplex(&w);
        assert!((w.entropy() - (8f64).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn uniform_zero_panics() {
        let _ = WeightVector::uniform(0);
    }

    #[test]
    fn from_weights_normalizes() {
        let w = WeightVector::from_weights(&[1.0, 3.0]);
        assert!((w.get(0) - 0.25).abs() < 1e-12);
        assert!((w.get(1) - 0.75).abs() < 1e-12);
        assert_eq!(w.argmax(), 1);
    }

    #[test]
    fn scale_all_concentrates_on_winner() {
        let mut w = WeightVector::uniform(4);
        for _ in 0..200 {
            w.scale_all(|i| if i == 2 { 1.0 } else { 0.5 });
        }
        assert_eq!(w.argmax(), 2);
        assert!(w.max_probability() > 1.0 - 1e-9);
        assert_simplex(&w);
    }

    #[test]
    fn no_underflow_after_many_updates() {
        let mut w = WeightVector::uniform(16);
        for _ in 0..100_000 {
            w.scale_all(|i| if i == 0 { 1.0 } else { 0.9 });
        }
        assert_simplex(&w);
        assert_eq!(w.argmax(), 0);
        // Losers remain representable (non-NaN, ≥ 0).
        assert!(w.probabilities().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn scale_many_matches_sequential_scale_one() {
        let mut a = WeightVector::from_weights(&[1.0, 2.0, 3.0, 4.0]);
        let mut b = a.clone();
        a.scale_one(1, 2.0);
        a.scale_one(3, 0.5);
        b.scale_many(&[(1, 2.0), (3, 0.5)]);
        for i in 0..4 {
            assert!((a.get(i) - b.get(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn capped_respects_cap_and_simplex() {
        let w = WeightVector::from_weights(&[100.0, 1.0, 1.0, 1.0]);
        let c = w.capped(0.5);
        assert_simplex(&c);
        assert!(!c.exceeds_cap(0.5, 1e-9));
        // The capped coordinate sits exactly at the cap.
        assert!((c.get(0) - 0.5).abs() < 1e-9);
        // The rest keep their relative proportions.
        assert!((c.get(1) - c.get(2)).abs() < 1e-12);
    }

    #[test]
    fn capped_cascades_to_second_coordinate() {
        // After capping coord 0, coord 1 can itself exceed the cap and must
        // be capped in a second round.
        let w = WeightVector::from_weights(&[1000.0, 500.0, 1.0, 1.0, 1.0, 1.0]);
        let c = w.capped(0.25);
        assert_simplex(&c);
        assert!(!c.exceeds_cap(0.25, 1e-9));
        assert!((c.get(0) - 0.25).abs() < 1e-9);
        assert!((c.get(1) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn capped_noop_when_already_below_cap() {
        let w = WeightVector::uniform(10);
        let c = w.capped(0.2);
        for i in 0..10 {
            assert!((c.get(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn capped_infeasible_cap_panics() {
        let w = WeightVector::uniform(4);
        let _ = w.capped(0.2); // 4 * 0.2 < 1
    }

    #[test]
    fn mix_uniform_keeps_simplex_and_floors() {
        let w = WeightVector::from_weights(&[1.0, 0.0, 0.0, 0.0]);
        let m = w.mix_uniform(0.2);
        assert_simplex(&m);
        for i in 1..4 {
            assert!((m.get(i) - 0.05).abs() < 1e-12);
        }
        assert!((m.get(0) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn into_variants_match_allocating_forms_bitwise() {
        let mut w = WeightVector::uniform(16);
        w.scale_all(|i| (i * i + 1) as f64);
        // Scratch buffers deliberately pre-polluted (stale contents + caches)
        // to prove the _into forms fully overwrite them.
        let mut mixed = WeightVector::uniform(3);
        mixed.ensure_cdf();
        let mut fixed = vec![true; 40];
        let mut capped = WeightVector::uniform(7);
        capped.ensure_cdf();

        w.mix_uniform_into(0.05, &mut mixed);
        assert_eq!(mixed.probabilities(), w.mix_uniform(0.05).probabilities());
        assert!(mixed.cdf.is_empty());

        w.capped_into(0.125, &mut fixed, &mut capped);
        assert_eq!(capped.probabilities(), w.capped(0.125).probabilities());
        assert!(capped.cdf.is_empty());

        let mut probs = vec![9.0; 2];
        w.probabilities_into(&mut probs);
        assert_eq!(probs.as_slice(), w.probabilities());
    }

    #[test]
    fn mix_capped_into_matches_two_step_form_bitwise() {
        // The fused plan kernel must reproduce mix_uniform → capped exactly,
        // across uncapped, singly-capped and cascading-cap regimes.
        for (weights, cap) in [
            (vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 0.3), // nothing capped
            (vec![60.0, 1.0, 1.0, 1.0, 1.0, 1.0], 0.3), // one coordinate capped
            (vec![60.0, 30.0, 8.0, 1.0, 1.0, 1.0], 0.3), // cascading caps
        ] {
            let mut w = WeightVector::uniform(weights.len());
            w.scale_all(|i| weights[i]);
            for gamma in [0.0, 0.05, 0.5] {
                let two_step = w.mix_uniform(gamma).capped(cap);
                let mut fixed = vec![true; 2];
                let mut fused = WeightVector::uniform(3);
                fused.ensure_cdf();
                w.mix_capped_into(gamma, cap, &mut fixed, &mut fused);
                let a: Vec<u64> = fused.probabilities().iter().map(|x| x.to_bits()).collect();
                let b: Vec<u64> = two_step
                    .probabilities()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect();
                assert_eq!(a, b, "gamma={gamma} cap={cap}");
                assert!(fused.cdf.is_empty());
            }
        }
    }

    #[test]
    fn capped_into_boundary_matches_uniform() {
        let mut w = WeightVector::uniform(9);
        w.scale_all(|i| (i + 1) as f64);
        let mut fixed = Vec::new();
        let mut out = WeightVector::uniform(2);
        out.ensure_cdf();
        w.capped_into(1.0 / 9.0, &mut fixed, &mut out);
        assert_eq!(
            out.probabilities(),
            WeightVector::uniform(9).probabilities()
        );
        assert!(out.cdf.is_empty());
    }

    #[test]
    fn sample_follows_distribution() {
        let w = WeightVector::from_weights(&[0.1, 0.9]);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let ones = (0..n).filter(|_| w.sample(&mut rng) == 1).count();
        let rate = ones as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn sample_handles_rounding_tail() {
        let w = WeightVector::uniform(3);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(w.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn cached_sample_matches_linear_scan() {
        let mut w = WeightVector::from_weights(&[4.0, 1.0, 0.5, 2.5, 2.0, 0.0, 3.0]);
        let twin = uncached_twin(&w);
        w.ensure_cdf();
        assert_eq!(w.cdf.len(), w.len());
        let mut r1 = SmallRng::seed_from_u64(42);
        let mut r2 = SmallRng::seed_from_u64(42);
        for _ in 0..20_000 {
            assert_eq!(w.sample(&mut r1), twin.sample(&mut r2));
        }
    }

    #[test]
    fn cached_sample_handles_rounding_tail() {
        // Probabilities that sum well short of 1 force every u in the gap
        // into the tail; cached and uncached must agree it maps to the last
        // option.
        let mut w = WeightVector {
            p: vec![0.2, 0.2, 0.2],
            cdf: Vec::new(),
        };
        let twin = uncached_twin(&w);
        w.ensure_cdf();
        let mut r1 = SmallRng::seed_from_u64(3);
        let mut r2 = SmallRng::seed_from_u64(3);
        let mut tails = 0;
        for _ in 0..10_000 {
            let a = w.sample(&mut r1);
            assert_eq!(a, twin.sample(&mut r2));
            assert!(a < 3);
            if a == 2 {
                tails += 1;
            }
        }
        // u ∈ (0.4, 1.0) lands on index 2, so the tail is actually exercised.
        assert!(tails > 4000, "tail hit only {tails} times");
    }

    #[test]
    fn cdf_cache_invalidated_by_every_mutation() {
        let mut w = WeightVector::from_weights(&[1.0, 2.0, 3.0, 4.0]);

        w.ensure_cdf();
        w.scale_all(|i| if i == 0 { 2.0 } else { 0.5 });
        assert!(w.cdf.is_empty(), "scale_all must clear the cache");

        w.ensure_cdf();
        w.scale_one(2, 3.0);
        assert!(w.cdf.is_empty(), "scale_one must clear the cache");

        w.ensure_cdf();
        w.scale_many(&[(0, 0.5), (3, 2.0)]);
        assert!(w.cdf.is_empty(), "scale_many must clear the cache");

        // Derived vectors start without a cache.
        w.ensure_cdf();
        assert!(w.capped(0.5).cdf.is_empty());
        assert!(w.mix_uniform(0.1).cdf.is_empty());

        // After any rebuild, sampling agrees with the uncached scan.
        w.ensure_cdf();
        let twin = uncached_twin(&w);
        let mut r1 = SmallRng::seed_from_u64(7);
        let mut r2 = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert_eq!(w.sample(&mut r1), twin.sample(&mut r2));
        }
    }

    #[test]
    fn sample_mixed_matches_materialized_mixture() {
        let mut w = WeightVector::uniform(11);
        w.scale_all(|i| ((i % 4) + 1) as f64);
        let mixed = w.mix_uniform(0.05);
        let mut r1 = SmallRng::seed_from_u64(13);
        let mut r2 = SmallRng::seed_from_u64(13);
        for _ in 0..20_000 {
            assert_eq!(w.sample_mixed(0.05, &mut r1), mixed.sample(&mut r2));
        }
    }

    #[test]
    fn serde_roundtrip_excludes_cache() {
        let mut w = WeightVector::from_weights(&[1.0, 2.0, 3.0]);
        w.ensure_cdf();
        let back = WeightVector::from_value(&w.to_value()).expect("roundtrip");
        assert_eq!(back, w);
        assert!(back.cdf.is_empty());
        // The serialized form carries exactly the probability field.
        match w.to_value() {
            Value::Object(fields) => {
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].0, "p");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn deserialize_rejects_empty_vector() {
        let v = Value::Object(vec![("p".to_string(), Value::Array(Vec::new()))]);
        assert!(WeightVector::from_value(&v).is_err());
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        let mut w = WeightVector::uniform(4);
        for _ in 0..2000 {
            w.scale_all(|i| if i == 1 { 1.0 } else { 0.1 });
        }
        assert!(w.entropy() < 1e-6);
    }

    #[test]
    fn entropy_skips_exact_zero_coordinates() {
        // Regression: 0·ln(0) terms must be skipped, not folded in as NaN.
        let w = WeightVector::from_weights(&[0.5, 0.0, 0.5]);
        assert!((w.entropy() - (2f64).ln()).abs() < 1e-12);
        // Negative zero (reachable through float arithmetic) too.
        let z = WeightVector::from_weights(&[1.0, -0.0]);
        assert!(z.entropy().is_finite());
        assert!(z.entropy().abs() < 1e-12);
        let point = WeightVector::from_weights(&[0.0, 1.0, 0.0, 0.0]);
        assert_eq!(point.entropy(), 0.0);
    }

    #[test]
    fn capped_at_exact_boundary_returns_uniform() {
        // Regression: cap == 1/k sits on the feasibility boundary. The
        // result must be exactly the uniform vector (bitwise), with no
        // coordinate above the cap even at eps = 0.
        for k in 2..=64usize {
            let mut w = WeightVector::uniform(k);
            w.scale_all(|i| (i + 1) as f64);
            let cap = 1.0 / k as f64;
            let c = w.capped(cap);
            let u = WeightVector::uniform(k);
            assert_eq!(c.probabilities(), u.probabilities(), "k = {k}");
            assert!(!c.exceeds_cap(cap, 0.0), "k = {k}");
            assert_simplex(&c);
        }
    }

    #[test]
    fn capped_just_above_boundary_stays_feasible() {
        let w = WeightVector::from_weights(&[10.0, 1.0, 1.0, 1.0]);
        let cap = 0.25 * (1.0 + 1e-10);
        let c = w.capped(cap);
        assert_simplex(&c);
        assert!(!c.exceeds_cap(cap, 1e-12));
        assert!(c.probabilities().iter().all(|p| p.is_finite()));
    }
}
