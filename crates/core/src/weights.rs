//! Normalized weight vectors over the probability simplex.
//!
//! The explicit-memory MWU variants (Standard, Slate) maintain a weight
//! `w_i > 0` per option. [`WeightVector`] stores the weights *normalized*
//! (summing to 1) and renormalizes after every multiplicative update, which
//! keeps the representation immune to the underflow that raw multiplicative
//! weights suffer after a few thousand iterations.
//!
//! For the Slate variant the vector must additionally be *capped*: no
//! coordinate may exceed `1/s` (where `s` is the slate size) so that the
//! scaled vector `q = s·p` lies inside the convex hull of the slate
//! indicator vectors (§II-C of the paper). [`WeightVector::capped`]
//! implements the water-filling cap-and-renormalize step.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A probability vector over `k` options with multiplicative-update support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightVector {
    p: Vec<f64>,
}

impl WeightVector {
    /// Uniform distribution over `k` options (the MWU initialization
    /// `w_i = 1` of Fig. 1, normalized).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "weight vector needs at least one option");
        Self {
            p: vec![1.0 / k as f64; k],
        }
    }

    /// Build from arbitrary non-negative weights (normalized on entry).
    ///
    /// # Panics
    /// Panics if the weights are empty, contain a negative or non-finite
    /// entry, or sum to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        let sum: f64 = weights.iter().sum();
        assert!(
            sum.is_finite() && sum > 0.0,
            "weights must have a positive finite sum"
        );
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
        }
        Self {
            p: weights.iter().map(|w| w / sum).collect(),
        }
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True when the vector has no options (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Probability of option `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.p[i]
    }

    /// The normalized probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.p
    }

    /// Index of the highest-probability option (ties: lowest index).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for i in 1..self.p.len() {
            if self.p[i] > self.p[best] {
                best = i;
            }
        }
        best
    }

    /// Probability of the argmax option.
    pub fn max_probability(&self) -> f64 {
        self.p[self.argmax()]
    }

    /// Shannon entropy in nats. Uniform → ln k; a point mass → 0.
    pub fn entropy(&self) -> f64 {
        self.p
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum()
    }

    /// Multiplicative update: `w_i ← w_i · factor(i)`, then renormalize.
    ///
    /// `factor` must return a finite non-negative multiplier. A floor of
    /// `1e-300` per coordinate (before normalization) prevents the vector
    /// from collapsing to all-zero under extreme penalties.
    pub fn scale_all<F: FnMut(usize) -> f64>(&mut self, mut factor: F) {
        for (i, p) in self.p.iter_mut().enumerate() {
            let f = factor(i);
            debug_assert!(f.is_finite() && f >= 0.0, "bad multiplier {f}");
            *p = (*p * f).max(1e-300);
        }
        self.renormalize();
    }

    /// Multiplicative update of a single coordinate, then renormalize.
    pub fn scale_one(&mut self, i: usize, factor: f64) {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        self.p[i] = (self.p[i] * factor).max(1e-300);
        self.renormalize();
    }

    /// Batch multiplicative update: scale each `(index, factor)` pair, then
    /// renormalize once. Equivalent to a sequence of [`Self::scale_one`]
    /// calls but with a single O(k) normalization pass — the hot path for
    /// Slate, which updates `s` sampled coordinates per round.
    pub fn scale_many(&mut self, updates: &[(usize, f64)]) {
        for &(i, f) in updates {
            debug_assert!(f.is_finite() && f >= 0.0, "bad multiplier {f}");
            self.p[i] = (self.p[i] * f).max(1e-300);
        }
        self.renormalize();
    }

    /// Mix with the uniform distribution:
    /// `p ← (1−γ)·p + γ/k` — the exploration floor used by Slate.
    pub fn mix_uniform(&self, gamma: f64) -> WeightVector {
        debug_assert!((0.0..=1.0).contains(&gamma));
        let k = self.p.len() as f64;
        WeightVector {
            p: self
                .p
                .iter()
                .map(|&p| (1.0 - gamma) * p + gamma / k)
                .collect(),
        }
    }

    /// Cap-and-renormalize: the closest vector (in the water-filling sense)
    /// with every coordinate ≤ `cap`, still summing to 1.
    ///
    /// Used by Slate with `cap = 1/s` so that `s · p` is a valid vector of
    /// inclusion probabilities (each ≤ 1). Mass removed from capped
    /// coordinates is redistributed proportionally among the uncapped ones,
    /// iterating until no coordinate exceeds the cap (at most `k` rounds,
    /// each capping ≥ 1 new coordinate).
    ///
    /// # Panics
    /// Panics if `cap · k < 1` (the simplex has no point below the cap).
    pub fn capped(&self, cap: f64) -> WeightVector {
        let k = self.p.len();
        assert!(
            cap * k as f64 >= 1.0 - 1e-12,
            "cap {cap} too small for {k} options"
        );
        if cap * k as f64 <= 1.0 + 1e-12 {
            // Boundary cap == 1/k: the uniform vector is the only feasible
            // point. Return it directly — water-filling here would divide
            // a ~0 remainder by a ~0 free mass and let rounding decide
            // whether the result lands on the simplex at all.
            return WeightVector::uniform(k);
        }
        let mut p = self.p.clone();
        let mut fixed = vec![false; k];
        loop {
            // Mass already frozen at the cap, and the mass of free coords.
            let mut over = false;
            let mut free_sum = 0.0;
            let mut fixed_sum = 0.0;
            for i in 0..k {
                if fixed[i] {
                    fixed_sum += cap;
                } else if p[i] >= cap {
                    fixed[i] = true;
                    fixed_sum += cap;
                    over = true;
                } else {
                    free_sum += p[i];
                }
            }
            if !over {
                break;
            }
            let remaining = (1.0 - fixed_sum).max(0.0);
            if free_sum <= 0.0 {
                // Everything capped: distribute the remainder uniformly over
                // non-fixed coords (possible only through rounding).
                break;
            }
            let scale = remaining / free_sum;
            for i in 0..k {
                if fixed[i] {
                    p[i] = cap;
                } else {
                    p[i] *= scale;
                }
            }
        }
        for i in 0..k {
            if fixed[i] {
                p[i] = cap;
            }
        }
        let mut out = WeightVector { p };
        out.renormalize();
        out
    }

    /// Sample one option index proportional to probability.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.p.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        // Rounding tail: return the last option.
        self.p.len() - 1
    }

    /// Largest coordinate / cap diagnostics helper: true if some coordinate
    /// exceeds `cap` by more than `eps`.
    pub fn exceeds_cap(&self, cap: f64, eps: f64) -> bool {
        self.p.iter().any(|&p| p > cap + eps)
    }

    fn renormalize(&mut self) {
        let sum: f64 = self.p.iter().sum();
        debug_assert!(sum.is_finite() && sum > 0.0, "degenerate weight sum {sum}");
        let inv = 1.0 / sum;
        for p in &mut self.p {
            *p *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn assert_simplex(w: &WeightVector) {
        let sum: f64 = w.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(w.probabilities().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn uniform_is_uniform() {
        let w = WeightVector::uniform(8);
        assert_eq!(w.len(), 8);
        for i in 0..8 {
            assert!((w.get(i) - 0.125).abs() < 1e-12);
        }
        assert_simplex(&w);
        assert!((w.entropy() - (8f64).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn uniform_zero_panics() {
        let _ = WeightVector::uniform(0);
    }

    #[test]
    fn from_weights_normalizes() {
        let w = WeightVector::from_weights(&[1.0, 3.0]);
        assert!((w.get(0) - 0.25).abs() < 1e-12);
        assert!((w.get(1) - 0.75).abs() < 1e-12);
        assert_eq!(w.argmax(), 1);
    }

    #[test]
    fn scale_all_concentrates_on_winner() {
        let mut w = WeightVector::uniform(4);
        for _ in 0..200 {
            w.scale_all(|i| if i == 2 { 1.0 } else { 0.5 });
        }
        assert_eq!(w.argmax(), 2);
        assert!(w.max_probability() > 1.0 - 1e-9);
        assert_simplex(&w);
    }

    #[test]
    fn no_underflow_after_many_updates() {
        let mut w = WeightVector::uniform(16);
        for _ in 0..100_000 {
            w.scale_all(|i| if i == 0 { 1.0 } else { 0.9 });
        }
        assert_simplex(&w);
        assert_eq!(w.argmax(), 0);
        // Losers remain representable (non-NaN, ≥ 0).
        assert!(w.probabilities().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn scale_many_matches_sequential_scale_one() {
        let mut a = WeightVector::from_weights(&[1.0, 2.0, 3.0, 4.0]);
        let mut b = a.clone();
        a.scale_one(1, 2.0);
        a.scale_one(3, 0.5);
        b.scale_many(&[(1, 2.0), (3, 0.5)]);
        for i in 0..4 {
            assert!((a.get(i) - b.get(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn capped_respects_cap_and_simplex() {
        let w = WeightVector::from_weights(&[100.0, 1.0, 1.0, 1.0]);
        let c = w.capped(0.5);
        assert_simplex(&c);
        assert!(!c.exceeds_cap(0.5, 1e-9));
        // The capped coordinate sits exactly at the cap.
        assert!((c.get(0) - 0.5).abs() < 1e-9);
        // The rest keep their relative proportions.
        assert!((c.get(1) - c.get(2)).abs() < 1e-12);
    }

    #[test]
    fn capped_cascades_to_second_coordinate() {
        // After capping coord 0, coord 1 can itself exceed the cap and must
        // be capped in a second round.
        let w = WeightVector::from_weights(&[1000.0, 500.0, 1.0, 1.0, 1.0, 1.0]);
        let c = w.capped(0.25);
        assert_simplex(&c);
        assert!(!c.exceeds_cap(0.25, 1e-9));
        assert!((c.get(0) - 0.25).abs() < 1e-9);
        assert!((c.get(1) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn capped_noop_when_already_below_cap() {
        let w = WeightVector::uniform(10);
        let c = w.capped(0.2);
        for i in 0..10 {
            assert!((c.get(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn capped_infeasible_cap_panics() {
        let w = WeightVector::uniform(4);
        let _ = w.capped(0.2); // 4 * 0.2 < 1
    }

    #[test]
    fn mix_uniform_keeps_simplex_and_floors() {
        let w = WeightVector::from_weights(&[1.0, 0.0, 0.0, 0.0]);
        let m = w.mix_uniform(0.2);
        assert_simplex(&m);
        for i in 1..4 {
            assert!((m.get(i) - 0.05).abs() < 1e-12);
        }
        assert!((m.get(0) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn sample_follows_distribution() {
        let w = WeightVector::from_weights(&[0.1, 0.9]);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let ones = (0..n).filter(|_| w.sample(&mut rng) == 1).count();
        let rate = ones as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn sample_handles_rounding_tail() {
        let w = WeightVector::uniform(3);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(w.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        let mut w = WeightVector::uniform(4);
        for _ in 0..2000 {
            w.scale_all(|i| if i == 1 { 1.0 } else { 0.1 });
        }
        assert!(w.entropy() < 1e-6);
    }

    #[test]
    fn entropy_skips_exact_zero_coordinates() {
        // Regression: 0·ln(0) terms must be skipped, not folded in as NaN.
        let w = WeightVector::from_weights(&[0.5, 0.0, 0.5]);
        assert!((w.entropy() - (2f64).ln()).abs() < 1e-12);
        // Negative zero (reachable through float arithmetic) too.
        let z = WeightVector::from_weights(&[1.0, -0.0]);
        assert!(z.entropy().is_finite());
        assert!(z.entropy().abs() < 1e-12);
        let point = WeightVector::from_weights(&[0.0, 1.0, 0.0, 0.0]);
        assert_eq!(point.entropy(), 0.0);
    }

    #[test]
    fn capped_at_exact_boundary_returns_uniform() {
        // Regression: cap == 1/k sits on the feasibility boundary. The
        // result must be exactly the uniform vector (bitwise), with no
        // coordinate above the cap even at eps = 0.
        for k in 2..=64usize {
            let mut w = WeightVector::uniform(k);
            w.scale_all(|i| (i + 1) as f64);
            let cap = 1.0 / k as f64;
            let c = w.capped(cap);
            let u = WeightVector::uniform(k);
            assert_eq!(c.probabilities(), u.probabilities(), "k = {k}");
            assert!(!c.exceeds_cap(cap, 0.0), "k = {k}");
            assert_simplex(&c);
        }
    }

    #[test]
    fn capped_just_above_boundary_stays_feasible() {
        let w = WeightVector::from_weights(&[10.0, 1.0, 1.0, 1.0]);
        let cap = 0.25 * (1.0 + 1e-10);
        let c = w.capped(cap);
        assert_simplex(&c);
        assert!(!c.exceeds_cap(cap, 1e-12));
        assert!(c.probabilities().iter().all(|p| p.is_finite()));
    }
}
