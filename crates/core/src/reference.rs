//! Naive, allocation-heavy reference implementations of the MWU round
//! kernels, retained as test oracles for the allocation-free refactor.
//!
//! Each `Reference*` struct reproduces the *pre-refactor* shape of one
//! algorithm's round: fresh vectors every plan, allocating simplex helpers
//! (`mix_uniform`, `capped`, `systematic_sample`, `decompose_into_slates`,
//! `sample_decomposition`), one RNG draw per sampling decision in the same
//! order. The property tests below drive a reference and its production
//! twin with twin-seeded RNGs and assert that the weight trajectories are
//! **bit-identical** (`f64::to_bits`), not merely close — the guarantee the
//! determinism suites and the CI thread-matrix byte-diffs rely on.
//!
//! This module is compiled only under `cfg(test)`.

use crate::distributed::DistributedConfig;
use crate::schedule::LearningRate;
use crate::slate::{
    decompose_into_slates, sample_decomposition, systematic_sample, SlateConfig, SlateSampling,
};
use crate::weights::WeightVector;
use rand::rngs::SmallRng;
use rand::RngCore;

/// Naive Standard MWU: raw probability vector, fresh plan vector per round,
/// the same multiplicative update and renormalization float ops as
/// `WeightVector::scale_all` + `renormalize`.
pub struct ReferenceStandard {
    p: Vec<f64>,
    eta: LearningRate,
    iteration: usize,
}

impl ReferenceStandard {
    pub fn new(k: usize, eta: LearningRate) -> Self {
        Self {
            p: vec![1.0 / k as f64; k],
            eta,
            iteration: 0,
        }
    }

    pub fn plan(&self) -> Vec<usize> {
        (0..self.p.len()).collect()
    }

    pub fn update(&mut self, rewards: &[f64]) {
        assert_eq!(rewards.len(), self.p.len());
        self.iteration += 1;
        let eta = self.eta.at(self.iteration);
        let base = 1.0 - eta;
        for (i, p) in self.p.iter_mut().enumerate() {
            let cost = 1.0 - crate::sanitize_reward(rewards[i]);
            let f = if cost == 0.0 {
                1.0
            } else if cost == 1.0 {
                base
            } else {
                base.powf(cost)
            };
            *p = (*p * f).max(1e-300);
        }
        let sum: f64 = self.p.iter().sum();
        let inv = 1.0 / sum;
        for p in &mut self.p {
            *p *= inv;
        }
    }

    pub fn probabilities(&self) -> &[f64] {
        &self.p
    }
}

/// Naive Slate MWU: the allocating mix → cap → scale pipeline rebuilt from
/// scratch every round via the public simplex API, sampled with the
/// allocating samplers, updated through a fresh multiplier vector. Uses the
/// same slate-size / η derivation and the same importance-weight floor as
/// `SlateMwu`.
pub struct ReferenceSlate {
    weights: WeightVector,
    gamma: f64,
    s: usize,
    eta: f64,
    sampling: SlateSampling,
    plan_q: Vec<f64>,
    last_plan: Vec<usize>,
}

impl ReferenceSlate {
    pub fn new(k: usize, config: SlateConfig) -> Self {
        let s = config
            .slate_size
            .unwrap_or_else(|| ((config.gamma * k as f64).ceil() as usize).clamp(2, k))
            .min(k);
        let eta = config
            .eta
            .unwrap_or(2.0 * config.gamma * s as f64 / k as f64);
        Self {
            weights: WeightVector::uniform(k),
            gamma: config.gamma,
            s,
            eta,
            sampling: config.sampling,
            plan_q: Vec::new(),
            last_plan: Vec::new(),
        }
    }

    pub fn plan(&mut self, rng: &mut SmallRng) -> Vec<usize> {
        let s = self.s;
        let mixed = self.weights.mix_uniform(self.gamma);
        let capped = mixed.capped(1.0 / s as f64);
        let q: Vec<f64> = capped
            .probabilities()
            .iter()
            .map(|&p| (s as f64 * p).min(1.0))
            .collect();
        let slate = match self.sampling {
            SlateSampling::Systematic => systematic_sample(&q, s, rng),
            SlateSampling::ConvexDecomposition => {
                let d = decompose_into_slates(&q, s);
                sample_decomposition(&d, rng)
            }
        };
        self.plan_q = slate.iter().map(|&i| q[i]).collect();
        self.last_plan = slate.clone();
        slate
    }

    pub fn update(&mut self, rewards: &[f64]) {
        assert_eq!(rewards.len(), self.last_plan.len());
        let q_floor = 0.5 * self.gamma * self.s as f64 / self.weights.len() as f64;
        let updates: Vec<(usize, f64)> = self
            .last_plan
            .iter()
            .enumerate()
            .map(|(j, &arm)| {
                let q = self.plan_q[j].max(q_floor);
                let g_hat = crate::sanitize_reward(rewards[j]) / q;
                (arm, (self.eta * g_hat).exp())
            })
            .collect();
        self.weights.scale_many(&updates);
    }

    pub fn weights(&self) -> &WeightVector {
        &self.weights
    }
}

/// Naive Distributed MWU: fresh observation / plan vectors every round, the
/// same integer-threshold Bernoulli draws and multiply-shift range draws in
/// the same order as `DistributedMwu`.
pub struct ReferenceDistributed {
    k: usize,
    config: DistributedConfig,
    choices: Vec<u32>,
    counts: Vec<u32>,
    observed: Vec<u32>,
}

impl ReferenceDistributed {
    pub fn new(k: usize, config: DistributedConfig) -> Self {
        let pop = config.population_for(k);
        let choices: Vec<u32> = (0..pop).map(|j| (j % k) as u32).collect();
        let mut counts = vec![0u32; k];
        for &c in &choices {
            counts[c as usize] += 1;
        }
        Self {
            k,
            config,
            choices,
            counts,
            observed: vec![0; pop],
        }
    }

    pub fn plan(&mut self, rng: &mut SmallRng) -> Vec<usize> {
        let pop = self.choices.len();
        let mu_threshold = (self.config.mu * u64::MAX as f64) as u64;
        let k = self.k as u64;
        let pop_minus_1 = (pop - 1) as u64;
        for j in 0..pop {
            if rng.next_u64() < mu_threshold {
                let opt = ((rng.next_u64() as u128 * k as u128) >> 64) as usize;
                self.observed[j] = opt as u32;
            } else {
                let mut nb = ((rng.next_u64() as u128 * pop_minus_1 as u128) >> 64) as usize;
                if nb >= j {
                    nb += 1;
                }
                self.observed[j] = self.choices[nb];
            }
        }
        self.observed.iter().map(|&o| o as usize).collect()
    }

    pub fn update(&mut self, rewards: &[f64], rng: &mut SmallRng) {
        let pop = self.choices.len();
        assert_eq!(rewards.len(), pop);
        let a = self.config.alpha;
        let b = self.config.beta;
        let alpha_threshold = (a * u64::MAX as f64) as u64;
        let beta_threshold = (b * u64::MAX as f64) as u64;
        for (j, &r) in rewards.iter().enumerate() {
            let r = crate::sanitize_reward(r);
            let threshold = if r <= 0.0 {
                alpha_threshold
            } else if r >= 1.0 {
                beta_threshold
            } else {
                ((a + (b - a) * r) * u64::MAX as f64) as u64
            };
            if rng.next_u64() < threshold {
                let new = self.observed[j];
                let old = self.choices[j];
                if new != old {
                    self.counts[old as usize] -= 1;
                    self.counts[new as usize] += 1;
                    self.choices[j] = new;
                }
            }
        }
    }

    pub fn counts(&self) -> &[u32] {
        &self.counts
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::slate::SlateMwu;
    use crate::standard::{StandardConfig, StandardMwu};
    use crate::{DistributedMwu, MwuAlgorithm};
    use proptest::prelude::*;
    use rand::SeedableRng;

    /// Deterministic reward in [0, 1] keyed by (arm, round): identical
    /// inputs for the reference and its production twin without consuming
    /// either RNG stream.
    fn reward(arm: usize, t: usize) -> f64 {
        ((arm as u64 * 2654435761 + t as u64 * 97531 + 7) % 1000) as f64 / 999.0
    }

    fn bits(p: &[f64]) -> Vec<u64> {
        p.iter().map(|x| x.to_bits()).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn standard_trajectory_is_bit_identical(
            seed in 0u64..1_000_000,
            k in 2usize..48,
            rounds in 10usize..60,
        ) {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            let mut reference = ReferenceStandard::new(k, alg.config().eta);
            let mut rng = SmallRng::seed_from_u64(seed);
            for t in 0..rounds {
                let plan = alg.plan(&mut rng).to_vec();
                prop_assert_eq!(&plan, &reference.plan());
                let rewards: Vec<f64> =
                    plan.iter().map(|&a| reward(a, t)).collect();
                alg.update(&rewards, &mut rng);
                reference.update(&rewards);
                prop_assert_eq!(
                    bits(&alg.probabilities()),
                    bits(reference.probabilities())
                );
            }
        }

        #[test]
        fn slate_trajectory_is_bit_identical(
            seed in 0u64..1_000_000,
            k in 4usize..40,
            slate_size in 2usize..6,
            decomp in any::<bool>(),
        ) {
            prop_assume!(slate_size <= k);
            let config = SlateConfig {
                slate_size: Some(slate_size),
                sampling: if decomp {
                    SlateSampling::ConvexDecomposition
                } else {
                    SlateSampling::Systematic
                },
                ..SlateConfig::default()
            };
            let mut alg = SlateMwu::new(k, config);
            let mut reference = ReferenceSlate::new(k, config);
            let mut r1 = SmallRng::seed_from_u64(seed);
            let mut r2 = SmallRng::seed_from_u64(seed);
            for t in 0..40 {
                let plan = alg.plan(&mut r1).to_vec();
                prop_assert_eq!(&plan, &reference.plan(&mut r2));
                let rewards: Vec<f64> =
                    plan.iter().map(|&a| reward(a, t)).collect();
                alg.update(&rewards, &mut r1);
                reference.update(&rewards);
                prop_assert_eq!(
                    bits(&alg.probabilities()),
                    bits(reference.weights().probabilities())
                );
            }
        }

        #[test]
        fn distributed_trajectory_is_bit_identical(
            seed in 0u64..1_000_000,
            k in 2usize..12,
        ) {
            let config = DistributedConfig::default();
            let mut alg = DistributedMwu::new(k, config);
            let mut reference = ReferenceDistributed::new(k, config);
            let mut r1 = SmallRng::seed_from_u64(seed);
            let mut r2 = SmallRng::seed_from_u64(seed);
            for t in 0..30 {
                let plan = alg.plan(&mut r1).to_vec();
                prop_assert_eq!(&plan, &reference.plan(&mut r2));
                let rewards: Vec<f64> =
                    plan.iter().map(|&a| reward(a, t)).collect();
                alg.update(&rewards, &mut r1);
                reference.update(&rewards, &mut r2);
                prop_assert_eq!(alg.counts(), reference.counts());
            }
        }
    }
}
