//! Phase-attributed span profiler.
//!
//! Answers the question the scaling plateau left open (see
//! `docs/PERFORMANCE.md`): *where does the wall-clock go?* The profiler is a
//! process-global, hierarchical span accumulator with a fixed taxonomy of
//! [`Phase`]s spanning every layer of the stack — round kernels, the worker
//! pool, the simulated network, the repair driver, and the persistence
//! service.
//!
//! ## Discipline
//!
//! The profiler follows the same two rules as the [`crate::trace`] Observer
//! pipeline:
//!
//! 1. **Zero overhead when disabled.** [`span`] starts with one relaxed
//!    atomic load; when profiling is off it returns an unarmed guard without
//!    reading the clock or touching thread-local state. The
//!    `prof_overhead` bench in `crates/bench` gates this the same way
//!    `null_observer_overhead` gates the Observer.
//! 2. **Never on the bit-identity path.** Span data flows only into the
//!    in-memory registry and (on request) into a separate `profile/v1`
//!    report file. No CSV, JSONL trace, checkpoint, or session file ever
//!    contains profiler output, so enabling profiling leaves every
//!    deterministic artifact byte-identical.
//!
//! ## Span semantics
//!
//! [`span`] returns an RAII guard. Guards nest on a per-thread stack: when a
//! guard drops, its *total* duration is recorded under its phase, the time
//! spent in enclosed child spans is subtracted to produce *self* time, and
//! the total is charged to the parent frame's child accumulator. Layers that
//! cannot depend on this crate (the vendored pool, `simnet`) report leaf
//! durations through [`record_external`], which performs no parent
//! attribution — those phases overlap the span tree rather than partitioning
//! it, and the report marks them as external.
//!
//! ## Clocks
//!
//! Production uses the monotonic [`std::time::Instant`] clock. Tests install
//! a deterministic counting clock ([`set_counting_clock`]) whose reads
//! return `step, 2·step, 3·step, …`, making span durations exactly
//! assertable. [`Clock`] is the per-instance form of the same abstraction,
//! used by [`crate::trace::MetricsSink`] for its latency histogram.

use crate::stats::Histogram;
use serde::Serialize;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Schema identifier written into every [`ProfileReport`].
pub const PROFILE_SCHEMA: &str = "profile/v1";

/// Statically-registered phase IDs — the complete span taxonomy.
///
/// One variant per instrumented region, spanning every layer: the MWU round
/// kernels, the vendored worker pool, the simnet executor, the repair
/// driver, and the persistence service. The discriminant indexes the
/// per-thread accumulator arrays, so the set is closed by design: adding a
/// phase means adding a variant here (and to [`Phase::ALL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Round kernel: planning which arm each agent evaluates ([`crate::MwuAlgorithm::plan`]).
    Plan,
    /// Round kernel: water-filling projection onto the capped simplex.
    WaterFill,
    /// Round kernel: weight-vector normalization / renormalization.
    Normalize,
    /// Round kernel: sampling arms or slates from the weight vector.
    Sample,
    /// Round kernel: multiplicative weight update ([`crate::MwuAlgorithm::update`]).
    Update,
    /// Worker pool (external): delay between job submission and its first
    /// claimed chunk.
    PoolQueueWait,
    /// Worker pool (external): worker parked waiting for work.
    PoolPark,
    /// Worker pool (external): executing one claimed chunk of a parallel job.
    PoolChunk,
    /// Worker pool (external): submitter blocked in `run_indexed` — covers
    /// its own participation plus the wait for stragglers.
    PoolSubmit,
    /// Simnet executor (external): thread blocked on the end-of-round
    /// barrier.
    SimRoundBarrier,
    /// Gossip observation encode (serialize outgoing observations).
    GossipEncode,
    /// Gossip observation decode / apply (incorporate observed neighbors).
    GossipDecode,
    /// Repair driver: one probe batch — patch evaluations for one iteration.
    ProbeLoop,
    /// Repair driver: serializing and atomically writing a checkpoint.
    CheckpointWrite,
    /// Service: running one bounded slice of repair iterations.
    SliceRun,
    /// Service: appending trace bytes to the session's trace segment.
    TraceAppend,
    /// Service: file-content fsync inside durable writes.
    Fsync,
    /// Service: atomic replace of `session.json` (tmp + fsync + rename).
    SessionReplace,
    /// Service: batched group-commit synchronization at the daemon's round
    /// barrier — one pass making every staged write durable.
    SyncBarrier,
    /// Service: daemon spool scan discovering session directories.
    SpoolScan,
    /// Service: daemon scheduling — one round's dispatch and barrier
    /// bookkeeping around the parallel session drive.
    Schedule,
}

/// Number of phases — length of every per-thread accumulator array.
pub const NUM_PHASES: usize = 21;

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Plan,
        Phase::WaterFill,
        Phase::Normalize,
        Phase::Sample,
        Phase::Update,
        Phase::PoolQueueWait,
        Phase::PoolPark,
        Phase::PoolChunk,
        Phase::PoolSubmit,
        Phase::SimRoundBarrier,
        Phase::GossipEncode,
        Phase::GossipDecode,
        Phase::ProbeLoop,
        Phase::CheckpointWrite,
        Phase::SliceRun,
        Phase::TraceAppend,
        Phase::Fsync,
        Phase::SessionReplace,
        Phase::SyncBarrier,
        Phase::SpoolScan,
        Phase::Schedule,
    ];

    /// Stable snake_case name, as written into `profile/v1` reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::WaterFill => "water_fill",
            Phase::Normalize => "normalize",
            Phase::Sample => "sample",
            Phase::Update => "update",
            Phase::PoolQueueWait => "pool_queue_wait",
            Phase::PoolPark => "pool_park",
            Phase::PoolChunk => "pool_chunk",
            Phase::PoolSubmit => "pool_submit",
            Phase::SimRoundBarrier => "sim_round_barrier",
            Phase::GossipEncode => "gossip_encode",
            Phase::GossipDecode => "gossip_decode",
            Phase::ProbeLoop => "probe_loop",
            Phase::CheckpointWrite => "checkpoint_write",
            Phase::SliceRun => "slice_run",
            Phase::TraceAppend => "trace_append",
            Phase::Fsync => "fsync",
            Phase::SessionReplace => "session_replace",
            Phase::SyncBarrier => "sync_barrier",
            Phase::SpoolScan => "spool_scan",
            Phase::Schedule => "schedule",
        }
    }

    /// True for phases reported through [`record_external`] by layers that
    /// cannot open spans (the vendored pool, simnet). External phases
    /// overlap the span tree instead of partitioning it.
    pub fn is_external(self) -> bool {
        matches!(
            self,
            Phase::PoolQueueWait
                | Phase::PoolPark
                | Phase::PoolChunk
                | Phase::PoolSubmit
                | Phase::SimRoundBarrier
        )
    }

    fn index(self) -> usize {
        self as usize
    }
}

// ---------------------------------------------------------------------------
// Global clock
// ---------------------------------------------------------------------------

const CLOCK_MONOTONIC: u8 = 0;
const CLOCK_COUNTING: u8 = 1;

static CLOCK_MODE: AtomicU8 = AtomicU8::new(CLOCK_MONOTONIC);
static CLOCK_STEP: AtomicU64 = AtomicU64::new(1);
static CLOCK_TICKS: AtomicU64 = AtomicU64::new(0);
static CLOCK_EPOCH: OnceLock<Instant> = OnceLock::new();

/// Read the profiler's global clock, in nanoseconds.
///
/// Monotonic mode (default): nanoseconds since the first read in this
/// process. Counting mode: each read advances a shared counter by the
/// configured step, so durations are exact functions of read order.
pub fn now_ns() -> u64 {
    if CLOCK_MODE.load(Ordering::Relaxed) == CLOCK_COUNTING {
        let step = CLOCK_STEP.load(Ordering::Relaxed);
        CLOCK_TICKS.fetch_add(step, Ordering::Relaxed) + step
    } else {
        let epoch = CLOCK_EPOCH.get_or_init(Instant::now);
        epoch.elapsed().as_nanos() as u64
    }
}

/// Switch the global clock to deterministic counting mode: successive reads
/// return `step_ns, 2·step_ns, …`. Test-only by convention; resets the tick
/// counter.
pub fn set_counting_clock(step_ns: u64) {
    CLOCK_STEP.store(step_ns.max(1), Ordering::Relaxed);
    CLOCK_TICKS.store(0, Ordering::Relaxed);
    CLOCK_MODE.store(CLOCK_COUNTING, Ordering::Relaxed);
}

/// Restore the production monotonic clock.
pub fn set_monotonic_clock() {
    CLOCK_MODE.store(CLOCK_MONOTONIC, Ordering::Relaxed);
}

/// Name of the clock currently installed (`"monotonic"` / `"counting"`),
/// recorded in every report so consumers know whether durations are
/// wall-clock.
pub fn clock_name() -> &'static str {
    if CLOCK_MODE.load(Ordering::Relaxed) == CLOCK_COUNTING {
        "counting"
    } else {
        "monotonic"
    }
}

/// A per-instance clock sharing the profiler's two modes — the injectable
/// form used by [`crate::trace::MetricsSink`] so latency histograms are
/// exactly assertable in tests.
///
/// Unlike the profiler's global clock, every `Clock` value owns its state:
/// a monotonic clock reads elapsed time since its construction, a counting
/// clock owns its tick counter.
#[derive(Debug)]
pub struct Clock {
    counting_step: Option<u64>,
    ticks: AtomicU64,
    epoch: Instant,
}

impl Clock {
    /// Production clock: [`Instant`]-based, nanoseconds since construction.
    pub fn monotonic() -> Self {
        Clock {
            counting_step: None,
            ticks: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Deterministic clock whose reads return `step_ns, 2·step_ns, …`.
    pub fn counting(step_ns: u64) -> Self {
        Clock {
            counting_step: Some(step_ns.max(1)),
            ticks: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Read the clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match self.counting_step {
            Some(step) => self.ticks.fetch_add(step, Ordering::Relaxed) + step,
            None => self.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// `"monotonic"` or `"counting"`.
    pub fn name(&self) -> &'static str {
        if self.counting_step.is_some() {
            "counting"
        } else {
            "monotonic"
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::monotonic()
    }
}

impl Clone for Clock {
    fn clone(&self) -> Self {
        Clock {
            counting_step: self.counting_step,
            ticks: AtomicU64::new(self.ticks.load(Ordering::Relaxed)),
            epoch: self.epoch,
        }
    }
}

// ---------------------------------------------------------------------------
// Enable gate
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is profiling currently enabled? One relaxed load — the *only* cost paid
/// by instrumented code when profiling is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the profiler on or off. Spans opened while enabled record on drop
/// even if profiling is disabled in between (the guard is already armed).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Per-thread accumulators
// ---------------------------------------------------------------------------

/// Accumulated data for one phase on one thread.
#[derive(Debug, Clone)]
struct PhaseAcc {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    hist: Histogram,
}

impl PhaseAcc {
    fn new() -> Self {
        PhaseAcc {
            count: 0,
            total_ns: 0,
            self_ns: 0,
            hist: Histogram::new(),
        }
    }

    fn record(&mut self, total_ns: u64, self_ns: u64) {
        self.count += 1;
        self.total_ns += total_ns;
        self.self_ns += self_ns;
        self.hist.record(total_ns as f64);
    }

    fn merge(&mut self, other: &PhaseAcc) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.hist.merge(&other.hist);
    }
}

/// One thread's slot in the global registry. The mutex is uncontended in
/// steady state (only the owning thread records; snapshots lock briefly at
/// barriers), which keeps the enabled path allocation- and syscall-free.
struct Slot {
    label: String,
    accs: Mutex<Vec<PhaseAcc>>,
}

impl Slot {
    fn new(label: String) -> Self {
        Slot {
            label,
            accs: Mutex::new(vec![PhaseAcc::new(); NUM_PHASES]),
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Slot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct Frame {
    phase: Phase,
    start_ns: u64,
    child_ns: u64,
}

thread_local! {
    static THREAD_SLOT: RefCell<Option<Arc<Slot>>> = const { RefCell::new(None) };
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn with_thread_slot<R>(f: impl FnOnce(&Slot) -> R) -> R {
    THREAD_SLOT.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            let mut reg = registry().lock().unwrap();
            let label = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{:02}", reg.len()));
            let arc = Arc::new(Slot::new(label));
            reg.push(Arc::clone(&arc));
            *slot = Some(arc);
        }
        f(slot.as_ref().unwrap())
    })
}

fn record_on_thread(phase: Phase, total_ns: u64, self_ns: u64) {
    with_thread_slot(|slot| {
        slot.accs.lock().unwrap()[phase.index()].record(total_ns, self_ns);
    });
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard for one open span. Created by [`span`]; records on drop.
#[must_use = "a span measures the scope of its guard — bind it with `let _span = ...`"]
pub struct SpanGuard {
    phase: Option<Phase>,
}

/// Open a span for `phase` on the current thread.
///
/// Disabled path: one relaxed atomic load, an unarmed guard, no clock read.
/// Enabled path: pushes a frame on the thread's span stack; the matching
/// drop computes total and self time and charges the parent frame.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    if !enabled() {
        return SpanGuard { phase: None };
    }
    let start_ns = now_ns();
    SPAN_STACK.with(|stack| {
        stack.borrow_mut().push(Frame {
            phase,
            start_ns,
            child_ns: 0,
        });
    });
    SpanGuard { phase: Some(phase) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(phase) = self.phase else { return };
        let end_ns = now_ns();
        let finished = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop in LIFO order within a thread, so the top frame is
            // ours; a mismatch means a guard crossed threads, which we
            // tolerate by discarding rather than corrupting attribution.
            match stack.last() {
                Some(top) if top.phase == phase => {
                    let frame = stack.pop().unwrap();
                    let total_ns = end_ns.saturating_sub(frame.start_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.child_ns += total_ns;
                    }
                    Some((total_ns, total_ns.saturating_sub(frame.child_ns)))
                }
                _ => None,
            }
        });
        if let Some((total_ns, self_ns)) = finished {
            record_on_thread(phase, total_ns, self_ns);
        }
    }
}

/// Record an externally-measured leaf duration for `phase` on the current
/// thread (self time = total time; no parent attribution).
///
/// This is the bridge for layers that cannot depend on `mwu-core`: the
/// vendored pool and `simnet` expose fn-pointer hooks, and the experiment
/// harness forwards their events here. No-op while disabled.
#[inline]
pub fn record_external(phase: Phase, duration_ns: u64) {
    if !enabled() {
        return;
    }
    record_on_thread(phase, duration_ns, duration_ns);
}

// ---------------------------------------------------------------------------
// Snapshots and reports
// ---------------------------------------------------------------------------

/// Aggregated results for one phase — one row of a [`ProfileReport`].
#[derive(Debug, Clone, Serialize)]
pub struct SpanReport {
    /// Phase name ([`Phase::name`]).
    pub phase: String,
    /// True if reported via [`record_external`] (overlaps the span tree).
    pub external: bool,
    /// Number of completed spans.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Total minus time spent in child spans, nanoseconds.
    pub self_ns: u64,
    /// Median span duration, nanoseconds (log₂-bucket estimate).
    pub p50_ns: f64,
    /// 99th-percentile span duration, nanoseconds (log₂-bucket estimate).
    pub p99_ns: f64,
}

/// Per-thread slice of a [`ProfileReport`].
#[derive(Debug, Clone, Serialize)]
pub struct ThreadReport {
    /// Thread label (OS thread name, or `thread-NN` registration order).
    pub thread: String,
    /// Phases this thread recorded, in [`Phase::ALL`] order.
    pub spans: Vec<SpanReport>,
}

/// Serializable `profile/v1` snapshot of everything recorded since the last
/// [`reset`].
///
/// Durations are wall-clock nanoseconds (monotonic clock) and therefore
/// **non-deterministic**: profile reports are measurement artifacts, never
/// inputs to the byte-identity contract.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// Schema tag: [`PROFILE_SCHEMA`].
    pub schema: String,
    /// Clock the durations were read from (`"monotonic"` / `"counting"`).
    pub clock: String,
    /// Number of threads that recorded at least one span.
    pub threads: usize,
    /// Cross-thread aggregate, one row per phase with any activity, in
    /// [`Phase::ALL`] order.
    pub spans: Vec<SpanReport>,
    /// Per-thread breakdown, sorted by thread label.
    pub per_thread: Vec<ThreadReport>,
}

impl ProfileReport {
    /// Total nanoseconds attributed to `phase` in the cross-thread
    /// aggregate (0 if the phase never ran).
    pub fn total_ns(&self, phase: Phase) -> u64 {
        self.spans
            .iter()
            .find(|s| s.phase == phase.name())
            .map(|s| s.total_ns)
            .unwrap_or(0)
    }

    /// Render as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(&self.to_value())
    }
}

fn rows_of(accs: &[PhaseAcc]) -> Vec<SpanReport> {
    Phase::ALL
        .iter()
        .filter_map(|&phase| {
            let acc = &accs[phase.index()];
            if acc.count == 0 {
                return None;
            }
            Some(SpanReport {
                phase: phase.name().to_owned(),
                external: phase.is_external(),
                count: acc.count,
                total_ns: acc.total_ns,
                self_ns: acc.self_ns,
                p50_ns: acc.hist.try_quantile(0.5).unwrap_or(0.0),
                p99_ns: acc.hist.try_quantile(0.99).unwrap_or(0.0),
            })
        })
        .collect()
}

/// Merge every thread's accumulators into a [`ProfileReport`].
///
/// Call at a barrier (end of run, between sweeps): threads still inside
/// spans contribute only their already-completed spans.
pub fn snapshot() -> ProfileReport {
    let reg = registry().lock().unwrap();
    let mut merged = vec![PhaseAcc::new(); NUM_PHASES];
    let mut per_thread = Vec::new();
    for slot in reg.iter() {
        let accs = slot.accs.lock().unwrap();
        let mut active = false;
        for (m, a) in merged.iter_mut().zip(accs.iter()) {
            if a.count > 0 {
                active = true;
                m.merge(a);
            }
        }
        if active {
            per_thread.push(ThreadReport {
                thread: slot.label.clone(),
                spans: rows_of(&accs),
            });
        }
    }
    per_thread.sort_by(|a, b| a.thread.cmp(&b.thread));
    ProfileReport {
        schema: PROFILE_SCHEMA.to_owned(),
        clock: clock_name().to_owned(),
        threads: per_thread.len(),
        spans: rows_of(&merged),
        per_thread,
    }
}

/// Zero every registered thread's accumulators (the registry itself — slot
/// labels and thread bindings — is retained).
pub fn reset() {
    let reg = registry().lock().unwrap();
    for slot in reg.iter() {
        let mut accs = slot.accs.lock().unwrap();
        for acc in accs.iter_mut() {
            *acc = PhaseAcc::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global; serialize tests that toggle it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    struct Armed;
    impl Armed {
        fn new(step_ns: u64) -> Self {
            set_counting_clock(step_ns);
            reset();
            set_enabled(true);
            Armed
        }
    }
    impl Drop for Armed {
        fn drop(&mut self) {
            set_enabled(false);
            set_monotonic_clock();
            reset();
        }
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        {
            let _s = span(Phase::Plan);
        }
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn counting_clock_makes_durations_exact() {
        let _g = guard();
        let _armed = Armed::new(10);
        {
            // Clock reads: start=10, end=20 → total 10 ns.
            let _s = span(Phase::Plan);
        }
        let report = snapshot();
        assert_eq!(report.clock, "counting");
        assert_eq!(report.total_ns(Phase::Plan), 10);
        let row = &report.spans[0];
        assert_eq!((row.count, row.self_ns), (1, 10));
    }

    #[test]
    fn nesting_attributes_self_and_total() {
        let _g = guard();
        let _armed = Armed::new(1);
        {
            // Reads: outer start=1, inner start=2, inner end=3, outer end=4.
            let _outer = span(Phase::Update);
            let _inner = span(Phase::Normalize);
        }
        let report = snapshot();
        assert_eq!(report.total_ns(Phase::Update), 3);
        assert_eq!(report.total_ns(Phase::Normalize), 1);
        let outer = report.spans.iter().find(|s| s.phase == "update").unwrap();
        // 3 ns total minus the 1 ns inner span (its guard-drop clock read
        // is outside the child's measured window, hence 2 not 1).
        assert_eq!(outer.self_ns, 2);
    }

    #[test]
    fn external_records_are_leaves() {
        let _g = guard();
        let _armed = Armed::new(1);
        record_external(Phase::PoolChunk, 500);
        record_external(Phase::PoolChunk, 700);
        let report = snapshot();
        let row = report
            .spans
            .iter()
            .find(|s| s.phase == "pool_chunk")
            .unwrap();
        assert!(row.external);
        assert_eq!((row.count, row.total_ns, row.self_ns), (2, 1200, 1200));
    }

    #[test]
    fn snapshot_merges_threads_and_reset_clears() {
        let _g = guard();
        let _armed = Armed::new(1);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span(Phase::SliceRun);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = snapshot();
        let row = report
            .spans
            .iter()
            .find(|s| s.phase == "slice_run")
            .unwrap();
        assert_eq!(row.count, 4);
        assert!(report.threads >= 4);
        reset();
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn report_serializes_with_schema() {
        let _g = guard();
        let _armed = Armed::new(1);
        {
            let _s = span(Phase::Fsync);
        }
        let report = snapshot();
        let json = report.to_json();
        let v = serde::json::parse(&json).unwrap();
        assert_eq!(v.field("schema").as_str(), Some(PROFILE_SCHEMA));
        assert_eq!(v.field("clock").as_str(), Some("counting"));
        assert_eq!(v.field("spans").as_array().map(|a| a.len()), Some(1));
    }

    #[test]
    fn phase_names_are_unique_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for (i, &p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "Phase::ALL order must match discriminants");
            assert!(seen.insert(p.name()), "duplicate phase name {}", p.name());
        }
        assert_eq!(seen.len(), NUM_PHASES);
    }

    #[test]
    fn clock_value_type_is_assertable() {
        let c = Clock::counting(5);
        assert_eq!(c.now_ns(), 5);
        assert_eq!(c.now_ns(), 10);
        assert_eq!(c.name(), "counting");
        let m = Clock::monotonic();
        assert_eq!(m.name(), "monotonic");
        let a = m.now_ns();
        let b = m.now_ns();
        assert!(b >= a);
    }
}
