//! Run telemetry: a zero-overhead-when-disabled observer pipeline.
//!
//! Every driver in this workspace — [`crate::run::run_to_convergence`],
//! [`crate::regret::run_with_regret`], the `mwrepair` online phase, and the
//! experiment grid in `mwu-experiments` — has an `*_observed` entry point
//! taking an [`Observer`]. Drivers construct [`TraceEvent`]s only behind an
//! `observer.enabled()` check, and [`NullObserver::enabled`] is a constant
//! `false`, so after monomorphization the unobserved path compiles to the
//! pre-telemetry loop: no event construction, no `probabilities()` clones,
//! no entropy computation.
//!
//! Three sinks cover the common uses:
//!
//! * [`JsonlSink`] — one JSON event per line. Event payloads contain no
//!   wall-clock fields, so two runs with the same seed emit byte-identical
//!   traces (locked down by `tests/tests/telemetry.rs`). Each
//!   [`TraceEvent::Replicate`] header carries the replicate's derived
//!   `run_seed` and `max_iterations`, which is everything needed to re-run
//!   that replicate alone.
//! * [`MetricsSink`] — counters and streaming histograms
//!   ([`crate::stats::Counter`], [`crate::stats::Histogram`]) of iteration
//!   latency (measured by the sink's own clock, deliberately outside the
//!   event payloads), reward, and per-round congestion.
//! * [`ProgressSink`] — human-oriented stderr narration of grid progress,
//!   replacing the ad-hoc `eprintln!` calls the grid runner used to hold.
//!
//! [`Tee`] composes two observers (e.g. a trace file plus progress lines).

use crate::prof::Clock;
use crate::stats::{Counter, Histogram};
use crate::{CommStats, RunOutcome};
use serde::{Deserialize, Serialize};
use std::io::Write;

/// Shannon entropy (nats) of a probability vector; zero-mass entries
/// contribute nothing. The per-iteration "how undecided is the algorithm"
/// signal carried by [`IterationEvent`].
pub fn entropy(p: &[f64]) -> f64 {
    -p.iter()
        .filter(|&&pi| pi > 0.0)
        .map(|&pi| pi * pi.ln())
        .sum::<f64>()
}

/// Header of one observed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStartEvent {
    /// Variant name ("standard" / "slate" / "distributed").
    pub algorithm: &'static str,
    /// Number of arms.
    pub num_arms: usize,
    /// Parallel agents per iteration.
    pub cpus_per_iteration: usize,
    /// The run's RNG seed (re-running with this seed reproduces the trace).
    pub seed: u64,
    /// Iteration cap.
    pub max_iterations: usize,
}

/// Communication accounted during one update cycle: the difference of the
/// algorithm's [`CommStats`] across the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommDelta {
    /// Messages sent this cycle.
    pub messages: u64,
    /// Congestion summed over this cycle's rounds.
    pub congestion: u64,
    /// Synchronization rounds this cycle.
    pub rounds: u64,
}

impl CommDelta {
    /// Delta `after − before` of two cumulative snapshots.
    pub fn between(before: &CommStats, after: &CommStats) -> Self {
        Self {
            messages: after.messages - before.messages,
            congestion: after.total_congestion - before.total_congestion,
            rounds: after.rounds - before.rounds,
        }
    }
}

/// Summary of the rewards observed in one update cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardSummary {
    /// Probes (= planned arms) this cycle.
    pub probes: usize,
    /// Mean reward.
    pub mean: f64,
    /// Smallest reward.
    pub min: f64,
    /// Largest reward.
    pub max: f64,
}

impl RewardSummary {
    /// Summarize one cycle's reward vector (all-zero when empty).
    pub fn of(rewards: &[f64]) -> Self {
        if rewards.is_empty() {
            return Self {
                probes: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let sum: f64 = rewards.iter().sum();
        Self {
            probes: rewards.len(),
            mean: sum / rewards.len() as f64,
            min: rewards.iter().copied().fold(f64::INFINITY, f64::min),
            max: rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// One update cycle of an observed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationEvent {
    /// 1-based update-cycle index; strictly increasing within a run.
    pub iteration: usize,
    /// Current leader arm.
    pub leader: usize,
    /// Leader's probability mass.
    pub leader_share: f64,
    /// Entropy (nats) of the selection distribution.
    pub entropy: f64,
    /// Communication accounted during this cycle.
    pub comm: CommDelta,
    /// Rewards observed this cycle.
    pub reward: RewardSummary,
}

/// Fired at most once per run, on the first cycle where the variant's
/// convergence criterion holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceEvent {
    /// Cycle at which convergence was first detected.
    pub iteration: usize,
    /// Leader at convergence.
    pub leader: usize,
    /// Leader share at convergence.
    pub leader_share: f64,
}

/// One probe of the `mwrepair` online phase (paper Fig. 6 lines 4–14).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeEvent {
    /// Update cycle the probe belongs to (1-based).
    pub iteration: usize,
    /// Agent index within the cycle.
    pub agent: usize,
    /// Mutations composed for this probe (arm index + 1).
    pub composition_size: usize,
    /// Whether the probe retained fitness (a "pool hit").
    pub survived: bool,
    /// Bandit reward credited for the probe.
    pub reward: f64,
}

/// A repairing probe was found; the online phase terminates early.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairEvent {
    /// Cycle at which the repair surfaced (1-based).
    pub iteration: usize,
    /// Agent whose probe repaired.
    pub agent: usize,
    /// Size of the repairing composition.
    pub composition_size: usize,
}

/// Faults injected during one simulated-network round (the telemetry-side
/// mirror of `simnet::FaultRoundStats` — field-for-field, but defined here
/// because simnet sits *below* mwu-core in the dependency graph; the bridge
/// lives in the layer that composes both, e.g. the `chaos` binary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Round the faults were injected in (0-based).
    pub round: usize,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages whose delivery was postponed.
    pub delayed: u64,
    /// Extra message copies injected by duplication.
    pub duplicated: u64,
    /// Mailboxes whose delivery order was reversed.
    pub reordered: u64,
    /// Agents down (crashed) this round.
    pub crashed: u64,
    /// Messages lost because their recipient was down on delivery.
    pub lost_to_crash: u64,
    /// Retransmissions scheduled.
    pub retried: u64,
    /// Messages abandoned after the retry cap.
    pub retry_exhausted: u64,
    /// Threads slowed by injected straggler latency.
    pub stragglers: u64,
}

impl FaultEvent {
    /// Total injected fault events.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.delayed
            + self.duplicated
            + self.reordered
            + self.crashed
            + self.lost_to_crash
            + self.retried
            + self.retry_exhausted
            + self.stragglers
    }
}

/// Storage-health counters from a daemon run (the telemetry-side mirror
/// of `mwrepair-service`'s retry/quarantine accounting — defined here,
/// like [`FaultEvent`], because the service crate sits above mwu-core in
/// the dependency graph; the bridge lives in the composing layer, e.g.
/// the `mwrepaird` binary). All three are zero in a fault-free run on a
/// healthy disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageEvent {
    /// Storage operations retried after a transient failure.
    pub io_retries: u64,
    /// Faults injected by a storage-fault adversary (zero on a real disk).
    pub io_faults_injected: u64,
    /// Sessions quarantined behind a durable post-mortem.
    pub sessions_quarantined: u64,
}

/// Start of one (algorithm, dataset) grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStartEvent {
    /// Algorithm variant name.
    pub algorithm: String,
    /// Dataset name.
    pub dataset: String,
    /// Instance size `k`.
    pub size: usize,
    /// Replicates this cell will run.
    pub replicates: usize,
}

/// One finished replicate of a grid cell. `run_seed` and `max_iterations`
/// are a complete recipe for re-running this replicate standalone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicateEvent {
    /// Algorithm variant name.
    pub algorithm: String,
    /// Dataset name.
    pub dataset: String,
    /// Replicate index within the cell.
    pub replicate: u64,
    /// The derived per-replicate seed actually passed to the run driver.
    pub run_seed: u64,
    /// Iteration cap the replicate ran under.
    pub max_iterations: usize,
    /// The replicate's full outcome.
    pub outcome: RunOutcome,
}

/// End of one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellEndEvent {
    /// Algorithm variant name.
    pub algorithm: String,
    /// Dataset name.
    pub dataset: String,
    /// Replicates that converged within the cap.
    pub converged: u64,
    /// Replicates executed (0 for intractable cells).
    pub replicates: u64,
    /// `true` when the variant cannot run at this size.
    pub intractable: bool,
}

/// Every event the pipeline can carry, as written to JSONL (externally
/// tagged: `{"Iteration":{...}}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Run header.
    RunStart(RunStartEvent),
    /// One update cycle.
    Iteration(IterationEvent),
    /// First convergence.
    Convergence(ConvergenceEvent),
    /// Run footer; agrees field-by-field with the returned [`RunOutcome`].
    RunEnd(RunOutcome),
    /// One `mwrepair` probe.
    Probe(ProbeEvent),
    /// Early-terminating repair.
    Repair(RepairEvent),
    /// One round's injected faults.
    Faults(FaultEvent),
    /// One daemon run's storage-health counters.
    Storage(StorageEvent),
    /// Grid cell header.
    CellStart(CellStartEvent),
    /// Grid replicate footer.
    Replicate(ReplicateEvent),
    /// Grid cell footer.
    CellEnd(CellEndEvent),
}

/// Receiver of run telemetry.
///
/// Drivers call the specific `on_*` methods, whose default implementations
/// wrap the payload in a [`TraceEvent`] and forward to [`Observer::on_event`]
/// — so a sink that treats all events uniformly ([`JsonlSink`]) implements
/// one method, while a selective sink ([`ProgressSink`]) overrides only the
/// events it cares about.
///
/// Drivers must gate all event construction behind [`Observer::enabled`]:
/// that is the contract that makes [`NullObserver`] free.
pub trait Observer {
    /// Whether this observer wants events at all. Drivers skip event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Uniform event hook; default drops the event.
    fn on_event(&mut self, event: &TraceEvent) {
        let _ = event;
    }

    /// A run is starting.
    fn on_run_start(&mut self, e: RunStartEvent) {
        self.on_event(&TraceEvent::RunStart(e));
    }

    /// One update cycle finished.
    fn on_iteration(&mut self, e: IterationEvent) {
        self.on_event(&TraceEvent::Iteration(e));
    }

    /// The run converged (fires at most once per run).
    fn on_convergence(&mut self, e: ConvergenceEvent) {
        self.on_event(&TraceEvent::Convergence(e));
    }

    /// The run ended; `outcome` is exactly what the driver returns.
    fn on_run_end(&mut self, outcome: RunOutcome) {
        self.on_event(&TraceEvent::RunEnd(outcome));
    }

    /// One `mwrepair` probe finished.
    fn on_probe(&mut self, e: ProbeEvent) {
        self.on_event(&TraceEvent::Probe(e));
    }

    /// A repair was found.
    fn on_repair(&mut self, e: RepairEvent) {
        self.on_event(&TraceEvent::Repair(e));
    }

    /// One round's injected faults (fault-injection runs only).
    fn on_faults(&mut self, e: FaultEvent) {
        self.on_event(&TraceEvent::Faults(e));
    }

    /// One daemon run's storage-health counters (daemon runs only).
    fn on_storage(&mut self, e: StorageEvent) {
        self.on_event(&TraceEvent::Storage(e));
    }

    /// A grid cell is starting.
    fn on_cell_start(&mut self, e: CellStartEvent) {
        self.on_event(&TraceEvent::CellStart(e));
    }

    /// A grid replicate finished.
    fn on_replicate(&mut self, e: ReplicateEvent) {
        self.on_event(&TraceEvent::Replicate(e));
    }

    /// A grid cell finished.
    fn on_cell_end(&mut self, e: CellEndEvent) {
        self.on_event(&TraceEvent::CellEnd(e));
    }
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn on_event(&mut self, event: &TraceEvent) {
        (**self).on_event(event);
    }
    fn on_run_start(&mut self, e: RunStartEvent) {
        (**self).on_run_start(e);
    }
    fn on_iteration(&mut self, e: IterationEvent) {
        (**self).on_iteration(e);
    }
    fn on_convergence(&mut self, e: ConvergenceEvent) {
        (**self).on_convergence(e);
    }
    fn on_run_end(&mut self, outcome: RunOutcome) {
        (**self).on_run_end(outcome);
    }
    fn on_probe(&mut self, e: ProbeEvent) {
        (**self).on_probe(e);
    }
    fn on_repair(&mut self, e: RepairEvent) {
        (**self).on_repair(e);
    }
    fn on_faults(&mut self, e: FaultEvent) {
        (**self).on_faults(e);
    }
    fn on_storage(&mut self, e: StorageEvent) {
        (**self).on_storage(e);
    }
    fn on_cell_start(&mut self, e: CellStartEvent) {
        (**self).on_cell_start(e);
    }
    fn on_replicate(&mut self, e: ReplicateEvent) {
        (**self).on_replicate(e);
    }
    fn on_cell_end(&mut self, e: CellEndEvent) {
        (**self).on_cell_end(e);
    }
}

/// `None` behaves as a disabled observer; `Some(sink)` delegates. Lets
/// callers build optional sinks (e.g. a `--trace`-gated file) without
/// boxing.
impl<O: Observer> Observer for Option<O> {
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(|o| o.enabled())
    }
    fn on_event(&mut self, event: &TraceEvent) {
        if let Some(o) = self {
            o.on_event(event);
        }
    }
    fn on_run_start(&mut self, e: RunStartEvent) {
        if let Some(o) = self {
            o.on_run_start(e);
        }
    }
    fn on_iteration(&mut self, e: IterationEvent) {
        if let Some(o) = self {
            o.on_iteration(e);
        }
    }
    fn on_convergence(&mut self, e: ConvergenceEvent) {
        if let Some(o) = self {
            o.on_convergence(e);
        }
    }
    fn on_run_end(&mut self, outcome: RunOutcome) {
        if let Some(o) = self {
            o.on_run_end(outcome);
        }
    }
    fn on_probe(&mut self, e: ProbeEvent) {
        if let Some(o) = self {
            o.on_probe(e);
        }
    }
    fn on_repair(&mut self, e: RepairEvent) {
        if let Some(o) = self {
            o.on_repair(e);
        }
    }
    fn on_faults(&mut self, e: FaultEvent) {
        if let Some(o) = self {
            o.on_faults(e);
        }
    }
    fn on_storage(&mut self, e: StorageEvent) {
        if let Some(o) = self {
            o.on_storage(e);
        }
    }
    fn on_cell_start(&mut self, e: CellStartEvent) {
        if let Some(o) = self {
            o.on_cell_start(e);
        }
    }
    fn on_replicate(&mut self, e: ReplicateEvent) {
        if let Some(o) = self {
            o.on_replicate(e);
        }
    }
    fn on_cell_end(&mut self, e: CellEndEvent) {
        if let Some(o) = self {
            o.on_cell_end(e);
        }
    }
}

/// The disabled observer. `enabled()` is a constant `false`, so observed
/// drivers monomorphized over it contain no telemetry code at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Fan-out to two observers, enabling composition like "trace file plus
/// progress narration". Enabled when either side is; a disabled side is
/// skipped entirely, so `Tee(trace, ProgressSink::quiet(true))` traces
/// without narrating.
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }
    fn on_event(&mut self, event: &TraceEvent) {
        if self.0.enabled() {
            self.0.on_event(event);
        }
        if self.1.enabled() {
            self.1.on_event(event);
        }
    }
    fn on_run_start(&mut self, e: RunStartEvent) {
        if self.0.enabled() {
            self.0.on_run_start(e.clone());
        }
        if self.1.enabled() {
            self.1.on_run_start(e);
        }
    }
    fn on_iteration(&mut self, e: IterationEvent) {
        if self.0.enabled() {
            self.0.on_iteration(e.clone());
        }
        if self.1.enabled() {
            self.1.on_iteration(e);
        }
    }
    fn on_convergence(&mut self, e: ConvergenceEvent) {
        if self.0.enabled() {
            self.0.on_convergence(e.clone());
        }
        if self.1.enabled() {
            self.1.on_convergence(e);
        }
    }
    fn on_run_end(&mut self, outcome: RunOutcome) {
        if self.0.enabled() {
            self.0.on_run_end(outcome.clone());
        }
        if self.1.enabled() {
            self.1.on_run_end(outcome);
        }
    }
    fn on_probe(&mut self, e: ProbeEvent) {
        if self.0.enabled() {
            self.0.on_probe(e.clone());
        }
        if self.1.enabled() {
            self.1.on_probe(e);
        }
    }
    fn on_repair(&mut self, e: RepairEvent) {
        if self.0.enabled() {
            self.0.on_repair(e.clone());
        }
        if self.1.enabled() {
            self.1.on_repair(e);
        }
    }
    fn on_faults(&mut self, e: FaultEvent) {
        if self.0.enabled() {
            self.0.on_faults(e);
        }
        if self.1.enabled() {
            self.1.on_faults(e);
        }
    }
    fn on_storage(&mut self, e: StorageEvent) {
        if self.0.enabled() {
            self.0.on_storage(e);
        }
        if self.1.enabled() {
            self.1.on_storage(e);
        }
    }
    fn on_cell_start(&mut self, e: CellStartEvent) {
        if self.0.enabled() {
            self.0.on_cell_start(e.clone());
        }
        if self.1.enabled() {
            self.1.on_cell_start(e);
        }
    }
    fn on_replicate(&mut self, e: ReplicateEvent) {
        if self.0.enabled() {
            self.0.on_replicate(e.clone());
        }
        if self.1.enabled() {
            self.1.on_replicate(e);
        }
    }
    fn on_cell_end(&mut self, e: CellEndEvent) {
        if self.0.enabled() {
            self.0.on_cell_end(e.clone());
        }
        if self.1.enabled() {
            self.1.on_cell_end(e);
        }
    }
}

/// Writes one JSON event per line to any [`Write`] target.
///
/// Serialization goes through the workspace serde data model with
/// insertion-ordered object keys, so the byte stream for a given event
/// sequence is deterministic — the property the golden-trace tests pin.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) a trace file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Flush and hand back the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.out.flush().expect("trace flush failed");
        self.out
    }

    /// Flush buffered events.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl<W: Write> Observer for JsonlSink<W> {
    fn on_event(&mut self, event: &TraceEvent) {
        let line = serde::json::to_string(&event.to_value());
        writeln!(self.out, "{line}").expect("trace write failed");
    }
}

/// Counters and streaming histograms over an event stream.
///
/// Iteration latency is measured by the sink's own clock (time between
/// consecutive `on_iteration` calls), deliberately **not** from the events —
/// event payloads stay wall-clock-free so traces are reproducible, while
/// metrics still capture real timing.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    /// Observed runs started.
    pub runs: Counter,
    /// Update cycles observed.
    pub iterations: Counter,
    /// Convergence events observed.
    pub convergences: Counter,
    /// `mwrepair` probes observed.
    pub probes: Counter,
    /// Repairs observed.
    pub repairs: Counter,
    /// Total injected faults observed (sum of [`FaultEvent::total`]).
    pub faults: Counter,
    /// Gossip retransmissions observed (dropped messages re-sent with
    /// backoff).
    pub retries: Counter,
    /// Messages abandoned after the retry cap.
    pub retries_exhausted: Counter,
    /// Storage operations retried after transient failures (daemon runs;
    /// zero on a healthy disk).
    pub io_retries: Counter,
    /// Storage faults injected by a fault adversary (zero on a real disk).
    pub io_faults_injected: Counter,
    /// Sessions quarantined behind durable post-mortems.
    pub sessions_quarantined: Counter,
    /// Per-cycle latency in seconds (sink-clock; empty if the sink never
    /// saw two consecutive iterations).
    pub iteration_latency: Histogram,
    /// Per-cycle mean reward.
    pub reward: Histogram,
    /// Per-cycle communication congestion (the [`CommDelta`] congestion
    /// sum).
    pub congestion: Histogram,
    clock: Clock,
    last_tick_ns: Option<u64>,
}

impl MetricsSink {
    /// Empty sink with the production monotonic clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty sink measuring latency with the given [`Clock`] — pass
    /// [`Clock::counting`] in tests to make the latency histogram exactly
    /// assertable instead of only shape-checkable.
    pub fn with_clock(clock: Clock) -> Self {
        MetricsSink {
            clock,
            ..Self::default()
        }
    }

    /// Fold another sink's aggregates into this one (counts conserved,
    /// histograms merged bucket-wise).
    pub fn merge(&mut self, other: &MetricsSink) {
        self.runs.merge(&other.runs);
        self.iterations.merge(&other.iterations);
        self.convergences.merge(&other.convergences);
        self.probes.merge(&other.probes);
        self.repairs.merge(&other.repairs);
        self.faults.merge(&other.faults);
        self.retries.merge(&other.retries);
        self.retries_exhausted.merge(&other.retries_exhausted);
        self.io_retries.merge(&other.io_retries);
        self.io_faults_injected.merge(&other.io_faults_injected);
        self.sessions_quarantined.merge(&other.sessions_quarantined);
        self.iteration_latency.merge(&other.iteration_latency);
        self.reward.merge(&other.reward);
        self.congestion.merge(&other.congestion);
    }

    /// One-line human summary of the aggregates.
    pub fn report(&self) -> String {
        format!(
            "runs={} iterations={} convergences={} probes={} repairs={} \
             faults={} retries={} retries_exhausted={} \
             io_retries={} io_faults_injected={} sessions_quarantined={} \
             reward_mean={:.4} congestion_p99={:.1} latency_p50={}",
            self.runs.get(),
            self.iterations.get(),
            self.convergences.get(),
            self.probes.get(),
            self.repairs.get(),
            self.faults.get(),
            self.retries.get(),
            self.retries_exhausted.get(),
            self.io_retries.get(),
            self.io_faults_injected.get(),
            self.sessions_quarantined.get(),
            self.reward.stats().mean(),
            self.congestion.quantile(0.99),
            // "n/a" when no two consecutive iterations were timed — an
            // empty histogram's quantile would print as a misleading 0.0s.
            match self.iteration_latency.try_quantile(0.5) {
                Some(p50) => format!("{p50:.6}s"),
                None => "n/a".to_owned(),
            },
        )
    }
}

impl Observer for MetricsSink {
    fn on_run_start(&mut self, _e: RunStartEvent) {
        self.runs.incr();
        self.last_tick_ns = None;
    }

    fn on_iteration(&mut self, e: IterationEvent) {
        self.iterations.incr();
        self.probes.add(e.reward.probes as u64);
        self.reward.record(e.reward.mean);
        self.congestion.record(e.comm.congestion as f64);
        let now_ns = self.clock.now_ns();
        if let Some(prev_ns) = self.last_tick_ns {
            self.iteration_latency
                .record(now_ns.saturating_sub(prev_ns) as f64 * 1e-9);
        }
        self.last_tick_ns = Some(now_ns);
    }

    fn on_convergence(&mut self, _e: ConvergenceEvent) {
        self.convergences.incr();
    }

    fn on_repair(&mut self, _e: RepairEvent) {
        self.repairs.incr();
    }

    fn on_faults(&mut self, e: FaultEvent) {
        self.faults.add(e.total());
        self.retries.add(e.retried);
        self.retries_exhausted.add(e.retry_exhausted);
    }

    fn on_storage(&mut self, e: StorageEvent) {
        self.io_retries.add(e.io_retries);
        self.io_faults_injected.add(e.io_faults_injected);
        self.sessions_quarantined.add(e.sessions_quarantined);
    }
}

/// Stderr narration of grid progress — the observer-pipeline replacement
/// for the `eprintln!` calls previously hard-coded into the grid runner.
#[derive(Debug, Clone, Default)]
pub struct ProgressSink {
    quiet: bool,
}

impl ProgressSink {
    /// Narrating sink.
    pub fn new() -> Self {
        Self { quiet: false }
    }

    /// Sink silenced by a `--quiet` flag; reports `enabled() == false` so
    /// drivers skip event construction for it.
    pub fn quiet(quiet: bool) -> Self {
        Self { quiet }
    }
}

impl Observer for ProgressSink {
    fn enabled(&self) -> bool {
        !self.quiet
    }

    fn on_cell_start(&mut self, e: CellStartEvent) {
        eprintln!(
            "  running {} on {} ({} reps)...",
            e.algorithm, e.dataset, e.replicates
        );
    }

    fn on_cell_end(&mut self, e: CellEndEvent) {
        if e.intractable {
            eprintln!("    {} on {}: intractable", e.algorithm, e.dataset);
        } else {
            eprintln!(
                "    {} on {}: {}/{} converged",
                e.algorithm, e.dataset, e.converged, e.replicates
            );
        }
    }

    fn on_repair(&mut self, e: RepairEvent) {
        eprintln!(
            "  repair found at iteration {} (agent {}, {} mutations)",
            e.iteration, e.agent, e.composition_size
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iteration_event(i: usize) -> IterationEvent {
        IterationEvent {
            iteration: i,
            leader: 1,
            leader_share: 0.5,
            entropy: 0.3,
            comm: CommDelta {
                messages: 4,
                congestion: 4,
                rounds: 1,
            },
            reward: RewardSummary::of(&[0.0, 1.0]),
        }
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
        let u = entropy(&[0.25; 4]);
        assert!((u - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn reward_summary_handles_empty_and_full() {
        let empty = RewardSummary::of(&[]);
        assert_eq!(empty.probes, 0);
        let s = RewardSummary::of(&[0.2, 0.8]);
        assert_eq!(s.probes, 2);
        assert!((s.mean - 0.5).abs() < 1e-12);
        assert_eq!((s.min, s.max), (0.2, 0.8));
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.enabled());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_iteration(iteration_event(1));
        sink.on_convergence(ConvergenceEvent {
            iteration: 1,
            leader: 1,
            leader_share: 0.9,
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"Iteration\":"));
        assert!(lines[1].starts_with("{\"Convergence\":"));
        // Each line round-trips through the JSON parser.
        for line in lines {
            let ev = TraceEvent::from_value(&serde::json::parse(line).unwrap()).unwrap();
            let again = serde::json::to_string(&ev.to_value());
            assert_eq!(again, line);
        }
    }

    #[test]
    fn metrics_sink_aggregates_and_merges() {
        let mut a = MetricsSink::new();
        a.on_run_start(RunStartEvent {
            algorithm: "standard",
            num_arms: 2,
            cpus_per_iteration: 2,
            seed: 1,
            max_iterations: 10,
        });
        a.on_iteration(iteration_event(1));
        a.on_iteration(iteration_event(2));
        a.on_convergence(ConvergenceEvent {
            iteration: 2,
            leader: 1,
            leader_share: 0.99,
        });
        let mut b = MetricsSink::new();
        b.on_iteration(iteration_event(1));
        a.merge(&b);
        assert_eq!(a.runs.get(), 1);
        assert_eq!(a.iterations.get(), 3);
        assert_eq!(a.convergences.get(), 1);
        assert_eq!(a.probes.get(), 6);
        assert_eq!(a.reward.count(), 3);
        assert!(!a.report().is_empty());
    }

    #[test]
    fn counting_clock_makes_latency_exact() {
        // With a counting clock ticking 1 ms per read, iteration N+1 lands
        // exactly 1 ms after iteration N — the histogram holds exact values,
        // not merely a plausible shape.
        let mut sink = MetricsSink::with_clock(Clock::counting(1_000_000));
        for i in 1..=4 {
            sink.on_iteration(iteration_event(i));
        }
        assert_eq!(sink.iteration_latency.count(), 3);
        assert!((sink.iteration_latency.stats().mean() - 1e-3).abs() < 1e-12);
        assert!((sink.iteration_latency.stats().min() - 1e-3).abs() < 1e-12);
        assert!((sink.iteration_latency.stats().max() - 1e-3).abs() < 1e-12);
        assert!(sink.report().contains("latency_p50="));
    }

    #[test]
    fn empty_latency_reports_not_applicable() {
        let mut sink = MetricsSink::new();
        sink.on_iteration(iteration_event(1)); // one tick: no interval yet
        assert!(sink.iteration_latency.is_empty());
        assert!(sink.report().contains("latency_p50=n/a"));
    }

    #[test]
    fn fault_events_reach_metrics_and_jsonl() {
        let fe = FaultEvent {
            round: 3,
            dropped: 5,
            delayed: 2,
            duplicated: 1,
            retried: 4,
            retry_exhausted: 1,
            stragglers: 2,
            ..FaultEvent::default()
        };
        assert_eq!(fe.total(), 15);

        let mut metrics = MetricsSink::new();
        metrics.on_faults(fe);
        assert_eq!(metrics.faults.get(), 15);
        assert_eq!(metrics.retries.get(), 4);
        assert_eq!(metrics.retries_exhausted.get(), 1);
        assert!(metrics.report().contains("retries=4"));

        let mut sink = JsonlSink::new(Vec::new());
        sink.on_faults(fe);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("{\"Faults\":"));
        let ev = TraceEvent::from_value(&serde::json::parse(text.trim()).unwrap()).unwrap();
        assert_eq!(ev, TraceEvent::Faults(fe));
    }

    #[test]
    fn tee_reaches_both_sides() {
        let mut tee = Tee(MetricsSink::new(), MetricsSink::new());
        tee.on_iteration(iteration_event(1));
        assert_eq!(tee.0.iterations.get(), 1);
        assert_eq!(tee.1.iterations.get(), 1);
        assert!(tee.enabled());
        assert!(!Tee(NullObserver, NullObserver).enabled());
    }

    #[test]
    fn tee_skips_a_disabled_side() {
        // A quiet ProgressSink reports enabled() == false; teeing it with a
        // live sink must not wake it back up (`--trace --quiet` traces
        // silently).
        struct Panicky;
        impl Observer for Panicky {
            fn enabled(&self) -> bool {
                false
            }
            fn on_event(&mut self, _: &TraceEvent) {
                panic!("disabled observer received an event");
            }
        }
        let mut tee = Tee(MetricsSink::new(), Panicky);
        assert!(tee.enabled());
        tee.on_iteration(iteration_event(1));
        tee.on_cell_start(CellStartEvent {
            algorithm: "standard".into(),
            dataset: "d".into(),
            size: 2,
            replicates: 1,
        });
        assert_eq!(tee.0.iterations.get(), 1);
    }
}
