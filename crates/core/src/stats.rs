//! Streaming statistics for experiment replication.
//!
//! Tables II–IV of the paper report "mean (std)" over 100 replicates of each
//! (algorithm, scenario) cell. [`RunningStats`] accumulates those summaries
//! in one pass (Welford's algorithm, numerically stable), and [`Summary`] is
//! the serializable snapshot the experiment harness writes to CSV.

use serde::{Deserialize, Serialize};

/// One-pass mean / variance / min / max accumulator (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance with Bessel's correction (0.0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free input assumed; +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Snapshot as a serializable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// Immutable snapshot of a [`RunningStats`], as written to result CSVs and
/// printed into table cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of replicates aggregated.
    pub count: u64,
    /// Mean over replicates.
    pub mean: f64,
    /// Sample standard deviation over replicates.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl Summary {
    /// Format as the paper's "mean (std)" cell with the given precision.
    pub fn cell(&self, precision: usize) -> String {
        format!("{:.p$} ({:.p$})", self.mean, self.std_dev, p = precision)
    }
}

/// A mergeable monotone event counter, the unit of [`crate::trace::MetricsSink`]
/// aggregation. Counts are conserved under [`Counter::merge`]:
/// `a.merge(b)` leaves `a.get() == a_before + b`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.count
    }

    /// Fold another counter into this one (parallel reduction).
    pub fn merge(&mut self, other: &Counter) {
        self.count += other.count;
    }
}

/// Number of log₂ buckets in a [`Histogram`]: one per binary exponent in
/// `[-32, 31]`, so positive magnitudes from `2⁻³²` to `2³²` land in distinct
/// buckets and everything outside clamps to the edge buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;
const HISTOGRAM_MIN_EXP: i32 = -32;

/// Streaming log-bucketed histogram over non-negative observations, with
/// exact moments tracked by an embedded [`RunningStats`].
///
/// Bucket boundaries are powers of two, fixed at construction, so two
/// histograms built from different data interleavings have **identical**
/// bucket counts — merge is associative and order-insensitive on counts
/// (the embedded moments merge in floating point, so they agree to
/// round-off, not bit-exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// counts[i] holds observations with floor(log₂ x) = i + HISTOGRAM_MIN_EXP.
    counts: Vec<u64>,
    /// Observations ≤ 0 (zero rewards, idle rounds) — kept out of the log
    /// buckets but in the moments.
    non_positive: u64,
    stats: RunningStats,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; HISTOGRAM_BUCKETS],
            non_positive: 0,
            stats: RunningStats::new(),
        }
    }

    fn bucket_of(x: f64) -> Option<usize> {
        if x <= 0.0 || !x.is_finite() {
            return None;
        }
        let exp = x.log2().floor() as i64 - HISTOGRAM_MIN_EXP as i64;
        Some(exp.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize)
    }

    /// Record one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.stats.push(x);
        match Self::bucket_of(x) {
            Some(i) => self.counts[i] += 1,
            None => self.non_positive += 1,
        }
    }

    /// Fold another histogram into this one (parallel reduction). Bucket
    /// counts add exactly; moments merge via [`RunningStats::merge`].
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.non_positive += other.non_positive;
        self.stats.merge(&other.stats);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// True when nothing has been recorded — the case where
    /// [`Histogram::quantile`] would return an ambiguous `0.0`.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact moments of everything recorded.
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`): the upper edge of
    /// the bucket holding the rank-`⌈q·n⌉` observation, clamped into the
    /// observed `[min, max]`. Bucket edges are fixed, so the estimate is
    /// monotone non-decreasing in `q`. Returns 0.0 when empty — callers that
    /// must distinguish "no data" from a real zero should use
    /// [`Histogram::try_quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// [`Histogram::quantile`] that reports emptiness instead of conflating
    /// it with an observed zero: `None` when no observations were recorded.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let clamp = |v: f64| v.clamp(self.stats.min(), self.stats.max());
        let mut cum = self.non_positive;
        if cum >= rank {
            // Rank falls among the non-positive observations.
            return Some(clamp(0.0));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let upper_exp = i as i32 + HISTOGRAM_MIN_EXP + 1;
                return Some(clamp((upper_exp as f64).exp2()));
            }
        }
        Some(self.stats.max())
    }

    /// Raw bucket counts (index `i` covers `[2^(i-32), 2^(i-31))`), for
    /// tests and reporting.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations ≤ 0.
    pub fn non_positive_count(&self) -> u64 {
        self.non_positive
    }
}

/// Mean of a slice (0.0 when empty). Convenience for small one-off uses.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of a slice (0.0 with < 2 elements).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s: RunningStats = [5.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn matches_textbook_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: RunningStats = xs.into_iter().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: RunningStats = xs.iter().copied().collect();
        let mut a: RunningStats = xs[..300].iter().copied().collect();
        let b: RunningStats = xs[300..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-6);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_cell_formatting() {
        let s: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.summary().cell(1), "2.0 (1.0)");
    }

    #[test]
    fn counter_merge_conserves_counts() {
        let mut a = Counter::new();
        a.incr();
        a.add(4);
        let mut b = Counter::new();
        b.add(7);
        a.merge(&b);
        assert_eq!(a.get(), 12);
    }

    #[test]
    fn histogram_counts_and_moments() {
        let mut h = Histogram::new();
        for x in [0.5, 1.0, 2.0, 4.0, 0.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.non_positive_count(), 2);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4);
        assert!((h.stats().mean() - 6.5 / 6.0).abs() < 1e-12);
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).abs() + 0.01).collect();
        let mut seq = Histogram::new();
        for &x in &xs {
            seq.record(x);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &x in &xs[..77] {
            a.record(x);
        }
        for &x in &xs[77..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), seq.bucket_counts());
        assert_eq!(a.count(), seq.count());
        assert!((a.stats().mean() - seq.stats().mean()).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            assert!((1.0..=100.0).contains(&v));
            prev = v;
        }
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn empty_histogram_is_distinguishable_from_zero() {
        let empty = Histogram::new();
        assert!(empty.is_empty());
        assert_eq!(empty.try_quantile(0.5), None);

        let mut zeros = Histogram::new();
        zeros.record(0.0);
        assert!(!zeros.is_empty());
        assert_eq!(zeros.try_quantile(0.5), Some(0.0));
        assert_eq!(zeros.quantile(0.5), 0.0);
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - (2.0f64).sqrt()).abs() < 1e-12);
    }
}
