//! # mwu-core
//!
//! Multiplicative Weights Update (MWU) algorithms for multi-armed bandit
//! problems, as studied in *"Multiplicative Weights Algorithms for Parallel
//! Automated Software Repair"* (Renzullo, Weimer, Forrest — IPDPS 2021).
//!
//! The crate provides three parallel MWU realizations behind one trait:
//!
//! * [`StandardMwu`] — the classic weighted-majority algorithm (Fig. 1 of the
//!   paper). Full information: every option is evaluated on every iteration,
//!   using one parallel agent per option, and the shared weight vector is
//!   updated globally.
//! * [`SlateMwu`] — the slate-selection variant (Fig. 2, after Kale et al.).
//!   A fixed-size subset (slate) of options is evaluated per iteration, and
//!   only the sampled options' weights are updated (importance-weighted).
//!   Includes the *O(k²)* convex decomposition of a capped weight vector into
//!   slate vertices as well as a fast systematic-sampling equivalent.
//! * [`DistributedMwu`] — the memoryless population protocol (Fig. 3, after
//!   the social-learning dynamics of Celis, Krafft & Vishnoi). The weight
//!   vector exists only implicitly as the population share of each option;
//!   agents observe random neighbors and adopt their options probabilistically.
//!
//! All three implement [`MwuAlgorithm`], so the driver in [`run`] and the
//! higher-level `mwrepair` crate are generic over the variant.
//!
//! The crate also contains the analytic machinery of the paper:
//!
//! * [`cost`] — Table I asymptotics (communication congestion, memory,
//!   convergence time, minimum agents) and the weighted decision model of
//!   §IV-E that recommends a variant given the relative price of
//!   communication, convergence time, CPUs and memory.
//! * [`stats`] — running mean/std-dev summaries used for the "mean (std)"
//!   cells of Tables II–IV.
//! * [`weights`] — normalized weight vectors with capping onto the
//!   probability simplex, entropy, and sampling.
//!
//! ## Quick example
//!
//! ```
//! use mwu_core::prelude::*;
//!
//! // A 32-arm bandit whose arm values form a unimodal bump, with Bernoulli
//! // feedback (the observation model of the paper's APR use case).
//! let values: Vec<f64> = (0..32)
//!     .map(|x| {
//!         let x = x as f64 + 1.0;
//!         x * (-x / 8.0).exp() / 3.0
//!     })
//!     .collect();
//! let mut bandit = ValueBandit::bernoulli(values.clone());
//!
//! let mut alg = StandardMwu::new(32, StandardConfig::default());
//! let outcome = run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(42));
//!
//! // Standard MWU converges on (or very near) the best arm.
//! assert!(outcome.accuracy(&values) > 0.85);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alternatives;
pub mod arena;
pub mod bandit;
pub mod convergence;
pub mod cost;
pub mod distributed;
pub mod prof;
#[cfg(test)]
mod reference;
pub mod regret;
pub mod rng;
pub mod run;
pub mod schedule;
pub mod slate;
pub mod standard;
pub mod stats;
pub mod trace;
pub mod weights;

/// Version of the MWU round kernels, stamped into benchmark artifact
/// `meta` blocks so perf trajectories can be compared across kernel
/// revisions.
pub const KERNEL_VERSION: &str = env!("CARGO_PKG_VERSION");

pub use alternatives::{EpsilonGreedy, Exp3, HedgeConfig, HedgeMwu, Ucb1};
pub use arena::ThreadArena;
pub use bandit::{Bandit, NoiseModel, ValueBandit};
pub use convergence::{ConvergenceCriterion, ConvergenceState};
pub use cost::{AsymptoticCosts, CostWeights, Variant, WeightedCostModel};
pub use distributed::{
    DistributedConfig, DistributedMwu, GossipConfig, GossipObservation, GossipReport,
};
pub use prof::{Phase, ProfileReport, SpanGuard};
pub use regret::{run_with_regret, run_with_regret_observed, RegretCurve};
pub use run::{run_to_convergence, run_to_convergence_observed, RunConfig, RunOutcome};
pub use schedule::LearningRate;
pub use slate::{SlateConfig, SlateMwu};
pub use standard::{StandardConfig, StandardMwu};
pub use trace::{
    FaultEvent, JsonlSink, MetricsSink, NullObserver, Observer, ProgressSink, StorageEvent, Tee,
    TraceEvent,
};
pub use weights::WeightVector;

use rand::rngs::SmallRng;

/// Common interface implemented by all three MWU realizations.
///
/// The paper's experimental harness (its §IV-B) and the MWRepair algorithm
/// (its Fig. 6: `MWU_Init`, `MWU_Sample`, `MWU_Update`) both treat the MWU
/// variant as a pluggable component; this trait is that interface.
///
/// One *iteration* (update cycle, in the paper's terminology) is:
///
/// 1. [`MwuAlgorithm::plan`] — decide which arm each parallel agent evaluates
///    this round. The returned slice has one entry per agent; its length is
///    [`MwuAlgorithm::cpus_per_iteration`].
/// 2. The caller evaluates every planned arm (in parallel, in the real
///    system) and collects one reward in `[0, 1]` per agent.
/// 3. [`MwuAlgorithm::update`] — incorporate the observed rewards into the
///    (explicit or implicit) weight vector.
pub trait MwuAlgorithm {
    /// Number of options (arms) the algorithm is choosing among.
    fn num_arms(&self) -> usize;

    /// Plan one iteration: which arm does each parallel agent evaluate?
    ///
    /// The slice is owned by the algorithm and valid until the next call;
    /// implementations reuse an internal buffer to avoid per-round
    /// allocation.
    fn plan(&mut self, rng: &mut SmallRng) -> &[usize];

    /// Incorporate observed rewards. `rewards[j]` is the reward for the arm
    /// planned at index `j` of the most recent [`MwuAlgorithm::plan`] call.
    ///
    /// # Panics
    /// Implementations may panic if `rewards.len()` differs from the length
    /// of the last plan.
    fn update(&mut self, rewards: &[f64], rng: &mut SmallRng);

    /// The arm the algorithm currently believes is best.
    fn leader(&self) -> usize;

    /// The probability mass (Standard/Slate: normalized weight; Distributed:
    /// population share) currently on the leader.
    fn leader_share(&self) -> f64;

    /// Has the algorithm met its variant-specific convergence criterion?
    ///
    /// Standard and Slate: the leader's selection probability is within
    /// `1e-5` of the maximum achievable. Distributed: at least 30 % of the
    /// population holds the same option (both per the paper's §IV-C).
    fn has_converged(&self) -> bool;

    /// How many parallel agents (CPUs) one iteration occupies.
    ///
    /// Standard: `k` (full information). Slate: the slate size `s`.
    /// Distributed: the population size.
    fn cpus_per_iteration(&self) -> usize;

    /// The explicit (Standard/Slate) or implicit (Distributed: population
    /// frequency) probability vector over arms.
    fn probabilities(&self) -> Vec<f64>;

    /// Write the probability vector into caller scratch (cleared first) —
    /// the allocation-free counterpart of [`MwuAlgorithm::probabilities`]
    /// used by hot observer paths. The default delegates to
    /// `probabilities()`; every built-in algorithm overrides it to copy
    /// straight from its internal state.
    fn probabilities_into(&self, out: &mut Vec<f64>) {
        let p = self.probabilities();
        out.clear();
        out.extend_from_slice(&p);
    }

    /// Communication statistics accumulated so far (messages sent and the
    /// peak single-node congestion observed in any round).
    fn comm_stats(&self) -> CommStats;

    /// Short human-readable variant name ("standard", "slate", "distributed").
    fn name(&self) -> &'static str;

    /// The [`cost::Variant`] tag for this algorithm, linking empirical runs
    /// to the analytic cost model.
    fn variant(&self) -> cost::Variant;
}

/// Clamp a reward observation into the valid `[0, 1]` range, treating
/// non-finite values as total failure.
///
/// This is the loss-clamping guard shared by all MWU variants: a corrupted
/// observation (NaN from a crashed evaluator, `±inf`/huge magnitudes from a
/// garbled message) must not be able to collapse the weight simplex. Note
/// that a bare `f64::clamp` is *not* enough — `NaN.clamp(0.0, 1.0)` is NaN,
/// which would propagate into every weight via the multiplicative update.
/// NaN maps to `0.0` (no evidence of success), overlarge values saturate at
/// the range ends.
#[inline]
pub fn sanitize_reward(r: f64) -> f64 {
    if r.is_finite() {
        r.clamp(0.0, 1.0)
    } else if r == f64::INFINITY {
        1.0
    } else {
        // NaN or -inf: no trustworthy evidence of success.
        0.0
    }
}

/// Communication accounting for one algorithm instance.
///
/// *Congestion* is the paper's notion of communication cost (§II-C): the
/// maximum number of agents that any single agent must exchange messages
/// with in one round. For Standard and Slate every round is a global
/// synchronization, so congestion equals the agent count; for Distributed it
/// is the maximum in-degree of the random observation graph (a balls-into-bins
/// process, Θ(ln n / ln ln n) with high probability).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CommStats {
    /// Total point-to-point messages sent over the whole run.
    pub messages: u64,
    /// Worst single-node congestion observed in any single round.
    pub peak_congestion: usize,
    /// Sum over rounds of that round's max congestion (divide by rounds for
    /// the mean).
    pub total_congestion: u64,
    /// Number of rounds accounted.
    pub rounds: u64,
}

impl CommStats {
    /// Record one round with the given per-node max congestion and message
    /// count.
    pub fn record_round(&mut self, congestion: usize, messages: u64) {
        self.rounds += 1;
        self.messages += messages;
        self.total_congestion += congestion as u64;
        if congestion > self.peak_congestion {
            self.peak_congestion = congestion;
        }
    }

    /// Mean per-round congestion, or 0.0 if no rounds were recorded.
    pub fn mean_congestion(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_congestion as f64 / self.rounds as f64
        }
    }
}

/// Convenience prelude re-exporting the types needed for typical use.
pub mod prelude {
    pub use crate::bandit::{Bandit, NoiseModel, ValueBandit};
    pub use crate::cost::{CostWeights, Variant, WeightedCostModel};
    pub use crate::distributed::{
        DistributedConfig, DistributedMwu, GossipConfig, GossipObservation, GossipReport,
    };
    pub use crate::run::{run_to_convergence, run_to_convergence_observed, RunConfig, RunOutcome};
    pub use crate::slate::{SlateConfig, SlateMwu};
    pub use crate::standard::{StandardConfig, StandardMwu};
    pub use crate::trace::{JsonlSink, MetricsSink, NullObserver, Observer, TraceEvent};
    pub use crate::weights::WeightVector;
    pub use crate::{CommStats, MwuAlgorithm};
}
