//! Deterministic randomness utilities.
//!
//! Every experiment in the paper is run with 100 unique random seeds
//! (§IV-B). To make each (experiment, scenario, replicate) triple exactly
//! reproducible regardless of execution order — replicates run in parallel
//! under rayon — all randomness in this workspace is derived from explicit
//! seeds through the helpers here rather than from a shared global stream.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step. A small, high-quality 64-bit mixer used to derive
/// independent sub-seeds from a base seed plus arbitrary stream labels.
///
/// This is the canonical seeding finalizer recommended by the xoshiro
/// authors; successive outputs are statistically independent enough to seed
/// separate generators.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix any number of 64-bit labels into a single derived seed.
///
/// `mix(&[experiment, scenario, replicate])` yields a seed that differs in
/// ~50 % of bits when any single label changes.
pub fn mix(labels: &[u64]) -> u64 {
    let mut acc = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &l in labels {
        acc = splitmix64(acc ^ l.rotate_left(17));
    }
    splitmix64(acc)
}

/// Construct a [`SmallRng`] from a base seed and a list of stream labels.
pub fn rng_for(seed: u64, labels: &[u64]) -> SmallRng {
    let mut all = Vec::with_capacity(labels.len() + 1);
    all.push(seed);
    all.extend_from_slice(labels);
    SmallRng::seed_from_u64(mix(&all))
}

/// Deterministic Bernoulli draw keyed by arbitrary labels.
///
/// Used by the APR substrate to make a mutation's safety and a mutation
/// pair's conflict a *fixed property of the scenario* (the same mutation is
/// always safe or always unsafe for a given world seed), while still being
/// marginally Bernoulli(p) across mutations. The draw consumes no RNG state.
pub fn keyed_bernoulli(p: f64, labels: &[u64]) -> bool {
    debug_assert!((0.0..=1.0).contains(&p));
    // Map the mixed hash to [0, 1) with 53-bit precision.
    let u = (mix(labels) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < p
}

/// Deterministic uniform draw in `[0, 1)` keyed by labels (no RNG state).
pub fn keyed_uniform(labels: &[u64]) -> f64 {
    (mix(labels) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn mix_depends_on_every_label() {
        let base = mix(&[1, 2, 3]);
        assert_ne!(base, mix(&[9, 2, 3]));
        assert_ne!(base, mix(&[1, 9, 3]));
        assert_ne!(base, mix(&[1, 2, 9]));
        assert_eq!(base, mix(&[1, 2, 3]));
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
    }

    #[test]
    fn keyed_bernoulli_edge_probabilities() {
        for i in 0..100u64 {
            assert!(!keyed_bernoulli(0.0, &[i]));
            assert!(keyed_bernoulli(1.0, &[i]));
        }
    }

    #[test]
    fn keyed_bernoulli_marginal_rate_close_to_p() {
        let p = 0.3;
        let hits = (0..20_000u64)
            .filter(|&i| keyed_bernoulli(p, &[i, 77]))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - p).abs() < 0.02, "rate {rate} too far from {p}");
    }

    #[test]
    fn keyed_uniform_in_unit_interval_and_spread() {
        let mut lo = 0usize;
        for i in 0..10_000u64 {
            let u = keyed_uniform(&[i]);
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                lo += 1;
            }
        }
        assert!((lo as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn rng_for_streams_are_reproducible_and_distinct() {
        use rand::Rng;
        let mut a1 = rng_for(7, &[1]);
        let mut a2 = rng_for(7, &[1]);
        let mut b = rng_for(7, &[2]);
        let xa1: u64 = a1.gen();
        let xa2: u64 = a2.gen();
        let xb: u64 = b.gen();
        assert_eq!(xa1, xa2);
        assert_ne!(xa1, xb);
    }
}
