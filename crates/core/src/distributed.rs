//! Distributed MWU — the memoryless population protocol (paper Fig. 3,
//! after the social-learning dynamics of Celis, Krafft & Vishnoi).
//!
//! There is no explicit weight vector: "the popularity of each option
//! encodes the weight vector implicitly, and agents observe random neighbors
//! to access this information" (§II-C). Per round, each agent either
//! explores a uniformly random option (probability μ) or observes the option
//! currently held by a uniformly random neighbor; it evaluates the observed
//! option and adopts it with probability β on success and α on failure
//! (α ≤ β).
//!
//! Communication is point-to-point: the expected congestion of the heaviest
//! hit node is the maximum in-degree of the random observation graph — a
//! balls-into-bins process, `Θ(ln n / ln ln n)` with probability at least
//! `1 − 1/n` (§II-C). This module measures that congestion exactly, per
//! round.
//!
//! The price of memorylessness is population size: representing a weight
//! vector over `k` options in the population head-count requires the
//! population to grow super-linearly in `k` ("the minimum number of agents
//! is higher ... which must be large enough to avoid premature decay of
//! diversity"). We use `pop = ⌈k^{3/2}⌉`; beyond
//! [`DistributedConfig::max_population`] the construction reports the
//! scenario intractable — exactly the `—` cells of the paper's Tables II–IV.

use crate::convergence::{ConvergenceCriterion, ConvergenceState};
use crate::cost::Variant;
use crate::{CommStats, MwuAlgorithm};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Configuration for [`DistributedMwu`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedConfig {
    /// Probability μ of sampling a uniformly random option instead of
    /// observing a neighbor (paper §IV-B sets 0.05).
    pub mu: f64,
    /// Probability α of adopting an observed option that *failed*
    /// (Fig. 3; 0 ≤ α ≤ β).
    pub alpha: f64,
    /// Probability β of adopting an observed option that *succeeded*.
    pub beta: f64,
    /// Population size. `None` derives `⌈k^{3/2}⌉` (at least `4k`).
    pub pop_size: Option<usize>,
    /// Populations above this are declared intractable (the paper's `—`
    /// cells on the two largest scenarios).
    pub max_population: usize,
    /// Convergence threshold: fraction of the population holding the same
    /// option (paper §IV-C: 30 %).
    pub share_threshold: f64,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        Self {
            mu: 0.05,
            alpha: 0.02,
            beta: 0.90,
            pop_size: None,
            max_population: 1_000_000,
            share_threshold: crate::convergence::DEFAULT_POPULATION_SHARE,
        }
    }
}

impl DistributedConfig {
    /// The attention parameter δ = ln(β / (1 − β)) used by the convergence
    /// asymptotics of Table I.
    pub fn delta(&self) -> f64 {
        (self.beta / (1.0 - self.beta)).ln()
    }

    /// The population size this configuration yields for `k` options.
    pub fn population_for(&self, k: usize) -> usize {
        self.pop_size
            .unwrap_or_else(|| ((k as f64).powf(1.5).ceil() as usize).max(4 * k))
    }

    /// Would `k` options exceed the tractability cap?
    pub fn is_tractable(&self, k: usize) -> bool {
        self.population_for(k) <= self.max_population
    }
}

/// Error returned when a scenario requires more agents than the tractable
/// maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intractable {
    /// Options requested.
    pub k: usize,
    /// Population the configuration would need.
    pub required_population: usize,
    /// The configured cap.
    pub max_population: usize,
}

impl std::fmt::Display for Intractable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "distributed MWU over k={} options needs {} agents (cap {})",
            self.k, self.required_population, self.max_population
        )
    }
}

impl std::error::Error for Intractable {}

/// The Distributed (population-protocol) MWU algorithm.
///
/// ```
/// use mwu_core::prelude::*;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut alg = DistributedMwu::try_new(8, DistributedConfig::default()).unwrap();
/// let mut bandit = ValueBandit::exact(vec![0.1, 0.1, 0.1, 0.9, 0.1, 0.1, 0.1, 0.1]);
/// let mut rng = SmallRng::seed_from_u64(0);
/// while !alg.has_converged() {
///     let plan = alg.plan(&mut rng).to_vec();
///     let rewards: Vec<f64> =
///         plan.iter().map(|&a| bandit.pull(a, &mut rng)).collect();
///     alg.update(&rewards, &mut rng);
/// }
/// assert_eq!(alg.leader(), 3);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DistributedMwu {
    k: usize,
    config: DistributedConfig,
    /// The option currently held by each agent (C_j in Fig. 3).
    choices: Vec<u32>,
    /// Population head-count per option — the implicit weight vector.
    counts: Vec<u32>,
    /// Option observed by each agent in the current round (O_j in Fig. 3).
    observed: Vec<u32>,
    /// In-degree of each agent in the current observation round.
    in_degree: Vec<u32>,
    /// The current plan widened to `usize` for the trait interface.
    plan_usize: Vec<usize>,
    convergence: ConvergenceState,
    comm: CommStats,
    iteration: usize,
}

impl DistributedMwu {
    /// Create over `k` options, or report intractability if the derived
    /// population exceeds the cap.
    ///
    /// # Panics
    /// Panics if `k == 0`, parameters lie outside `[0, 1]`, α > β, or the
    /// population is smaller than `k` (every option must be representable).
    pub fn try_new(k: usize, config: DistributedConfig) -> Result<Self, Intractable> {
        assert!(k > 0, "need at least one option");
        assert!((0.0..=1.0).contains(&config.mu));
        assert!((0.0..=1.0).contains(&config.alpha));
        assert!((0.0..=1.0).contains(&config.beta));
        assert!(config.alpha <= config.beta, "require alpha <= beta");
        let pop = config.population_for(k);
        if pop > config.max_population {
            return Err(Intractable {
                k,
                required_population: pop,
                max_population: config.max_population,
            });
        }
        assert!(pop >= k, "population must be at least k");
        // Fig. 3 initialization: options are spread evenly over the
        // population (pop/k agents per option).
        let choices: Vec<u32> = (0..pop).map(|j| (j % k) as u32).collect();
        let mut counts = vec![0u32; k];
        for &c in &choices {
            counts[c as usize] += 1;
        }
        Ok(Self {
            k,
            config,
            observed: vec![0; pop],
            in_degree: vec![0; pop],
            plan_usize: Vec::with_capacity(pop),
            choices,
            counts,
            convergence: ConvergenceState::new(ConvergenceCriterion::PopulationShare {
                share: config.share_threshold,
            }),
            comm: CommStats::default(),
            iteration: 0,
        })
    }

    /// Create, panicking on intractable scenarios (convenience for tests
    /// and examples with known-small `k`).
    pub fn new(k: usize, config: DistributedConfig) -> Self {
        Self::try_new(k, config).expect("scenario intractable for Distributed MWU")
    }

    /// Reset to the exact state of a fresh `try_new(k, config)` while
    /// keeping every buffer's allocation — the
    /// [`crate::arena::ThreadArena`] reuse contract. Trajectories after a
    /// reset are bit-identical to a fresh instance's.
    pub fn reset(&mut self) {
        let k = self.k;
        for (j, c) in self.choices.iter_mut().enumerate() {
            *c = (j % k) as u32;
        }
        self.counts.fill(0);
        for &c in &self.choices {
            self.counts[c as usize] += 1;
        }
        self.observed.fill(0);
        self.in_degree.fill(0);
        self.plan_usize.clear();
        self.convergence = ConvergenceState::new(self.convergence.criterion());
        self.comm = CommStats::default();
        self.iteration = 0;
    }

    /// The population size in force.
    pub fn population(&self) -> usize {
        self.choices.len()
    }

    /// Completed update cycles.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Population head-count per option (the implicit weight vector,
    /// unnormalized).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The configuration in force.
    pub fn config(&self) -> &DistributedConfig {
        &self.config
    }

    fn leader_index(&self) -> usize {
        let mut best = 0;
        for i in 1..self.k {
            if self.counts[i] > self.counts[best] {
                best = i;
            }
        }
        best
    }
}

impl MwuAlgorithm for DistributedMwu {
    fn num_arms(&self) -> usize {
        self.k
    }

    /// Sample step (Fig. 3 lines 7–15): each agent picks a random option
    /// (probability μ) or observes a uniformly random *other* agent's
    /// current option. Neighbor observations are messages; the round's
    /// congestion is the max in-degree.
    ///
    /// Hot loop: one round touches every agent, and populations reach
    /// hundreds of thousands (k^{3/2}); the Bernoulli and range draws use
    /// integer thresholds and the multiply-shift range trick to stay at a
    /// couple of nanoseconds per agent.
    fn plan(&mut self, rng: &mut SmallRng) -> &[usize] {
        use rand::RngCore;
        let _span = crate::prof::span(crate::prof::Phase::Sample);
        let pop = self.choices.len();
        self.in_degree.iter_mut().for_each(|d| *d = 0);
        let mut messages = 0u64;
        // P(explore) as a u64 threshold: next_u64 < mu_threshold ⟺ U < μ.
        let mu_threshold = (self.config.mu * u64::MAX as f64) as u64;
        let k = self.k as u64;
        let pop_minus_1 = (pop - 1) as u64;
        for j in 0..pop {
            if rng.next_u64() < mu_threshold {
                // Uniform option via multiply-shift (bias < 2^-40 for any
                // realistic k).
                let opt = ((rng.next_u64() as u128 * k as u128) >> 64) as usize;
                self.observed[j] = opt as u32;
            } else {
                // Uniform neighbor other than self, same trick.
                let mut nb = ((rng.next_u64() as u128 * pop_minus_1 as u128) >> 64) as usize;
                if nb >= j {
                    nb += 1;
                }
                self.observed[j] = self.choices[nb];
                self.in_degree[nb] += 1;
                messages += 1;
            }
        }
        let congestion = self.in_degree.iter().copied().max().unwrap_or(0) as usize;
        self.comm.record_round(congestion, messages);
        self.plan_cache();
        &self.plan_usize
    }

    fn update(&mut self, rewards: &[f64], rng: &mut SmallRng) {
        use rand::RngCore;
        let pop = self.choices.len();
        assert_eq!(
            rewards.len(),
            pop,
            "Distributed expects one reward per agent"
        );
        self.iteration += 1;
        let a = self.config.alpha;
        let b = self.config.beta;
        // Adopt step (Fig. 3 lines 16–22), generalized to rewards in [0,1]:
        // adopt probability interpolates α (failure) → β (success).
        // Bernoulli rewards are almost always exactly 0 or 1, so the two
        // common adopt thresholds are precomputed as integers.
        let alpha_threshold = (a * u64::MAX as f64) as u64;
        let beta_threshold = (b * u64::MAX as f64) as u64;
        for (j, &r) in rewards.iter().enumerate() {
            let r = crate::sanitize_reward(r);
            let threshold = if r <= 0.0 {
                alpha_threshold
            } else if r >= 1.0 {
                beta_threshold
            } else {
                ((a + (b - a) * r) * u64::MAX as f64) as u64
            };
            if rng.next_u64() < threshold {
                let new = self.observed[j];
                let old = self.choices[j];
                if new != old {
                    self.counts[old as usize] -= 1;
                    self.counts[new as usize] += 1;
                    self.choices[j] = new;
                }
            }
        }
        self.convergence
            .observe(self.iteration, self.leader_share());
    }

    fn leader(&self) -> usize {
        self.leader_index()
    }

    fn leader_share(&self) -> f64 {
        self.counts[self.leader_index()] as f64 / self.choices.len() as f64
    }

    fn has_converged(&self) -> bool {
        self.convergence.has_converged()
    }

    fn cpus_per_iteration(&self) -> usize {
        self.choices.len()
    }

    fn probabilities(&self) -> Vec<f64> {
        let pop = self.choices.len() as f64;
        self.counts.iter().map(|&c| c as f64 / pop).collect()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        let pop = self.choices.len() as f64;
        out.clear();
        out.extend(self.counts.iter().map(|&c| c as f64 / pop));
    }

    fn comm_stats(&self) -> CommStats {
        self.comm
    }

    fn name(&self) -> &'static str {
        "distributed"
    }

    fn variant(&self) -> Variant {
        Variant::Distributed
    }
}

/// Degradation parameters for [`DistributedMwu::update_gossip`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Minimum fraction of the population whose observations must be usable
    /// for the round to apply at all. Below quorum the round is a no-op —
    /// a heavily partitioned round must not produce a *skewed* update in
    /// which only the surviving minority's opinions move the counts.
    pub quorum: f64,
    /// Observations older than this many rounds are discarded outright.
    pub max_staleness: u32,
    /// Per-round-of-staleness multiplier on the adoption probability
    /// (`decay^staleness`): an evaluation that arrives late refers to an
    /// observation the agent has since replaced, so its influence decays.
    pub staleness_decay: f64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            quorum: 0.5,
            max_staleness: 5,
            staleness_decay: 0.8,
        }
    }
}

/// One agent's (possibly late, duplicated, or corrupted) gossiped reward
/// for the option it observed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipObservation {
    /// The agent this evaluation belongs to.
    pub agent: usize,
    /// Observed reward in `[0, 1]` — possibly corrupted (NaN / huge).
    pub reward: f64,
    /// Rounds since the evaluation was made (0 = fresh).
    pub staleness: u32,
}

impl GossipObservation {
    /// A fresh observation for `agent`.
    pub fn fresh(agent: usize, reward: f64) -> Self {
        Self {
            agent,
            reward,
            staleness: 0,
        }
    }
}

/// What [`DistributedMwu::update_gossip`] did with one round's observations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipReport {
    /// Whether the round applied (false ⇒ quorum failed, state untouched).
    pub applied: bool,
    /// Agents whose observation was usable this round.
    pub used: usize,
    /// Agents with no usable observation (never arrived, or discarded).
    pub missing: usize,
    /// Extra copies dropped by per-agent deduplication.
    pub duplicates: usize,
    /// Observations discarded for exceeding `max_staleness`.
    pub stale_discarded: usize,
    /// Observations discarded because the reward was NaN.
    pub corrupt_discarded: usize,
    /// Rewards clamped back into `[0, 1]` (finite but out of range, or ±inf).
    pub clamped: usize,
}

impl DistributedMwu {
    /// Degradation-aware update: incorporate whatever subset of the
    /// population's evaluations survived the network this round.
    ///
    /// This is [`MwuAlgorithm::update`] hardened for lossy transport:
    ///
    /// * **Missing** observations (dropped messages, crashed agents) simply
    ///   leave those agents' choices untouched.
    /// * **Duplicates** are deduplicated per agent — the freshest copy wins,
    ///   so a duplicated packet cannot double an adoption's probability.
    /// * **Stale** observations (delayed messages) are either discarded
    ///   (`staleness > max_staleness`) or applied with adoption probability
    ///   attenuated by `staleness_decay^staleness` — by the time a late
    ///   evaluation arrives, the agent's observed option has moved on, so
    ///   its evidence is worth less.
    /// * **Corrupted** rewards cannot collapse the simplex: NaN is
    ///   discarded, out-of-range values are clamped into `[0, 1]`
    ///   (see [`crate::sanitize_reward`]).
    /// * **Quorum**: if fewer than `quorum · population` usable
    ///   observations remain, the whole round is a no-op rather than a
    ///   skewed update from a surviving minority.
    ///
    /// Agents are processed in id order and each usable observation draws
    /// exactly once from `rng`, so the update is deterministic in
    /// (observations, rng state).
    pub fn update_gossip(
        &mut self,
        observations: &[GossipObservation],
        gossip: &GossipConfig,
        rng: &mut SmallRng,
    ) -> GossipReport {
        use rand::RngCore;
        let pop = self.choices.len();
        let mut report = GossipReport::default();

        // Decode/apply side of the gossip exchange: deduplication and
        // screening are where incoming observations are unpacked.
        let decode_span = crate::prof::span(crate::prof::Phase::GossipDecode);

        // Deduplicate: freshest observation per agent wins.
        let mut slots: Vec<Option<(f64, u32)>> = vec![None; pop];
        for obs in observations {
            if obs.agent >= pop {
                debug_assert!(false, "gossip observation for unknown agent {}", obs.agent);
                continue;
            }
            match &mut slots[obs.agent] {
                slot @ None => *slot = Some((obs.reward, obs.staleness)),
                Some((r, s)) => {
                    report.duplicates += 1;
                    if obs.staleness < *s {
                        *r = obs.reward;
                        *s = obs.staleness;
                    }
                }
            }
        }

        // Screen each slot: staleness window, NaN discard, range clamp.
        for slot in &mut slots {
            let usable = match slot {
                None => false,
                Some((_, s)) if *s > gossip.max_staleness => {
                    report.stale_discarded += 1;
                    false
                }
                Some((r, _)) if r.is_nan() => {
                    report.corrupt_discarded += 1;
                    false
                }
                Some((r, _)) => {
                    let clean = crate::sanitize_reward(*r);
                    if clean != *r {
                        report.clamped += 1;
                        *r = clean;
                    }
                    true
                }
            };
            if !usable {
                *slot = None;
            }
        }
        report.used = slots.iter().filter(|s| s.is_some()).count();
        report.missing = pop - report.used;
        drop(decode_span);

        // Quorum gate: too few survivors ⇒ no-op round.
        let needed = (gossip.quorum * pop as f64).ceil() as usize;
        if report.used < needed {
            return report;
        }
        report.applied = true;

        self.iteration += 1;
        let a = self.config.alpha;
        let b = self.config.beta;
        for (j, slot) in slots.iter().enumerate() {
            let Some((r, staleness)) = *slot else {
                continue;
            };
            let decay = if staleness == 0 {
                1.0
            } else {
                gossip.staleness_decay.powi(staleness as i32)
            };
            let p_adopt = (a + (b - a) * r) * decay;
            let threshold = (p_adopt * u64::MAX as f64) as u64;
            if rng.next_u64() < threshold {
                let new = self.observed[j];
                let old = self.choices[j];
                if new != old {
                    self.counts[old as usize] -= 1;
                    self.counts[new as usize] += 1;
                    self.choices[j] = new;
                }
            }
        }
        self.convergence
            .observe(self.iteration, self.leader_share());
        report
    }
}

impl DistributedMwu {
    fn plan_cache(&mut self) {
        self.plan_usize.clear();
        self.plan_usize
            .extend(self.observed.iter().map(|&o| o as usize));
    }

    /// Access the raw per-agent observation buffer (u32), useful for
    /// zero-copy integration with `simnet`.
    pub fn observed_raw(&self) -> &[u32] {
        &self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::{Bandit, ValueBandit};
    use rand::SeedableRng;

    fn drive(
        alg: &mut DistributedMwu,
        bandit: &mut ValueBandit,
        rounds: usize,
        seed: u64,
    ) -> usize {
        let mut rng = SmallRng::seed_from_u64(seed);
        for t in 0..rounds {
            let plan = alg.plan(&mut rng).to_vec();
            let rewards: Vec<f64> = plan.iter().map(|&a| bandit.pull(a, &mut rng)).collect();
            alg.update(&rewards, &mut rng);
            if alg.has_converged() {
                return t + 1;
            }
        }
        rounds
    }

    #[test]
    fn population_scales_with_k() {
        let cfg = DistributedConfig::default();
        assert_eq!(cfg.population_for(64), 512);
        assert_eq!(cfg.population_for(4), 16);
        assert!(cfg.population_for(16384) > 1_000_000);
        assert!(!cfg.is_tractable(16384));
        assert!(cfg.is_tractable(4096));
    }

    #[test]
    fn intractable_reported_not_panicked() {
        let err = DistributedMwu::try_new(16384, DistributedConfig::default()).unwrap_err();
        assert_eq!(err.k, 16384);
        assert!(err.required_population > err.max_population);
        let msg = err.to_string();
        assert!(msg.contains("16384"));
    }

    #[test]
    fn initial_population_spread_evenly() {
        let alg = DistributedMwu::new(8, DistributedConfig::default());
        let pop = alg.population();
        for &c in alg.counts() {
            // j % k spread: counts differ by at most 1.
            assert!((c as usize).abs_diff(pop / 8) <= 1);
        }
    }

    #[test]
    fn converges_to_clear_winner() {
        let mut values = vec![0.05; 16];
        values[5] = 0.95;
        let mut alg = DistributedMwu::new(16, DistributedConfig::default());
        let mut bandit = ValueBandit::bernoulli(values);
        let t = drive(&mut alg, &mut bandit, 10_000, 3);
        assert!(alg.has_converged(), "no convergence in {t} rounds");
        assert_eq!(alg.leader(), 5);
        assert!(alg.leader_share() >= 0.3);
    }

    #[test]
    fn counts_always_sum_to_population() {
        let mut alg = DistributedMwu::new(8, DistributedConfig::default());
        let mut bandit = ValueBandit::bernoulli(vec![0.3; 8]);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let plan = alg.plan(&mut rng).to_vec();
            let rewards: Vec<f64> = plan.iter().map(|&a| bandit.pull(a, &mut rng)).collect();
            alg.update(&rewards, &mut rng);
            let sum: u32 = alg.counts().iter().sum();
            assert_eq!(sum as usize, alg.population());
        }
    }

    #[test]
    fn congestion_is_logarithmic_not_linear() {
        // Balls-into-bins: with n agents each observing one uniform
        // neighbor, the max in-degree is Θ(ln n / ln ln n) ≪ n.
        let mut alg = DistributedMwu::new(32, DistributedConfig::default());
        let mut bandit = ValueBandit::bernoulli(vec![0.5; 32]);
        drive(&mut alg, &mut bandit, 30, 1);
        let stats = alg.comm_stats();
        let n = alg.population() as f64;
        assert!(stats.peak_congestion > 0);
        assert!(
            (stats.peak_congestion as f64) < n / 4.0,
            "congestion {} vs population {n}",
            stats.peak_congestion
        );
        // And mean congestion is within a constant factor of ln n / ln ln n.
        let theory = n.ln() / n.ln().ln();
        assert!(
            stats.mean_congestion() < 6.0 * theory,
            "mean {} vs theory {theory}",
            stats.mean_congestion()
        );
    }

    #[test]
    fn exploration_preserves_diversity() {
        // With μ > 0, even after convergence no option's count stays at
        // exactly zero forever — exploration keeps reintroducing options.
        let mut values = vec![0.1; 8];
        values[0] = 0.9;
        let mut alg = DistributedMwu::new(8, DistributedConfig::default());
        let mut bandit = ValueBandit::bernoulli(values);
        drive(&mut alg, &mut bandit, 5000, 2);
        let nonzero = alg.counts().iter().filter(|&&c| c > 0).count();
        assert!(nonzero >= 2, "population collapsed to a single option");
    }

    #[test]
    #[should_panic]
    fn alpha_above_beta_rejected() {
        let _ = DistributedMwu::new(
            4,
            DistributedConfig {
                alpha: 0.9,
                beta: 0.1,
                ..DistributedConfig::default()
            },
        );
    }

    #[test]
    fn delta_formula() {
        let cfg = DistributedConfig {
            beta: 0.9,
            ..DistributedConfig::default()
        };
        assert!((cfg.delta() - (0.9f64 / 0.1).ln()).abs() < 1e-12);
    }

    /// Drive with gossip: each round, every agent's reward survives with
    /// probability `deliver`, duplicated with probability `dup`.
    fn drive_gossip(
        alg: &mut DistributedMwu,
        bandit: &mut ValueBandit,
        gossip: &GossipConfig,
        deliver: f64,
        dup: f64,
        rounds: usize,
        seed: u64,
    ) -> usize {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net_rng = SmallRng::seed_from_u64(seed ^ 0xDEAD);
        for t in 0..rounds {
            let plan = alg.plan(&mut rng).to_vec();
            let mut obs = Vec::with_capacity(plan.len());
            for (j, &a) in plan.iter().enumerate() {
                let r = bandit.pull(a, &mut rng);
                if net_rng.gen::<f64>() < deliver {
                    obs.push(GossipObservation::fresh(j, r));
                    if net_rng.gen::<f64>() < dup {
                        obs.push(GossipObservation::fresh(j, r));
                    }
                }
            }
            alg.update_gossip(&obs, gossip, &mut rng);
            if alg.has_converged() {
                return t + 1;
            }
        }
        rounds
    }

    #[test]
    fn gossip_with_full_delivery_converges() {
        let mut values = vec![0.05; 16];
        values[5] = 0.95;
        let mut alg = DistributedMwu::new(16, DistributedConfig::default());
        let mut bandit = ValueBandit::bernoulli(values);
        let t = drive_gossip(
            &mut alg,
            &mut bandit,
            &GossipConfig::default(),
            1.0,
            0.0,
            10_000,
            3,
        );
        assert!(alg.has_converged(), "no convergence in {t} rounds");
        assert_eq!(alg.leader(), 5);
    }

    #[test]
    fn gossip_converges_under_ten_percent_drop() {
        // The ISSUE acceptance criterion: drop rate ≤ 10% must still
        // converge on unimodal-style instances without divergence or NaN.
        let mut values = vec![0.05; 16];
        values[5] = 0.95;
        let mut alg = DistributedMwu::new(16, DistributedConfig::default());
        let mut bandit = ValueBandit::bernoulli(values);
        let t = drive_gossip(
            &mut alg,
            &mut bandit,
            &GossipConfig::default(),
            0.9,
            0.05,
            20_000,
            4,
        );
        assert!(
            alg.has_converged(),
            "no convergence in {t} rounds at 10% drop"
        );
        assert_eq!(alg.leader(), 5);
        let sum: u32 = alg.counts().iter().sum();
        assert_eq!(sum as usize, alg.population(), "counts conserved");
        assert!(alg.probabilities().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn gossip_below_quorum_is_noop() {
        let mut alg = DistributedMwu::new(8, DistributedConfig::default());
        let mut rng = SmallRng::seed_from_u64(0);
        alg.plan(&mut rng);
        let counts_before = alg.counts().to_vec();
        let it_before = alg.iteration();
        // Only 3 observations for a population of ≥ 22: far below quorum.
        let obs: Vec<GossipObservation> =
            (0..3).map(|j| GossipObservation::fresh(j, 1.0)).collect();
        let report = alg.update_gossip(&obs, &GossipConfig::default(), &mut rng);
        assert!(!report.applied);
        assert_eq!(report.used, 3);
        assert_eq!(report.missing, alg.population() - 3);
        assert_eq!(
            alg.counts(),
            counts_before.as_slice(),
            "state must not move"
        );
        assert_eq!(alg.iteration(), it_before, "no-op must not consume a cycle");
    }

    #[test]
    fn gossip_duplicates_deduplicated() {
        let mut alg = DistributedMwu::new(4, DistributedConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        alg.plan(&mut rng);
        let pop = alg.population();
        let mut obs: Vec<GossipObservation> =
            (0..pop).map(|j| GossipObservation::fresh(j, 0.5)).collect();
        // Triple agent 0's observation.
        obs.push(GossipObservation::fresh(0, 0.5));
        obs.push(GossipObservation::fresh(0, 0.5));
        let report = alg.update_gossip(&obs, &GossipConfig::default(), &mut rng);
        assert!(report.applied);
        assert_eq!(report.duplicates, 2);
        assert_eq!(report.used, pop);
    }

    #[test]
    fn gossip_corrupt_rewards_cannot_poison_counts() {
        let gossip = GossipConfig {
            quorum: 0.0,
            ..GossipConfig::default()
        };
        let mut alg = DistributedMwu::new(8, DistributedConfig::default());
        let mut rng = SmallRng::seed_from_u64(2);
        for round in 0..200 {
            let plan_len = {
                alg.plan(&mut rng);
                alg.population()
            };
            let obs: Vec<GossipObservation> = (0..plan_len)
                .map(|j| {
                    let reward = match (round + j) % 4 {
                        0 => f64::NAN,
                        1 => 1e15,
                        2 => -1e15,
                        _ => 0.5,
                    };
                    GossipObservation::fresh(j, reward)
                })
                .collect();
            let report = alg.update_gossip(&obs, &gossip, &mut rng);
            assert!(report.corrupt_discarded > 0);
            assert!(report.clamped > 0);
            let sum: u32 = alg.counts().iter().sum();
            assert_eq!(sum as usize, alg.population());
        }
        assert!(alg.probabilities().iter().all(|p| p.is_finite()));
        assert!(alg.leader_share().is_finite());
    }

    #[test]
    fn gossip_stale_observations_discarded_past_window() {
        let gossip = GossipConfig {
            quorum: 0.0,
            max_staleness: 2,
            staleness_decay: 0.5,
        };
        let mut alg = DistributedMwu::new(4, DistributedConfig::default());
        let mut rng = SmallRng::seed_from_u64(3);
        alg.plan(&mut rng);
        let obs = vec![
            GossipObservation {
                agent: 0,
                reward: 1.0,
                staleness: 1,
            },
            GossipObservation {
                agent: 1,
                reward: 1.0,
                staleness: 7,
            },
        ];
        let report = alg.update_gossip(&obs, &gossip, &mut rng);
        assert_eq!(report.stale_discarded, 1);
        assert_eq!(report.used, 1);
    }

    #[test]
    fn gossip_is_deterministic() {
        fn run_once() -> (Vec<u32>, usize) {
            let mut alg = DistributedMwu::new(8, DistributedConfig::default());
            let mut bandit = ValueBandit::bernoulli(vec![0.2, 0.2, 0.9, 0.2, 0.2, 0.2, 0.2, 0.2]);
            drive_gossip(
                &mut alg,
                &mut bandit,
                &GossipConfig::default(),
                0.8,
                0.1,
                300,
                7,
            );
            (alg.counts().to_vec(), alg.iteration())
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn plan_length_equals_population() {
        let mut alg = DistributedMwu::new(8, DistributedConfig::default());
        let mut rng = SmallRng::seed_from_u64(0);
        let plan = alg.plan(&mut rng).to_vec();
        assert_eq!(plan.len(), alg.population());
        assert!(plan.iter().all(|&a| a < 8));
    }
}
