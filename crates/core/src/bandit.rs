//! The bandit environment: options of unknown value, sampled at a cost.
//!
//! The paper frames its evaluation as "estimating distributions" (§I): each
//! dataset is a vector of option values in `[0, 1]`, and pulling an option
//! returns stochastic feedback whose expectation is that value. In the APR
//! use case the feedback is genuinely Bernoulli — a probe either retains the
//! program's fitness or it does not — so Bernoulli is the default
//! [`NoiseModel`].

use crate::rng::keyed_uniform;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A multi-armed bandit environment.
///
/// `pull` is the expensive operation of the paper's framing: in APR it
/// corresponds to patching, compiling and running a test suite. The trait
/// also exposes ground truth (`expected_value`) so the harness can score
/// accuracy *after* a run (Table III); algorithms must never call it.
pub trait Bandit {
    /// Number of arms (options).
    fn num_arms(&self) -> usize;

    /// Sample arm `arm` once, returning a reward in `[0, 1]`.
    fn pull(&mut self, arm: usize, rng: &mut SmallRng) -> f64;

    /// Ground-truth expected reward of `arm` (for post-hoc scoring only).
    fn expected_value(&self, arm: usize) -> f64;

    /// Total number of pulls issued so far.
    fn pulls(&self) -> u64;

    /// Index of the best arm in hindsight.
    fn best_arm(&self) -> usize {
        let mut best = 0;
        for i in 1..self.num_arms() {
            if self.expected_value(i) > self.expected_value(best) {
                best = i;
            }
        }
        best
    }

    /// Expected value of the best arm.
    fn best_value(&self) -> f64 {
        self.expected_value(self.best_arm())
    }

    /// Accuracy of choosing `arm`, as the paper's Table III defines it:
    /// `100 · (1 − |v* − v_arm| / v*)`, i.e. the percentage of the
    /// best-in-hindsight value that the chosen arm attains.
    fn accuracy_of(&self, arm: usize) -> f64 {
        let best = self.best_value();
        if best <= 0.0 {
            return 100.0;
        }
        100.0 * (1.0 - (best - self.expected_value(arm)).abs() / best)
    }
}

/// How observed rewards are generated from an arm's true value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// Reward is exactly the arm's value (full-information oracle; used in
    /// tests and the cost-model sanity experiments).
    Exact,
    /// Reward ~ Bernoulli(value) — the APR observation model.
    Bernoulli,
    /// Reward = clamp(value + N(0, σ²)) using a Box–Muller gaussian.
    Gaussian(f64),
}

/// A bandit defined by an explicit vector of arm values.
///
/// This is the environment used for every Table II–IV experiment: the
/// dataset generators in `mwu-datasets` produce the value vector, and the
/// noise model turns it into stochastic feedback.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueBandit {
    values: Vec<f64>,
    noise: NoiseModel,
    pulls: u64,
}

impl ValueBandit {
    /// Build with an explicit noise model.
    ///
    /// # Panics
    /// Panics if `values` is empty or any value lies outside `[0, 1]`.
    pub fn new(values: Vec<f64>, noise: NoiseModel) -> Self {
        assert!(!values.is_empty(), "bandit needs at least one arm");
        for &v in &values {
            assert!(
                (0.0..=1.0).contains(&v),
                "arm value {v} outside the unit interval"
            );
        }
        Self {
            values,
            noise,
            pulls: 0,
        }
    }

    /// Bernoulli-feedback bandit (the paper's observation model).
    pub fn bernoulli(values: Vec<f64>) -> Self {
        Self::new(values, NoiseModel::Bernoulli)
    }

    /// Noise-free bandit, useful in unit tests.
    pub fn exact(values: Vec<f64>) -> Self {
        Self::new(values, NoiseModel::Exact)
    }

    /// The underlying value vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Reset the pull counter (e.g. between replicates sharing a dataset).
    pub fn reset_pulls(&mut self) {
        self.pulls = 0;
    }
}

impl Bandit for ValueBandit {
    fn num_arms(&self) -> usize {
        self.values.len()
    }

    fn pull(&mut self, arm: usize, rng: &mut SmallRng) -> f64 {
        self.pulls += 1;
        let v = self.values[arm];
        match self.noise {
            NoiseModel::Exact => v,
            NoiseModel::Bernoulli => {
                if rng.gen::<f64>() < v {
                    1.0
                } else {
                    0.0
                }
            }
            NoiseModel::Gaussian(sigma) => {
                // Box–Muller from two uniforms; one gaussian per pull is
                // plenty — this path is not hot.
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (v + sigma * z).clamp(0.0, 1.0)
            }
        }
    }

    fn expected_value(&self, arm: usize) -> f64 {
        self.values[arm]
    }

    fn pulls(&self) -> u64 {
        self.pulls
    }
}

/// Deterministic pseudo-random value vector in the unit interval, keyed by a
/// seed. Convenience used by tests and examples; the real dataset catalog
/// lives in `mwu-datasets`.
pub fn random_values(k: usize, seed: u64) -> Vec<f64> {
    (0..k as u64).map(|i| keyed_uniform(&[seed, i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_bandit_returns_values() {
        let mut b = ValueBandit::exact(vec![0.2, 0.8]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(b.pull(0, &mut rng), 0.2);
        assert_eq!(b.pull(1, &mut rng), 0.8);
        assert_eq!(b.pulls(), 2);
    }

    #[test]
    fn bernoulli_bandit_matches_mean() {
        let mut b = ValueBandit::bernoulli(vec![0.3]);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let r = b.pull(0, &mut rng);
            assert!(r == 0.0 || r == 1.0);
            sum += r;
        }
        assert!((sum / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn gaussian_bandit_clamps_and_centers() {
        let mut b = ValueBandit::new(vec![0.5], NoiseModel::Gaussian(0.2));
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let r = b.pull(0, &mut rng);
            assert!((0.0..=1.0).contains(&r));
            sum += r;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn best_arm_and_accuracy() {
        let b = ValueBandit::exact(vec![0.1, 0.9, 0.45]);
        assert_eq!(b.best_arm(), 1);
        assert!((b.best_value() - 0.9).abs() < 1e-12);
        assert!((b.accuracy_of(1) - 100.0).abs() < 1e-9);
        assert!((b.accuracy_of(2) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_with_zero_best_is_full() {
        let b = ValueBandit::exact(vec![0.0, 0.0]);
        assert_eq!(b.accuracy_of(0), 100.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_value_panics() {
        let _ = ValueBandit::exact(vec![1.5]);
    }

    #[test]
    fn random_values_deterministic() {
        let a = random_values(16, 5);
        let b = random_values(16, 5);
        let c = random_values(16, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
    }
}
