//! Generic run driver: execute any [`MwuAlgorithm`] against any [`Bandit`]
//! until convergence or an iteration cap, recording the quantities reported
//! in Tables II–IV (update cycles, CPU-iterations, accuracy inputs,
//! communication stats).

use crate::bandit::Bandit;
use crate::trace::{
    CommDelta, ConvergenceEvent, IterationEvent, NullObserver, Observer, RewardSummary,
    RunStartEvent,
};
use crate::MwuAlgorithm;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Iteration (update-cycle) limit. Paper §IV-B: 10,000.
    pub max_iterations: usize,
    /// RNG seed for this replicate.
    pub seed: u64,
    /// Keep iterating after convergence (used when studying post-convergence
    /// dynamics); default stops at first convergence.
    pub run_past_convergence: bool,
}

impl RunConfig {
    /// Paper defaults with an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            max_iterations: 10_000,
            seed,
            run_past_convergence: false,
        }
    }

    /// Override the iteration cap.
    pub fn with_max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = max;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::seeded(0)
    }
}

/// Everything measured about one run, i.e. one cell-contribution to
/// Tables II–IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Variant name ("standard" / "slate" / "distributed").
    pub algorithm: &'static str,
    /// Update cycles executed (= cycles to convergence when `converged`).
    pub iterations: usize,
    /// Whether the variant's convergence criterion was met within the cap.
    pub converged: bool,
    /// The arm held highest when the run ended (at convergence, or at the
    /// cap — the paper reports "the option with the highest weight when the
    /// time limit is reached" for non-converged runs).
    pub leader: usize,
    /// Leader's share when the run ended.
    pub leader_share: f64,
    /// Iterations × CPUs-per-iteration — the Table IV cost unit.
    pub cpu_iterations: u64,
    /// Total bandit pulls issued (equals `cpu_iterations` for these
    /// variants; kept separate for substrates where probes batch).
    pub pulls: u64,
    /// Communication accounting.
    pub comm: crate::CommStats,
    /// CPUs one iteration occupied.
    pub cpus_per_iteration: usize,
}

impl RunOutcome {
    /// Table III accuracy against a ground-truth value vector:
    /// `100·(1 − |v* − v_leader|/v*)`.
    pub fn accuracy(&self, values: &[f64]) -> f64 {
        let best = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if best <= 0.0 {
            return 100.0;
        }
        100.0 * (1.0 - (best - values[self.leader]).abs() / best)
    }
}

/// Run `alg` against `bandit` until it converges or `config.max_iterations`
/// update cycles have elapsed.
///
/// Each update cycle is: plan → evaluate every planned arm → update. The
/// evaluation step is where a real deployment parallelizes (one agent per
/// planned arm); here the pulls are issued sequentially from a per-run RNG
/// so that every replicate is exactly reproducible.
pub fn run_to_convergence<A: MwuAlgorithm, B: Bandit>(
    alg: &mut A,
    bandit: &mut B,
    config: &RunConfig,
) -> RunOutcome {
    run_to_convergence_observed(alg, bandit, config, &mut NullObserver)
}

/// [`run_to_convergence`] with run telemetry delivered to `observer`.
///
/// Event construction happens only when `observer.enabled()`; with
/// [`NullObserver`] the whole telemetry path is compiled out, so the
/// unobserved wrapper costs nothing over the pre-telemetry driver. Even
/// when enabled, the per-iteration probability snapshot behind the entropy
/// figure borrows a reused buffer (`probabilities_into`) — observing a run
/// does not reintroduce per-round allocation.
pub fn run_to_convergence_observed<A: MwuAlgorithm, B: Bandit, O: Observer>(
    alg: &mut A,
    bandit: &mut B,
    config: &RunConfig,
    observer: &mut O,
) -> RunOutcome {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut rewards: Vec<f64> = Vec::new();
    // Reused probability snapshot for the per-iteration entropy figure.
    let mut probs: Vec<f64> = Vec::new();
    let mut iterations = 0;
    let start_pulls = bandit.pulls();
    let mut convergence_reported = false;

    if observer.enabled() {
        observer.on_run_start(RunStartEvent {
            algorithm: alg.name(),
            num_arms: alg.num_arms(),
            cpus_per_iteration: alg.cpus_per_iteration(),
            seed: config.seed,
            max_iterations: config.max_iterations,
        });
    }

    for _ in 0..config.max_iterations {
        let comm_before = if observer.enabled() {
            alg.comm_stats()
        } else {
            crate::CommStats::default()
        };
        let plan = {
            let _span = crate::prof::span(crate::prof::Phase::Plan);
            alg.plan(&mut rng)
        };
        rewards.clear();
        rewards.reserve(plan.len());
        for &arm in plan {
            rewards.push(bandit.pull(arm, &mut rng));
        }
        {
            let _span = crate::prof::span(crate::prof::Phase::Update);
            alg.update(&rewards, &mut rng);
        }
        iterations += 1;
        if observer.enabled() {
            alg.probabilities_into(&mut probs);
            observer.on_iteration(IterationEvent {
                iteration: iterations,
                leader: alg.leader(),
                leader_share: alg.leader_share(),
                entropy: crate::trace::entropy(&probs),
                comm: CommDelta::between(&comm_before, &alg.comm_stats()),
                reward: RewardSummary::of(&rewards),
            });
        }
        if alg.has_converged() {
            if observer.enabled() && !convergence_reported {
                convergence_reported = true;
                observer.on_convergence(ConvergenceEvent {
                    iteration: iterations,
                    leader: alg.leader(),
                    leader_share: alg.leader_share(),
                });
            }
            if !config.run_past_convergence {
                break;
            }
        }
    }

    let outcome = RunOutcome {
        algorithm: alg.name(),
        iterations,
        converged: alg.has_converged(),
        leader: alg.leader(),
        leader_share: alg.leader_share(),
        cpu_iterations: iterations as u64 * alg.cpus_per_iteration() as u64,
        pulls: bandit.pulls() - start_pulls,
        comm: alg.comm_stats(),
        cpus_per_iteration: alg.cpus_per_iteration(),
    };
    if observer.enabled() {
        observer.on_run_end(outcome.clone());
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::ValueBandit;
    use crate::standard::{StandardConfig, StandardMwu};

    #[test]
    fn driver_runs_and_reports() {
        let mut alg = StandardMwu::new(4, StandardConfig::default());
        let mut bandit = ValueBandit::exact(vec![0.1, 0.9, 0.2, 0.3]);
        let out = run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(1));
        assert!(out.converged);
        assert_eq!(out.leader, 1);
        assert_eq!(out.cpu_iterations, out.iterations as u64 * 4);
        assert_eq!(out.pulls, out.cpu_iterations);
        assert!((out.accuracy(&[0.1, 0.9, 0.2, 0.3]) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn stops_at_first_convergence_by_default() {
        let mut alg = StandardMwu::new(3, StandardConfig::default());
        let mut bandit = ValueBandit::exact(vec![0.0, 1.0, 0.0]);
        let out = run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(2));
        assert!(out.converged);
        assert!(out.iterations < 10_000);
    }

    #[test]
    fn run_past_convergence_uses_the_full_horizon() {
        let mut alg = StandardMwu::new(3, StandardConfig::default());
        let mut bandit = ValueBandit::exact(vec![0.0, 1.0, 0.0]);
        let cfg = RunConfig {
            max_iterations: 123,
            seed: 3,
            run_past_convergence: true,
        };
        let out = run_to_convergence(&mut alg, &mut bandit, &cfg);
        assert_eq!(out.iterations, 123);
        assert!(out.converged);
    }

    #[test]
    fn iteration_cap_reported_as_non_converged() {
        // Near-tied arms with a strict criterion never converge; the driver
        // must stop at the cap and say so.
        let mut alg = StandardMwu::new(
            2,
            StandardConfig {
                stability_window: 0, // strict: leader share ≥ 1 − 1e-5
                ..StandardConfig::default()
            },
        );
        let mut bandit = ValueBandit::bernoulli(vec![0.5000, 0.5001]);
        let cfg = RunConfig::seeded(4).with_max_iterations(50);
        let out = run_to_convergence(&mut alg, &mut bandit, &cfg);
        assert_eq!(out.iterations, 50);
        assert!(!out.converged);
    }

    #[test]
    fn accuracy_handles_all_zero_values() {
        let mut alg = StandardMwu::new(2, StandardConfig::default());
        let mut bandit = ValueBandit::exact(vec![0.0, 0.0]);
        let out = run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(5));
        assert_eq!(out.accuracy(&[0.0, 0.0]), 100.0);
    }

    #[test]
    fn outcome_serializes() {
        let mut alg = StandardMwu::new(4, StandardConfig::default());
        let mut bandit = ValueBandit::exact(vec![0.1, 0.9, 0.2, 0.3]);
        let out = run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(6));
        // RunOutcome is part of the persisted experiment record.
        let s = format!("{out:?}");
        assert!(s.contains("standard"));
    }
}
