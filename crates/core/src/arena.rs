//! Per-thread scratch arenas for pool participants.
//!
//! The parallel layers (the experiment grid, the MWRepair probe loop, the
//! Fig. 4 estimators) run thousands of short independent units on pool
//! workers. Each unit historically paid its own heap traffic — a fresh
//! algorithm instance per grid replicate, a fresh index permutation per
//! sampled composition — and on a busy pool those allocations all contend
//! on the global allocator and drag freshly-faulted pages across cores.
//!
//! [`ThreadArena`] removes that contention structurally: every thread owns
//! one arena (a `thread_local`), so taking and returning scratch is a plain
//! `Vec` pop/push with **zero synchronization**. Buffers and whole
//! algorithm instances persist across work units on the same worker; a
//! returned algorithm is [reset](StandardMwu::reset) to the exact state of
//! a fresh construction before reuse, so trajectories are bit-identical
//! whether the instance came from the arena or from `new` — the
//! determinism contract of `docs/PARALLELISM.md` is indifferent to reuse.
//!
//! RNG streams are *not* arena state: they stay derived per work unit from
//! stable keys (`replicate_seed`, `mix(seed, iteration, agent)`), exactly
//! as before.
//!
//! ## Ownership rules
//!
//! * `take_*` hands out a cleared/reset value; `give_*` returns it for the
//!   next unit on this thread. Not returning a value is always safe — the
//!   arena then simply allocates anew next time.
//! * Keep arena borrows short: `ThreadArena::with` takes the thread-local
//!   `RefCell` mutably, so calls must not nest. Take scratch out, release
//!   the borrow, do the work, then return it with a second `with`.
//! * Cached algorithm instances are matched on `(k, config)`; a miss
//!   constructs fresh. The per-variant cache is bounded
//!   ([`MAX_CACHED_PER_VARIANT`]) so arenas cannot hoard memory when a
//!   sweep cycles through many instance sizes.

use crate::distributed::{DistributedConfig, DistributedMwu, Intractable};
use crate::slate::{SlateConfig, SlateMwu};
use crate::standard::{StandardConfig, StandardMwu};
use crate::MwuAlgorithm;
use std::cell::RefCell;

/// Cached instances kept per algorithm variant. Grid sweeps interleave at
/// most a handful of `(k, config)` shapes per thread.
const MAX_CACHED_PER_VARIANT: usize = 4;

/// Bounded pools of reusable scratch owned by one thread.
#[derive(Default)]
pub struct ThreadArena {
    usize_bufs: Vec<Vec<usize>>,
    f64_bufs: Vec<Vec<f64>>,
    standard: Vec<StandardMwu>,
    slate: Vec<SlateMwu>,
    distributed: Vec<DistributedMwu>,
}

thread_local! {
    static ARENA: RefCell<ThreadArena> = RefCell::new(ThreadArena::new());
}

impl ThreadArena {
    /// An empty arena (tests construct their own; production code uses the
    /// thread-local via [`Self::with`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` with this thread's arena. Calls must not nest (the arena is
    /// a `RefCell`); take scratch out and release the borrow before doing
    /// heavy work.
    pub fn with<R>(f: impl FnOnce(&mut ThreadArena) -> R) -> R {
        ARENA.with(|a| f(&mut a.borrow_mut()))
    }

    /// A cleared `Vec<usize>`, reusing a returned buffer's capacity.
    pub fn take_usize(&mut self) -> Vec<usize> {
        let mut buf = self.usize_bufs.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a `Vec<usize>` for reuse.
    pub fn give_usize(&mut self, buf: Vec<usize>) {
        if self.usize_bufs.len() < MAX_CACHED_PER_VARIANT {
            self.usize_bufs.push(buf);
        }
    }

    /// A cleared `Vec<f64>`, reusing a returned buffer's capacity.
    pub fn take_f64(&mut self) -> Vec<f64> {
        let mut buf = self.f64_bufs.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a `Vec<f64>` for reuse.
    pub fn give_f64(&mut self, buf: Vec<f64>) {
        if self.f64_bufs.len() < MAX_CACHED_PER_VARIANT {
            self.f64_bufs.push(buf);
        }
    }

    /// A [`StandardMwu`] over `k` arms under `config`: a cached instance
    /// reset to its initial state when one matches, else a fresh one.
    pub fn take_standard(&mut self, k: usize, config: StandardConfig) -> StandardMwu {
        if let Some(i) = self
            .standard
            .iter()
            .position(|a| a.num_arms() == k && *a.config() == config)
        {
            let mut alg = self.standard.swap_remove(i);
            alg.reset();
            return alg;
        }
        StandardMwu::new(k, config)
    }

    /// Return a [`StandardMwu`] for reuse.
    pub fn give_standard(&mut self, alg: StandardMwu) {
        if self.standard.len() < MAX_CACHED_PER_VARIANT {
            self.standard.push(alg);
        }
    }

    /// A [`SlateMwu`] over `k` arms under `config` (cached + reset, or
    /// fresh).
    pub fn take_slate(&mut self, k: usize, config: SlateConfig) -> SlateMwu {
        if let Some(i) = self
            .slate
            .iter()
            .position(|a| a.num_arms() == k && *a.config() == config)
        {
            let mut alg = self.slate.swap_remove(i);
            alg.reset();
            return alg;
        }
        SlateMwu::new(k, config)
    }

    /// Return a [`SlateMwu`] for reuse.
    pub fn give_slate(&mut self, alg: SlateMwu) {
        if self.slate.len() < MAX_CACHED_PER_VARIANT {
            self.slate.push(alg);
        }
    }

    /// A [`DistributedMwu`] over `k` arms under `config` (cached + reset,
    /// or fresh). Propagates the intractability verdict exactly as
    /// [`DistributedMwu::try_new`].
    pub fn take_distributed(
        &mut self,
        k: usize,
        config: DistributedConfig,
    ) -> Result<DistributedMwu, Intractable> {
        if let Some(i) = self
            .distributed
            .iter()
            .position(|a| a.num_arms() == k && *a.config() == config)
        {
            let mut alg = self.distributed.swap_remove(i);
            alg.reset();
            return Ok(alg);
        }
        DistributedMwu::try_new(k, config)
    }

    /// Return a [`DistributedMwu`] for reuse.
    pub fn give_distributed(&mut self, alg: DistributedMwu) {
        if self.distributed.len() < MAX_CACHED_PER_VARIANT {
            self.distributed.push(alg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::ValueBandit;
    use crate::run::{run_to_convergence, RunConfig};

    fn run_cfg(seed: u64) -> RunConfig {
        RunConfig {
            max_iterations: 400,
            seed,
            run_past_convergence: false,
        }
    }

    fn bandit(k: usize, seed: u64) -> ValueBandit {
        ValueBandit::exact(crate::bandit::random_values(k, seed))
    }

    /// The reuse contract: an instance that already ran a full (different)
    /// trajectory, was given back, and taken again must reproduce a fresh
    /// instance's trajectory bit for bit.
    #[test]
    fn reused_standard_matches_fresh_bit_for_bit() {
        let k = 16;
        let cfg = StandardConfig::default();
        let mut arena = ThreadArena::new();

        let mut dirty = arena.take_standard(k, cfg);
        let mut b0 = bandit(k, 7);
        let _ = run_to_convergence(&mut dirty, &mut b0, &run_cfg(99));
        arena.give_standard(dirty);

        let mut fresh = StandardMwu::new(k, cfg);
        let mut reused = arena.take_standard(k, cfg);
        let mut b1 = bandit(k, 3);
        let mut b2 = bandit(k, 3);
        let out_fresh = run_to_convergence(&mut fresh, &mut b1, &run_cfg(42));
        let out_reused = run_to_convergence(&mut reused, &mut b2, &run_cfg(42));
        assert_eq!(out_fresh, out_reused);
        assert_eq!(
            fresh.weights().probabilities(),
            reused.weights().probabilities()
        );
    }

    #[test]
    fn reused_slate_matches_fresh_bit_for_bit() {
        let k = 32;
        let cfg = SlateConfig::default();
        let mut arena = ThreadArena::new();

        let mut dirty = arena.take_slate(k, cfg);
        let mut b0 = bandit(k, 11);
        let _ = run_to_convergence(&mut dirty, &mut b0, &run_cfg(5));
        arena.give_slate(dirty);

        let mut fresh = SlateMwu::new(k, cfg);
        let mut reused = arena.take_slate(k, cfg);
        let mut b1 = bandit(k, 8);
        let mut b2 = bandit(k, 8);
        let out_fresh = run_to_convergence(&mut fresh, &mut b1, &run_cfg(17));
        let out_reused = run_to_convergence(&mut reused, &mut b2, &run_cfg(17));
        assert_eq!(out_fresh, out_reused);
        assert_eq!(
            fresh.weights().probabilities(),
            reused.weights().probabilities()
        );
    }

    #[test]
    fn reused_distributed_matches_fresh_bit_for_bit() {
        let k = 8;
        let cfg = DistributedConfig::default();
        let mut arena = ThreadArena::new();

        let mut dirty = arena.take_distributed(k, cfg).unwrap();
        let mut b0 = bandit(k, 2);
        let _ = run_to_convergence(&mut dirty, &mut b0, &run_cfg(1));
        arena.give_distributed(dirty);

        let mut fresh = DistributedMwu::new(k, cfg);
        let mut reused = arena.take_distributed(k, cfg).unwrap();
        let mut b1 = bandit(k, 4);
        let mut b2 = bandit(k, 4);
        let out_fresh = run_to_convergence(&mut fresh, &mut b1, &run_cfg(23));
        let out_reused = run_to_convergence(&mut reused, &mut b2, &run_cfg(23));
        assert_eq!(out_fresh, out_reused);
        assert_eq!(fresh.counts(), reused.counts());
    }

    #[test]
    fn buffers_keep_capacity_and_pools_stay_bounded() {
        let mut arena = ThreadArena::new();
        let mut buf = arena.take_usize();
        buf.extend(0..1000);
        let cap = buf.capacity();
        arena.give_usize(buf);
        let again = arena.take_usize();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap);

        for _ in 0..20 {
            arena.give_f64(Vec::with_capacity(8));
        }
        assert!(arena.f64_bufs.len() <= MAX_CACHED_PER_VARIANT);
    }

    #[test]
    fn config_mismatch_constructs_fresh() {
        let mut arena = ThreadArena::new();
        arena.give_standard(StandardMwu::new(4, StandardConfig::default()));
        // A different k must not reuse the cached 4-arm instance.
        let alg = arena.take_standard(8, StandardConfig::default());
        assert_eq!(alg.num_arms(), 8);
    }
}
