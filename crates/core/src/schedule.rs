//! Learning-rate schedules.
//!
//! The paper fixes a constant learning rate per run (η ≤ 1/2, Fig. 1), but
//! notes in §VI that "each algorithm has multiple interacting parameters
//! (e.g., learning rate, iteration limit, ...)" and calls for characterizing
//! them. [`LearningRate`] supports the constant schedule used in the paper's
//! experiments plus two decaying schedules used by our ablation benches.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule η(t), with t the 1-based iteration index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LearningRate {
    /// η(t) = η₀ (the paper's setting).
    Constant(f64),
    /// η(t) = η₀ / √t — the anytime schedule from the online-learning
    /// literature; trades convergence speed for robustness to noise.
    InverseSqrt(f64),
    /// η(t) = min(η₀, √(ln k / t)) — the theory-optimal horizon-free rate
    /// for k options (Arora–Hazan–Kale §3.1 specialized to unknown T).
    TheoryOptimal {
        /// Ceiling η₀ (also the early-iteration rate).
        eta0: f64,
        /// Number of options k.
        k: usize,
    },
}

impl LearningRate {
    /// Constant schedule at the classic η = 1/2 ceiling.
    pub fn half() -> Self {
        LearningRate::Constant(0.5)
    }

    /// Evaluate η(t) for 1-based iteration `t`. Always in `(0, 1/2]` for
    /// valid configurations.
    pub fn at(&self, t: usize) -> f64 {
        let t = t.max(1) as f64;
        match *self {
            LearningRate::Constant(e) => e,
            LearningRate::InverseSqrt(e0) => e0 / t.sqrt(),
            LearningRate::TheoryOptimal { eta0, k } => {
                let lnk = (k.max(2) as f64).ln();
                eta0.min((lnk / t).sqrt())
            }
        }
    }

    /// Validate that the schedule respects the MWU constraint η ≤ 1/2 at
    /// every iteration (schedules here are non-increasing, so checking t=1
    /// suffices).
    pub fn is_valid(&self) -> bool {
        let e1 = self.at(1);
        e1 > 0.0 && e1 <= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LearningRate::Constant(0.25);
        assert_eq!(s.at(1), 0.25);
        assert_eq!(s.at(1000), 0.25);
        assert!(s.is_valid());
    }

    #[test]
    fn inverse_sqrt_decays() {
        let s = LearningRate::InverseSqrt(0.5);
        assert_eq!(s.at(1), 0.5);
        assert!((s.at(4) - 0.25).abs() < 1e-12);
        assert!(s.at(100) < s.at(10));
        assert!(s.is_valid());
    }

    #[test]
    fn theory_optimal_caps_early_then_decays() {
        let s = LearningRate::TheoryOptimal { eta0: 0.5, k: 64 };
        assert_eq!(s.at(1), 0.5); // sqrt(ln 64 / 1) > 0.5, so capped
        let late = s.at(10_000);
        assert!(late < 0.05);
        assert!(s.is_valid());
    }

    #[test]
    fn zero_iteration_treated_as_one() {
        let s = LearningRate::InverseSqrt(0.5);
        assert_eq!(s.at(0), s.at(1));
    }

    #[test]
    fn invalid_rates_detected() {
        assert!(!LearningRate::Constant(0.75).is_valid());
        assert!(!LearningRate::Constant(0.0).is_valid());
    }
}
