//! Convergence criteria for the three MWU variants (paper §IV-C).
//!
//! > "Convergence is defined by the probability of the highest weight option
//! > at each time step. For Standard and Slate, this was defined by a
//! > tolerance of 1e-5 relative to the maximum possible. For Distributed, a
//! > threshold was set to 30% of the population choosing the same option."
//!
//! For Standard and Slate we read this as a **stabilization** criterion on
//! the leader's probability trajectory: the run has converged once the
//! probability of the highest-weight option changes by less than the
//! tolerance (relative to the maximum possible share, i.e. 1) for a window
//! of consecutive update cycles. A strict "leader share ≥ 1 − 1e-5" reading
//! is impossible to meet under Bernoulli feedback whenever two options have
//! arbitrarily close values (e.g. adjacent arms of a continuous unimodal
//! curve, or the top order statistics of 16,384 uniforms) — no run would
//! ever converge on the paper's larger instances, contradicting Tables
//! II–IV. The strict reading is retained as
//! [`ConvergenceCriterion::WithinToleranceOfMax`] for the ablation bench.
//!
//! The criteria are factored out of the algorithms so the harness can also
//! evaluate runs under alternative thresholds.

use serde::{Deserialize, Serialize};

/// The paper's default tolerance for Standard and Slate.
pub const DEFAULT_TOLERANCE: f64 = 1e-5;

/// Consecutive quiet update cycles required by the stabilization criterion.
pub const DEFAULT_STABILITY_WINDOW: usize = 5;

/// The paper's default population-share threshold for Distributed.
pub const DEFAULT_POPULATION_SHARE: f64 = 0.30;

/// A convergence rule over the leader's share trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConvergenceCriterion {
    /// Converged when `leader_share ≥ max_possible − tolerance`.
    ///
    /// `max_possible` is 1 for Standard; for Slate the exploration floor
    /// γ and the weight cap bound the leader's selection probability away
    /// from 1, so the algorithm supplies its own ceiling.
    WithinToleranceOfMax {
        /// Absolute tolerance below the ceiling.
        tolerance: f64,
        /// The maximum share the algorithm can ever place on one option.
        max_possible: f64,
    },
    /// Converged when the leader's share has changed by less than
    /// `tolerance` per step for `window` consecutive steps (the default
    /// Standard/Slate criterion; see module docs).
    LeaderShareStabilized {
        /// Maximum per-step change that still counts as quiet.
        tolerance: f64,
        /// Required quiet-streak length.
        window: usize,
    },
    /// Converged when `leader_share ≥ share` (Distributed: 30 % of the
    /// population holding the same option).
    PopulationShare {
        /// Required fraction of the population on one option.
        share: f64,
    },
}

impl ConvergenceCriterion {
    /// Standard's criterion with the paper's defaults.
    pub fn standard_default() -> Self {
        ConvergenceCriterion::LeaderShareStabilized {
            tolerance: DEFAULT_TOLERANCE,
            window: DEFAULT_STABILITY_WINDOW,
        }
    }

    /// Slate's criterion: the leader's slate-inclusion probability within
    /// tolerance of its saturation ceiling (`max_possible`, normally 1).
    /// Reachable even among near-tied options because up to `s` options can
    /// saturate the 1/s weight cap simultaneously.
    pub fn slate_default(max_possible: f64) -> Self {
        ConvergenceCriterion::WithinToleranceOfMax {
            tolerance: DEFAULT_TOLERANCE,
            max_possible,
        }
    }

    /// Distributed's criterion with the paper's 30 % threshold.
    pub fn distributed_default() -> Self {
        ConvergenceCriterion::PopulationShare {
            share: DEFAULT_POPULATION_SHARE,
        }
    }

    /// Does a single observation satisfy a *memoryless* criterion? For
    /// [`ConvergenceCriterion::LeaderShareStabilized`] this returns false —
    /// stabilization needs the trajectory, which [`ConvergenceState`]
    /// tracks.
    pub fn is_met(&self, leader_share: f64) -> bool {
        match *self {
            ConvergenceCriterion::WithinToleranceOfMax {
                tolerance,
                max_possible,
            } => leader_share >= max_possible - tolerance,
            ConvergenceCriterion::LeaderShareStabilized { .. } => false,
            ConvergenceCriterion::PopulationShare { share } => leader_share >= share,
        }
    }
}

/// Tracks convergence over a run: first iteration at which the criterion
/// held, plus whether it currently holds.
///
/// The paper declares convergence at the *first* iteration where the
/// criterion is met; stochastic feedback can later push the share back below
/// the threshold, so we latch the first-hit iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceState {
    criterion: ConvergenceCriterion,
    first_met_at: Option<usize>,
    currently_met: bool,
    last_share: Option<f64>,
    quiet_streak: usize,
}

impl ConvergenceState {
    /// New tracker for a criterion.
    pub fn new(criterion: ConvergenceCriterion) -> Self {
        Self {
            criterion,
            first_met_at: None,
            currently_met: false,
            last_share: None,
            quiet_streak: 0,
        }
    }

    /// Record the leader share after iteration `iter` (1-based).
    pub fn observe(&mut self, iter: usize, leader_share: f64) {
        self.currently_met = match self.criterion {
            ConvergenceCriterion::LeaderShareStabilized { tolerance, window } => {
                if let Some(last) = self.last_share {
                    if (leader_share - last).abs() < tolerance {
                        self.quiet_streak += 1;
                    } else {
                        self.quiet_streak = 0;
                    }
                }
                self.last_share = Some(leader_share);
                self.quiet_streak >= window
            }
            _ => self.criterion.is_met(leader_share),
        };
        if self.currently_met && self.first_met_at.is_none() {
            self.first_met_at = Some(iter);
        }
    }

    /// Iteration at which convergence was first reached, if ever.
    pub fn first_met_at(&self) -> Option<usize> {
        self.first_met_at
    }

    /// Whether the most recent observation satisfied the criterion.
    pub fn currently_met(&self) -> bool {
        self.currently_met
    }

    /// Has the criterion ever been satisfied?
    pub fn has_converged(&self) -> bool {
        self.first_met_at.is_some()
    }

    /// The criterion being tracked.
    pub fn criterion(&self) -> ConvergenceCriterion {
        self.criterion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_criterion() {
        let c = ConvergenceCriterion::WithinToleranceOfMax {
            tolerance: DEFAULT_TOLERANCE,
            max_possible: 1.0,
        };
        assert!(!c.is_met(0.9999));
        assert!(c.is_met(1.0 - 1e-5));
        assert!(c.is_met(1.0));
    }

    #[test]
    fn strict_criterion_with_custom_ceiling() {
        let c = ConvergenceCriterion::WithinToleranceOfMax {
            tolerance: 1e-5,
            max_possible: 0.96,
        };
        assert!(c.is_met(0.96));
        assert!(c.is_met(0.96 - 0.5e-5));
        assert!(!c.is_met(0.9599));
    }

    #[test]
    fn stabilization_requires_quiet_window() {
        let mut s = ConvergenceState::new(ConvergenceCriterion::LeaderShareStabilized {
            tolerance: 1e-3,
            window: 3,
        });
        // First observation establishes the baseline; no streak yet.
        s.observe(1, 0.50);
        assert!(!s.has_converged());
        // Three quiet steps in a row → converged at step 4.
        s.observe(2, 0.5005);
        s.observe(3, 0.5009);
        s.observe(4, 0.5011);
        assert_eq!(s.first_met_at(), Some(4));
    }

    #[test]
    fn stabilization_streak_resets_on_jump() {
        let mut s = ConvergenceState::new(ConvergenceCriterion::LeaderShareStabilized {
            tolerance: 1e-3,
            window: 2,
        });
        s.observe(1, 0.5);
        s.observe(2, 0.5001); // quiet (streak 1)
        s.observe(3, 0.6); // jump — streak resets
        assert!(!s.has_converged());
        s.observe(4, 0.6001);
        s.observe(5, 0.6002);
        assert_eq!(s.first_met_at(), Some(5));
    }

    #[test]
    fn stabilized_is_met_is_trajectory_based() {
        // The memoryless check can never pass for stabilization.
        let c = ConvergenceCriterion::standard_default();
        assert!(!c.is_met(1.0));
    }

    #[test]
    fn population_share_criterion() {
        let c = ConvergenceCriterion::distributed_default();
        assert!(!c.is_met(0.29));
        assert!(c.is_met(0.30));
        assert!(c.is_met(0.9));
    }

    #[test]
    fn state_latches_first_hit() {
        let mut s = ConvergenceState::new(ConvergenceCriterion::PopulationShare { share: 0.3 });
        s.observe(1, 0.1);
        assert!(!s.has_converged());
        s.observe(2, 0.35);
        assert_eq!(s.first_met_at(), Some(2));
        // Dips below afterwards do not erase the first hit.
        s.observe(3, 0.2);
        assert!(!s.currently_met());
        assert_eq!(s.first_met_at(), Some(2));
        // Later hits do not overwrite.
        s.observe(4, 0.4);
        assert_eq!(s.first_met_at(), Some(2));
    }
}
