//! Alternative bandit algorithms for context and ablation.
//!
//! The paper situates MWU among online-learning methods that "have been
//! discovered independently in multiple fields, for example as 'fictitious
//! play' in game theory and as 'winnow' or 'hedge' in machine learning"
//! (§V-A). This module provides:
//!
//! * [`HedgeMwu`] — the gains-form exponential-weights algorithm (Freund &
//!   Schapire's Hedge): `w_i ← w_i·exp(η·g_i)` under full information.
//!   Equivalent to Standard up to the gain/cost parameterization; included
//!   so the classic realization is directly runnable.
//! * [`EpsilonGreedy`] — the simplest sequential bandit strategy: one agent,
//!   one pull per cycle, explore uniformly with probability ε.
//! * [`Ucb1`] — Auer et al.'s upper-confidence-bound strategy, the standard
//!   frequentist sequential baseline.
//!
//! The sequential strategies occupy **one CPU per cycle** — they are the
//! "no parallelism" corner of the paper's design space, and the
//! `bandit_baselines` experiment binary uses them to show what the parallel
//! MWU realizations buy.

use crate::convergence::{ConvergenceCriterion, ConvergenceState};
use crate::cost::Variant;
use crate::schedule::LearningRate;
use crate::weights::WeightVector;
use crate::{CommStats, MwuAlgorithm};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`HedgeMwu`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgeConfig {
    /// Learning rate η for the exponential gain update.
    pub eta: LearningRate,
    /// Stabilization tolerance (see `convergence` module).
    pub tolerance: f64,
    /// Stabilization window.
    pub stability_window: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            eta: LearningRate::Constant(0.5),
            tolerance: crate::convergence::DEFAULT_TOLERANCE,
            stability_window: crate::convergence::DEFAULT_STABILITY_WINDOW,
        }
    }
}

/// Hedge: full-information exponential weights over gains.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HedgeMwu {
    weights: WeightVector,
    config: HedgeConfig,
    convergence: ConvergenceState,
    comm: CommStats,
    iteration: usize,
    plan_buf: Vec<usize>,
}

impl HedgeMwu {
    /// Create over `k` options.
    ///
    /// # Panics
    /// Panics if `k == 0` or η is invalid.
    pub fn new(k: usize, config: HedgeConfig) -> Self {
        assert!(k > 0);
        assert!(config.eta.is_valid());
        Self {
            weights: WeightVector::uniform(k),
            config,
            convergence: ConvergenceState::new(ConvergenceCriterion::LeaderShareStabilized {
                tolerance: config.tolerance,
                window: config.stability_window,
            }),
            comm: CommStats::default(),
            iteration: 0,
            plan_buf: (0..k).collect(),
        }
    }

    /// Completed update cycles.
    pub fn iteration(&self) -> usize {
        self.iteration
    }
}

impl MwuAlgorithm for HedgeMwu {
    fn num_arms(&self) -> usize {
        self.weights.len()
    }

    fn plan(&mut self, _rng: &mut SmallRng) -> &[usize] {
        &self.plan_buf
    }

    fn update(&mut self, rewards: &[f64], _rng: &mut SmallRng) {
        let k = self.weights.len();
        assert_eq!(rewards.len(), k, "Hedge expects one reward per option");
        self.iteration += 1;
        let eta = self.config.eta.at(self.iteration);
        self.weights
            .scale_all(|i| (eta * rewards[i].clamp(0.0, 1.0)).exp());
        self.comm.record_round(k, 2 * k as u64);
        self.convergence
            .observe(self.iteration, self.weights.max_probability());
    }

    fn leader(&self) -> usize {
        self.weights.argmax()
    }

    fn leader_share(&self) -> f64 {
        self.weights.max_probability()
    }

    fn has_converged(&self) -> bool {
        self.convergence.has_converged()
    }

    fn cpus_per_iteration(&self) -> usize {
        self.weights.len()
    }

    fn probabilities(&self) -> Vec<f64> {
        self.weights.probabilities().to_vec()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        self.weights.probabilities_into(out);
    }

    fn comm_stats(&self) -> CommStats {
        self.comm
    }

    fn name(&self) -> &'static str {
        "hedge"
    }

    fn variant(&self) -> Variant {
        Variant::Standard
    }
}

/// Shared state of the sequential (one pull per cycle) strategies.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct SequentialState {
    pulls: Vec<u64>,
    sums: Vec<f64>,
    total: u64,
    last_arm: usize,
    plan_buf: [usize; 1],
    convergence: ConvergenceState,
    iteration: usize,
}

impl SequentialState {
    fn new(k: usize, share_threshold: f64) -> Self {
        Self {
            pulls: vec![0; k],
            sums: vec![0.0; k],
            total: 0,
            last_arm: 0,
            plan_buf: [0],
            convergence: ConvergenceState::new(ConvergenceCriterion::PopulationShare {
                share: share_threshold,
            }),
            iteration: 0,
        }
    }

    fn mean(&self, arm: usize) -> f64 {
        if self.pulls[arm] == 0 {
            0.0
        } else {
            self.sums[arm] / self.pulls[arm] as f64
        }
    }

    fn leader(&self) -> usize {
        let mut best = 0;
        for i in 1..self.pulls.len() {
            if self.mean(i) > self.mean(best) {
                best = i;
            }
        }
        best
    }

    /// Fraction of all pulls spent on the current leader — the sequential
    /// analogue of the population share.
    fn leader_share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.pulls[self.leader()] as f64 / self.total as f64
        }
    }

    fn record(&mut self, arm: usize, reward: f64) {
        self.pulls[arm] += 1;
        self.sums[arm] += reward;
        self.total += 1;
        self.iteration += 1;
        // The pull-share criterion is meaningless before the strategy has
        // sampled broadly: gate it on a 10-pulls-per-arm warm-up (otherwise
        // the very first pull trivially owns 100 % of the history).
        if self.total >= 10 * self.pulls.len() as u64 {
            let share = self.leader_share();
            self.convergence.observe(self.iteration, share);
        }
    }
}

/// ε-greedy: explore a uniform arm with probability ε, otherwise pull the
/// empirically-best arm. One pull per update cycle.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EpsilonGreedy {
    epsilon: f64,
    state: SequentialState,
}

impl EpsilonGreedy {
    /// Create over `k` arms with exploration rate ε (paper-comparable
    /// default: 0.05, the same exploration probability as μ and γ).
    ///
    /// # Panics
    /// Panics if `k == 0` or ε ∉ [0, 1].
    pub fn new(k: usize, epsilon: f64) -> Self {
        assert!(k > 0);
        assert!((0.0..=1.0).contains(&epsilon));
        Self {
            epsilon,
            // Converged once 80 % of pulls concentrate on the leader.
            state: SequentialState::new(k, 0.80),
        }
    }
}

impl MwuAlgorithm for EpsilonGreedy {
    fn num_arms(&self) -> usize {
        self.state.pulls.len()
    }

    fn plan(&mut self, rng: &mut SmallRng) -> &[usize] {
        let k = self.state.pulls.len();
        let arm = if self.state.total < k as u64 {
            // Initial round-robin so every arm has one sample.
            self.state.total as usize
        } else if rng.gen::<f64>() < self.epsilon {
            rng.gen_range(0..k)
        } else {
            self.state.leader()
        };
        self.state.last_arm = arm;
        self.state.plan_buf = [arm];
        &self.state.plan_buf
    }

    fn update(&mut self, rewards: &[f64], _rng: &mut SmallRng) {
        assert_eq!(rewards.len(), 1, "sequential strategy pulls one arm");
        self.state
            .record(self.state.last_arm, rewards[0].clamp(0.0, 1.0));
    }

    fn leader(&self) -> usize {
        self.state.leader()
    }

    fn leader_share(&self) -> f64 {
        self.state.leader_share()
    }

    fn has_converged(&self) -> bool {
        self.state.convergence.has_converged()
    }

    fn cpus_per_iteration(&self) -> usize {
        1
    }

    fn probabilities(&self) -> Vec<f64> {
        let total = self.state.total.max(1) as f64;
        self.state.pulls.iter().map(|&p| p as f64 / total).collect()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        let total = self.state.total.max(1) as f64;
        out.clear();
        out.extend(self.state.pulls.iter().map(|&p| p as f64 / total));
    }

    fn comm_stats(&self) -> CommStats {
        CommStats::default() // a single agent communicates with no one
    }

    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }

    fn variant(&self) -> Variant {
        Variant::Standard
    }
}

/// UCB1 (Auer, Cesa-Bianchi & Fischer): pull the arm maximizing
/// `mean + √(2 ln t / n_i)`. One pull per update cycle.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ucb1 {
    state: SequentialState,
}

impl Ucb1 {
    /// Create over `k` arms.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        Self {
            state: SequentialState::new(k, 0.80),
        }
    }

    fn ucb(&self, arm: usize) -> f64 {
        let n = self.state.pulls[arm];
        if n == 0 {
            return f64::INFINITY;
        }
        let t = self.state.total.max(1) as f64;
        self.state.mean(arm) + (2.0 * t.ln() / n as f64).sqrt()
    }
}

impl MwuAlgorithm for Ucb1 {
    fn num_arms(&self) -> usize {
        self.state.pulls.len()
    }

    fn plan(&mut self, _rng: &mut SmallRng) -> &[usize] {
        let k = self.state.pulls.len();
        let mut best = 0;
        let mut best_v = f64::NEG_INFINITY;
        for i in 0..k {
            let v = self.ucb(i);
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        self.state.last_arm = best;
        self.state.plan_buf = [best];
        &self.state.plan_buf
    }

    fn update(&mut self, rewards: &[f64], _rng: &mut SmallRng) {
        assert_eq!(rewards.len(), 1, "sequential strategy pulls one arm");
        self.state
            .record(self.state.last_arm, rewards[0].clamp(0.0, 1.0));
    }

    fn leader(&self) -> usize {
        self.state.leader()
    }

    fn leader_share(&self) -> f64 {
        self.state.leader_share()
    }

    fn has_converged(&self) -> bool {
        self.state.convergence.has_converged()
    }

    fn cpus_per_iteration(&self) -> usize {
        1
    }

    fn probabilities(&self) -> Vec<f64> {
        let total = self.state.total.max(1) as f64;
        self.state.pulls.iter().map(|&p| p as f64 / total).collect()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        let total = self.state.total.max(1) as f64;
        out.clear();
        out.extend(self.state.pulls.iter().map(|&p| p as f64 / total));
    }

    fn comm_stats(&self) -> CommStats {
        CommStats::default()
    }

    fn name(&self) -> &'static str {
        "ucb1"
    }

    fn variant(&self) -> Variant {
        Variant::Standard
    }
}

/// EXP3 (Auer et al., "The nonstochastic multiarmed bandit problem"): the
/// *bandit-feedback* member of the exponential-weights family — exactly
/// the algorithm Slate reduces to at slate size 1. One pull per cycle,
/// importance-weighted update of only the pulled arm.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Exp3 {
    weights: WeightVector,
    gamma: f64,
    eta: f64,
    last_arm: usize,
    last_p: f64,
    plan_buf: [usize; 1],
    convergence: ConvergenceState,
    iteration: usize,
    pulls: Vec<u64>,
    total: u64,
}

impl Exp3 {
    /// Create over `k` arms with exploration rate γ (paper-comparable
    /// default 0.05). η is set to γ/k, the standard anytime-safe choice
    /// that bounds single-step exponents by 1.
    ///
    /// # Panics
    /// Panics if `k == 0` or γ ∉ (0, 1).
    pub fn new(k: usize, gamma: f64) -> Self {
        assert!(k > 0);
        assert!(gamma > 0.0 && gamma < 1.0);
        Self {
            weights: WeightVector::uniform(k),
            gamma,
            eta: gamma / k as f64,
            last_arm: 0,
            last_p: 1.0 / k as f64,
            plan_buf: [0],
            convergence: ConvergenceState::new(ConvergenceCriterion::PopulationShare {
                share: 0.80,
            }),
            iteration: 0,
            pulls: vec![0; k],
            total: 0,
        }
    }

    /// Selection probability of arm `i`: `(1−γ)·ŵ_i + γ/k`.
    fn selection_p(&self, i: usize) -> f64 {
        (1.0 - self.gamma) * self.weights.get(i) + self.gamma / self.weights.len() as f64
    }
}

impl MwuAlgorithm for Exp3 {
    fn num_arms(&self) -> usize {
        self.weights.len()
    }

    fn plan(&mut self, rng: &mut SmallRng) -> &[usize] {
        // Sample the γ-mixture without materializing it — same draw, same
        // accumulated terms as `mix_uniform(γ).sample(rng)`, zero alloc.
        let arm = self.weights.sample_mixed(self.gamma, rng);
        self.last_arm = arm;
        self.last_p = self.selection_p(arm);
        self.plan_buf = [arm];
        &self.plan_buf
    }

    fn update(&mut self, rewards: &[f64], _rng: &mut SmallRng) {
        assert_eq!(rewards.len(), 1, "EXP3 pulls one arm per cycle");
        self.iteration += 1;
        self.total += 1;
        self.pulls[self.last_arm] += 1;
        let g_hat = rewards[0].clamp(0.0, 1.0) / self.last_p.max(1e-12);
        self.weights
            .scale_one(self.last_arm, (self.eta * g_hat).exp());
        // Convergence: like the other sequential strategies, 80 % of pulls
        // concentrated on the leader, after a warm-up.
        if self.total >= 10 * self.weights.len() as u64 {
            self.convergence
                .observe(self.iteration, self.leader_share());
        }
    }

    fn leader(&self) -> usize {
        self.weights.argmax()
    }

    fn leader_share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.pulls[self.weights.argmax()] as f64 / self.total as f64
        }
    }

    fn has_converged(&self) -> bool {
        self.convergence.has_converged()
    }

    fn cpus_per_iteration(&self) -> usize {
        1
    }

    fn probabilities(&self) -> Vec<f64> {
        (0..self.weights.len())
            .map(|i| self.selection_p(i))
            .collect()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.weights.len()).map(|i| self.selection_p(i)));
    }

    fn comm_stats(&self) -> CommStats {
        CommStats::default()
    }

    fn name(&self) -> &'static str {
        "exp3"
    }

    fn variant(&self) -> Variant {
        Variant::Slate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::{Bandit, ValueBandit};
    use rand::SeedableRng;

    fn drive<A: MwuAlgorithm>(alg: &mut A, bandit: &mut ValueBandit, rounds: usize, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..rounds {
            let plan = alg.plan(&mut rng).to_vec();
            let rewards: Vec<f64> = plan.iter().map(|&a| bandit.pull(a, &mut rng)).collect();
            alg.update(&rewards, &mut rng);
            if alg.has_converged() {
                break;
            }
        }
    }

    #[test]
    fn hedge_finds_best_arm() {
        let mut alg = HedgeMwu::new(8, HedgeConfig::default());
        let mut bandit = ValueBandit::bernoulli(vec![0.1, 0.2, 0.3, 0.9, 0.2, 0.1, 0.3, 0.4]);
        drive(&mut alg, &mut bandit, 5000, 1);
        assert_eq!(alg.leader(), 3);
        assert!(alg.has_converged());
    }

    #[test]
    fn hedge_matches_standard_cpu_profile() {
        let alg = HedgeMwu::new(100, HedgeConfig::default());
        assert_eq!(alg.cpus_per_iteration(), 100);
        assert_eq!(alg.name(), "hedge");
    }

    #[test]
    fn epsilon_greedy_round_robins_then_exploits() {
        let mut alg = EpsilonGreedy::new(5, 0.05);
        let mut rng = SmallRng::seed_from_u64(2);
        // First k plans cover every arm exactly once.
        let mut seen = [false; 5];
        for _ in 0..5 {
            let arm = alg.plan(&mut rng)[0];
            assert!(!seen[arm]);
            seen[arm] = true;
            alg.update(&[0.5], &mut rng);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn epsilon_greedy_converges_to_best() {
        let mut alg = EpsilonGreedy::new(6, 0.05);
        let mut bandit = ValueBandit::bernoulli(vec![0.2, 0.3, 0.85, 0.3, 0.2, 0.1]);
        drive(&mut alg, &mut bandit, 20_000, 3);
        assert_eq!(alg.leader(), 2);
        assert!(alg.has_converged());
        assert!(alg.leader_share() >= 0.8);
    }

    #[test]
    fn ucb1_converges_to_best_and_uses_one_cpu() {
        let mut alg = Ucb1::new(6);
        let mut bandit = ValueBandit::bernoulli(vec![0.2, 0.3, 0.85, 0.3, 0.2, 0.1]);
        drive(&mut alg, &mut bandit, 20_000, 4);
        assert_eq!(alg.leader(), 2);
        assert_eq!(alg.cpus_per_iteration(), 1);
    }

    #[test]
    fn ucb1_pulls_every_arm_first() {
        let mut alg = Ucb1::new(4);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = vec![false; 4];
        for _ in 0..4 {
            let arm = alg.plan(&mut rng)[0];
            seen[arm] = true;
            alg.update(&[0.0], &mut rng);
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn sequential_strategies_report_zero_communication() {
        let mut alg = Ucb1::new(4);
        let mut bandit = ValueBandit::bernoulli(vec![0.5; 4]);
        drive(&mut alg, &mut bandit, 100, 6);
        assert_eq!(alg.comm_stats().messages, 0);
        assert_eq!(alg.comm_stats().peak_congestion, 0);
    }

    #[test]
    fn probabilities_are_pull_fractions() {
        let mut alg = EpsilonGreedy::new(3, 0.0);
        let mut bandit = ValueBandit::exact(vec![0.1, 0.9, 0.1]);
        drive(&mut alg, &mut bandit, 200, 7);
        let p = alg.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > p[0] && p[1] > p[2]);
    }

    #[test]
    fn exp3_converges_to_best_arm() {
        let mut alg = Exp3::new(6, 0.05);
        let mut bandit = ValueBandit::bernoulli(vec![0.2, 0.3, 0.85, 0.3, 0.2, 0.1]);
        drive(&mut alg, &mut bandit, 100_000, 11);
        assert_eq!(alg.leader(), 2);
        assert_eq!(alg.cpus_per_iteration(), 1);
    }

    #[test]
    fn exp3_probabilities_are_a_distribution_with_floor() {
        let mut alg = Exp3::new(8, 0.1);
        let mut bandit = ValueBandit::bernoulli(vec![0.5; 8]);
        drive(&mut alg, &mut bandit, 500, 12);
        let p = alg.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Exploration floor γ/k.
        assert!(p.iter().all(|&x| x >= 0.1 / 8.0 - 1e-12));
    }

    #[test]
    fn exp3_importance_weights_stay_bounded() {
        // η = γ/k and p ≥ γ/k bound the exponent at 1 — weights never blow
        // up even under adversarially lucky streaks.
        let mut alg = Exp3::new(4, 0.05);
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..20_000 {
            let _ = alg.plan(&mut rng);
            alg.update(&[1.0], &mut rng);
        }
        assert!(alg.probabilities().iter().all(|p| p.is_finite()));
    }
}
