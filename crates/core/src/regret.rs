//! Regret tracking: the online-learning quantity behind the paper's
//! convergence claims.
//!
//! MWU "is optimal (maximizes cumulative gain) in the asymptotic case"
//! (§I); the convergence entries of Table I are translations of regret
//! bounds ("convergence of Slate is presented in terms of regret", §II-C).
//! This module instruments a run with its **policy regret**: after each
//! update cycle, `Σ_i p_i·(v* − v_i)` under the algorithm's current
//! selection distribution `p` ([`MwuAlgorithm::probabilities`]). Policy
//! regret is the right cross-algorithm quantity here because the
//! full-information variants *evaluate* every arm every cycle by design —
//! their evaluation-plan regret is constant — while what improves over
//! time is the distribution they would act on.

use crate::bandit::Bandit;
use crate::run::{RunConfig, RunOutcome};
use crate::trace::{
    CommDelta, ConvergenceEvent, IterationEvent, NullObserver, Observer, RewardSummary,
    RunStartEvent,
};
use crate::MwuAlgorithm;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-cycle policy regret of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretCurve {
    /// Policy regret `Σ p_i (v* − v_i)` after each update cycle.
    pub per_cycle: Vec<f64>,
    /// Total probes issued.
    pub probes: u64,
    /// Sum of per-cycle policy regret (the cumulative regret a decision-
    /// maker following the policy one decision per cycle would incur).
    pub total: f64,
}

impl RegretCurve {
    /// Running mean of the per-cycle policy regret — the anytime-normalized
    /// quantity used for cross-algorithm comparison.
    pub fn running_mean(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.per_cycle.len());
        let mut acc = 0.0;
        for (i, r) in self.per_cycle.iter().enumerate() {
            acc += r;
            out.push(acc / (i + 1) as f64);
        }
        out
    }

    /// Mean per-probe regret over the final quarter of the run — the
    /// "converged" regret level.
    pub fn tail_mean(&self) -> f64 {
        let n = self.per_cycle.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.per_cycle[(3 * n) / 4..];
        tail.iter().sum::<f64>() / tail.len().max(1) as f64
    }
}

/// Run `alg` against `bandit` for exactly `config.max_iterations` cycles
/// (ignoring convergence — regret curves need the full horizon), recording
/// the policy regret after every update.
pub fn run_with_regret<A: MwuAlgorithm, B: Bandit>(
    alg: &mut A,
    bandit: &mut B,
    config: &RunConfig,
) -> RegretCurve {
    run_with_regret_observed(alg, bandit, config, &mut NullObserver)
}

/// [`run_with_regret`] with run telemetry delivered to `observer`. Emits
/// the same event sequence as
/// [`crate::run::run_to_convergence_observed`] (run header, one event per
/// cycle, first-convergence marker, run footer); with [`NullObserver`] the
/// telemetry path is compiled out.
pub fn run_with_regret_observed<A: MwuAlgorithm, B: Bandit, O: Observer>(
    alg: &mut A,
    bandit: &mut B,
    config: &RunConfig,
    observer: &mut O,
) -> RegretCurve {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let best = bandit.best_value();
    let mut per_cycle = Vec::with_capacity(config.max_iterations);
    let mut probes: u64 = 0;
    let mut total = 0.0;
    let mut rewards: Vec<f64> = Vec::new();
    // Reused probability snapshot: the per-cycle policy-regret sum needs the
    // full vector every cycle, so this buffer is on the hot path even when
    // no observer is attached.
    let mut probs: Vec<f64> = Vec::new();
    let mut convergence_reported = false;
    let start_pulls = bandit.pulls();

    if observer.enabled() {
        observer.on_run_start(RunStartEvent {
            algorithm: alg.name(),
            num_arms: alg.num_arms(),
            cpus_per_iteration: alg.cpus_per_iteration(),
            seed: config.seed,
            max_iterations: config.max_iterations,
        });
    }

    for cycle in 0..config.max_iterations {
        let comm_before = if observer.enabled() {
            alg.comm_stats()
        } else {
            crate::CommStats::default()
        };
        let plan = alg.plan(&mut rng);
        rewards.clear();
        rewards.reserve(plan.len());
        probes += plan.len() as u64;
        for &arm in plan {
            rewards.push(bandit.pull(arm, &mut rng));
        }
        alg.update(&rewards, &mut rng);

        alg.probabilities_into(&mut probs);
        let cycle_regret: f64 = probs
            .iter()
            .enumerate()
            .map(|(i, &pi)| pi * (best - bandit.expected_value(i)))
            .sum();
        total += cycle_regret;
        per_cycle.push(cycle_regret);

        if observer.enabled() {
            observer.on_iteration(IterationEvent {
                iteration: cycle + 1,
                leader: alg.leader(),
                leader_share: alg.leader_share(),
                entropy: crate::trace::entropy(&probs),
                comm: CommDelta::between(&comm_before, &alg.comm_stats()),
                reward: RewardSummary::of(&rewards),
            });
            if alg.has_converged() && !convergence_reported {
                convergence_reported = true;
                observer.on_convergence(ConvergenceEvent {
                    iteration: cycle + 1,
                    leader: alg.leader(),
                    leader_share: alg.leader_share(),
                });
            }
        }
    }

    if observer.enabled() {
        observer.on_run_end(RunOutcome {
            algorithm: alg.name(),
            iterations: per_cycle.len(),
            converged: alg.has_converged(),
            leader: alg.leader(),
            leader_share: alg.leader_share(),
            cpu_iterations: per_cycle.len() as u64 * alg.cpus_per_iteration() as u64,
            pulls: bandit.pulls() - start_pulls,
            comm: alg.comm_stats(),
            cpus_per_iteration: alg.cpus_per_iteration(),
        });
    }

    RegretCurve {
        per_cycle,
        probes,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::ValueBandit;
    use crate::standard::{StandardConfig, StandardMwu};

    fn curve(seed: u64, cycles: usize) -> RegretCurve {
        let mut alg = StandardMwu::new(8, StandardConfig::default());
        let mut bandit = ValueBandit::bernoulli(vec![0.1, 0.2, 0.3, 0.9, 0.2, 0.1, 0.3, 0.4]);
        let cfg = RunConfig {
            max_iterations: cycles,
            seed,
            run_past_convergence: true,
        };
        run_with_regret(&mut alg, &mut bandit, &cfg)
    }

    #[test]
    fn regret_declines_as_learning_proceeds() {
        let c = curve(3, 400);
        assert_eq!(c.per_cycle.len(), 400);
        let early: f64 = c.per_cycle[..50].iter().sum::<f64>() / 50.0;
        let late = c.tail_mean();
        assert!(
            late < early / 2.0,
            "late regret {late} not well below early {early}"
        );
    }

    #[test]
    fn running_mean_is_monotone_where_regret_vanishes() {
        let c = curve(4, 300);
        let rm = c.running_mean();
        assert_eq!(rm.len(), 300);
        // The running mean ends below its early value.
        assert!(rm[299] < rm[20]);
    }

    #[test]
    fn totals_are_consistent() {
        let c = curve(5, 100);
        let reconstructed: f64 = c.per_cycle.iter().sum();
        assert!((c.total - reconstructed).abs() < 1e-9);
        // Standard issues k probes per cycle.
        assert_eq!(c.probes, 800);
    }

    #[test]
    fn empty_horizon_is_safe() {
        let c = curve(6, 0);
        assert_eq!(c.per_cycle.len(), 0);
        assert_eq!(c.tail_mean(), 0.0);
        assert_eq!(c.total, 0.0);
    }
}
