//! Standard MWU — the weighted-majority algorithm (paper Fig. 1).
//!
//! Standard assumes *full visibility* of the quality of every option on
//! every iteration (§II-B): each of `k` parallel agents is assigned one
//! option, evaluates it, and the shared weight vector is updated globally —
//! a synchronization in which every agent communicates with the (logical)
//! master holding the weights. Communication congestion is therefore `O(n)`
//! with `n = k`, memory is `O(k)`, and convergence takes
//! `O(ln(k)/ε²)` update cycles (Table I).

use crate::convergence::{ConvergenceCriterion, ConvergenceState};
use crate::cost::Variant;
use crate::schedule::LearningRate;
use crate::weights::WeightVector;
use crate::{CommStats, MwuAlgorithm};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Configuration for [`StandardMwu`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StandardConfig {
    /// Learning rate η ≤ 1/2 (Fig. 1 input). Default: the classic η = 1/2,
    /// under which a failed probe halves an option's weight.
    pub eta: LearningRate,
    /// Error threshold ε (paper §IV-B sets 0.05). Only affects the analytic
    /// convergence bound reported by the cost model; the empirical stopping
    /// rule is `tolerance` + `stability_window`.
    pub epsilon: f64,
    /// Convergence tolerance on the leader probability (paper §IV-C: 1e-5).
    pub tolerance: f64,
    /// Quiet-streak length for the stabilization criterion. `0` selects the
    /// strict "leader share ≥ 1 − tolerance" rule instead (ablation only —
    /// see `convergence` module docs for why strict cannot converge on
    /// near-tied instances).
    pub stability_window: usize,
}

impl Default for StandardConfig {
    fn default() -> Self {
        Self {
            eta: LearningRate::half(),
            epsilon: 0.05,
            tolerance: crate::convergence::DEFAULT_TOLERANCE,
            stability_window: crate::convergence::DEFAULT_STABILITY_WINDOW,
        }
    }
}

/// The Standard (weighted-majority) MWU algorithm.
///
/// ```
/// use mwu_core::prelude::*;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut alg = StandardMwu::new(4, StandardConfig::default());
/// let mut bandit = ValueBandit::exact(vec![0.1, 0.2, 0.9, 0.3]);
/// let mut rng = SmallRng::seed_from_u64(0);
/// for _ in 0..200 {
///     let plan = alg.plan(&mut rng).to_vec();
///     let rewards: Vec<f64> =
///         plan.iter().map(|&a| bandit.pull(a, &mut rng)).collect();
///     alg.update(&rewards, &mut rng);
/// }
/// assert_eq!(alg.leader(), 2);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StandardMwu {
    weights: WeightVector,
    config: StandardConfig,
    convergence: ConvergenceState,
    comm: CommStats,
    iteration: usize,
    plan_buf: Vec<usize>,
}

impl StandardMwu {
    /// Create over `k` options.
    ///
    /// # Panics
    /// Panics if `k == 0` or the learning-rate schedule violates η ≤ 1/2.
    pub fn new(k: usize, config: StandardConfig) -> Self {
        assert!(k > 0, "need at least one option");
        assert!(
            config.eta.is_valid(),
            "learning rate must satisfy 0 < eta <= 1/2"
        );
        let criterion = if config.stability_window > 0 {
            ConvergenceCriterion::LeaderShareStabilized {
                tolerance: config.tolerance,
                window: config.stability_window,
            }
        } else {
            ConvergenceCriterion::WithinToleranceOfMax {
                tolerance: config.tolerance,
                max_possible: 1.0,
            }
        };
        Self {
            weights: WeightVector::uniform(k),
            config,
            convergence: ConvergenceState::new(criterion),
            comm: CommStats::default(),
            iteration: 0,
            plan_buf: (0..k).collect(),
        }
    }

    /// Reset to the exact state of a fresh `new(k, config)` while keeping
    /// every buffer's allocation — the [`crate::arena::ThreadArena`] reuse
    /// contract. Trajectories after a reset are bit-identical to a fresh
    /// instance's.
    pub fn reset(&mut self) {
        let k = self.weights.len();
        self.weights.reset_uniform();
        self.convergence = ConvergenceState::new(self.convergence.criterion());
        self.comm = CommStats::default();
        self.iteration = 0;
        self.plan_buf.clear();
        self.plan_buf.extend(0..k);
    }

    /// The current weight vector (normalized).
    pub fn weights(&self) -> &WeightVector {
        &self.weights
    }

    /// Completed update cycles.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The configuration in force.
    pub fn config(&self) -> &StandardConfig {
        &self.config
    }
}

impl MwuAlgorithm for StandardMwu {
    fn num_arms(&self) -> usize {
        self.weights.len()
    }

    /// Full information: every option is evaluated, one agent per option.
    fn plan(&mut self, _rng: &mut SmallRng) -> &[usize] {
        &self.plan_buf
    }

    fn update(&mut self, rewards: &[f64], _rng: &mut SmallRng) {
        let k = self.weights.len();
        assert_eq!(
            rewards.len(),
            k,
            "Standard expects one reward per option per round"
        );
        self.iteration += 1;
        let eta = self.config.eta.at(self.iteration);
        // Fig. 1 penalizes cost multiplicatively: w_i ← w_i·(1−η)^{m(i)},
        // with cost m = 1 − reward ∈ [0, 1]. Bernoulli feedback makes the
        // cost 0 or 1 on almost every update; special-casing those avoids a
        // powf in the hot loop (k multiplications per cycle).
        let base = 1.0 - eta;
        self.weights.scale_all(|i| {
            let cost = 1.0 - crate::sanitize_reward(rewards[i]);
            if cost == 0.0 {
                1.0
            } else if cost == 1.0 {
                base
            } else {
                base.powf(cost)
            }
        });
        // Global synchronization: all k agents report to and hear back from
        // the weight master — congestion k, 2k messages.
        self.comm.record_round(k, 2 * k as u64);
        self.convergence
            .observe(self.iteration, self.weights.max_probability());
    }

    fn leader(&self) -> usize {
        self.weights.argmax()
    }

    fn leader_share(&self) -> f64 {
        self.weights.max_probability()
    }

    fn has_converged(&self) -> bool {
        self.convergence.has_converged()
    }

    fn cpus_per_iteration(&self) -> usize {
        self.weights.len()
    }

    fn probabilities(&self) -> Vec<f64> {
        self.weights.probabilities().to_vec()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        self.weights.probabilities_into(out);
    }

    fn comm_stats(&self) -> CommStats {
        self.comm
    }

    fn name(&self) -> &'static str {
        "standard"
    }

    fn variant(&self) -> Variant {
        Variant::Standard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::{Bandit, ValueBandit};
    use rand::SeedableRng;

    fn drive(alg: &mut StandardMwu, bandit: &mut ValueBandit, rounds: usize, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..rounds {
            let plan = alg.plan(&mut rng).to_vec();
            let rewards: Vec<f64> = plan.iter().map(|&a| bandit.pull(a, &mut rng)).collect();
            alg.update(&rewards, &mut rng);
            if alg.has_converged() {
                break;
            }
        }
    }

    #[test]
    fn plan_covers_every_arm_once() {
        let mut alg = StandardMwu::new(7, StandardConfig::default());
        let mut rng = SmallRng::seed_from_u64(0);
        let plan = alg.plan(&mut rng);
        let mut seen = [false; 7];
        for &a in plan {
            assert!(!seen[a], "arm {a} planned twice");
            seen[a] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn finds_best_arm_noise_free() {
        let mut alg = StandardMwu::new(5, StandardConfig::default());
        let mut bandit = ValueBandit::exact(vec![0.5, 0.2, 0.95, 0.5, 0.9]);
        drive(&mut alg, &mut bandit, 10_000, 1);
        assert_eq!(alg.leader(), 2);
        assert!(alg.has_converged());
    }

    #[test]
    fn finds_best_arm_with_bernoulli_noise() {
        let mut hits = 0;
        for seed in 0..10 {
            let mut alg = StandardMwu::new(8, StandardConfig::default());
            let mut bandit = ValueBandit::bernoulli(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.9]);
            drive(&mut alg, &mut bandit, 10_000, seed);
            if alg.leader() == 7 {
                hits += 1;
            }
        }
        assert!(hits >= 8, "best arm found in only {hits}/10 runs");
    }

    #[test]
    fn convergence_latches() {
        let mut alg = StandardMwu::new(3, StandardConfig::default());
        let mut bandit = ValueBandit::exact(vec![0.0, 1.0, 0.0]);
        drive(&mut alg, &mut bandit, 10_000, 2);
        assert!(alg.has_converged());
        // Stabilization declares convergence once the trajectory quiets;
        // with a clear winner the leader by then holds nearly all mass.
        assert!(alg.leader_share() > 0.99, "share {}", alg.leader_share());
    }

    #[test]
    fn strict_criterion_available_for_ablation() {
        let mut alg = StandardMwu::new(
            3,
            StandardConfig {
                stability_window: 0,
                ..StandardConfig::default()
            },
        );
        let mut bandit = ValueBandit::exact(vec![0.0, 1.0, 0.0]);
        drive(&mut alg, &mut bandit, 10_000, 2);
        assert!(alg.has_converged());
        assert!(alg.leader_share() > 1.0 - 2e-5);
    }

    #[test]
    fn cpu_count_is_k() {
        let alg = StandardMwu::new(64, StandardConfig::default());
        assert_eq!(alg.cpus_per_iteration(), 64);
    }

    #[test]
    fn congestion_is_k_per_round() {
        let mut alg = StandardMwu::new(16, StandardConfig::default());
        let mut bandit = ValueBandit::exact(vec![0.5; 16]);
        drive(&mut alg, &mut bandit, 3, 0);
        let c = alg.comm_stats();
        assert_eq!(c.rounds, 3);
        assert_eq!(c.peak_congestion, 16);
        assert_eq!(c.messages, 3 * 32);
    }

    #[test]
    fn update_rejects_wrong_reward_count() {
        let mut alg = StandardMwu::new(4, StandardConfig::default());
        let mut rng = SmallRng::seed_from_u64(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            alg.update(&[1.0, 0.0], &mut rng);
        }));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic]
    fn invalid_eta_rejected() {
        let _ = StandardMwu::new(
            4,
            StandardConfig {
                eta: LearningRate::Constant(0.9),
                ..StandardConfig::default()
            },
        );
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut alg = StandardMwu::new(9, StandardConfig::default());
        let mut bandit = ValueBandit::bernoulli(crate::bandit::random_values(9, 3));
        drive(&mut alg, &mut bandit, 50, 4);
        let sum: f64 = alg.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
