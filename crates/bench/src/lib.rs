//! # mwu-bench
//!
//! Criterion benchmarks, one per paper artifact or design-choice ablation:
//!
//! * `mwu_iteration` — per-update-cycle cost of each variant (Tables II/IV
//!   compute profile).
//! * `slate_sampling` — §II-C ablation: O(k²) convex decomposition vs O(k)
//!   systematic sampling.
//! * `precompute` — Fig. 5 phase 1: pool construction and incremental
//!   revalidation throughput.
//! * `fig4_curves` — Fig. 4a/4b Monte-Carlo estimation cost.
//! * `repair_end_to_end` — §IV-G: MWRepair (all variants) vs baselines.
//! * `congestion` — Table I communication entries.
//! * `convergence_cells` — Tables II–IV cell units + convergence-criterion
//!   ablation.
//! * `par_scaling` — thread-pool scaling (1/2/4/8 threads) of a grid cell
//!   and the Fig. 5 phase-1 precompute; the statistically rigorous
//!   companion to the `bench_grid` binary's `BENCH_grid.json`.
//!
//! Run with `cargo bench -p mwu-bench` (or a single target via
//! `cargo bench -p mwu-bench --bench slate_sampling`).
