//! Steady-state cost of one allocation-free MWU round (plan → pull →
//! update) with warm scratch buffers and a reused rewards buffer — the
//! criterion twin of the `bench_round` binary that maintains
//! `BENCH_round.json` (see `docs/PERFORMANCE.md`).
//!
//! Unlike `mwu_iteration` (which allocates its rewards vector per cycle,
//! measuring the naive caller), this harness reproduces the driver's hot
//! loop: after warmup every buffer has reached steady-state capacity and a
//! round performs zero heap allocations (enforced by
//! `tests/tests/alloc_free.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mwu_core::prelude::*;
use mwu_core::slate::SlateSampling;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn one_round(
    alg: &mut dyn MwuAlgorithm,
    bandit: &mut ValueBandit,
    rewards: &mut Vec<f64>,
    rng: &mut SmallRng,
) {
    rewards.clear();
    {
        let plan = alg.plan(rng);
        for &arm in plan {
            rewards.push(bandit.pull(arm, rng));
        }
    }
    alg.update(rewards, rng);
}

fn bench_alg(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    k: usize,
    warmup: usize,
    mut alg: Box<dyn MwuAlgorithm>,
) {
    group.throughput(Throughput::Elements(k as u64));
    group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
        let mut bandit = ValueBandit::exact(mwu_core::bandit::random_values(k, 9));
        let mut rng = SmallRng::seed_from_u64(7);
        let mut rewards = Vec::with_capacity(alg.cpus_per_iteration() * 2);
        for _ in 0..warmup {
            one_round(alg.as_mut(), &mut bandit, &mut rewards, &mut rng);
        }
        b.iter(|| one_round(alg.as_mut(), &mut bandit, &mut rewards, &mut rng));
    });
}

fn bench_round_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_kernel");
    group.sample_size(30);
    for &k in &[64usize, 256, 1024] {
        bench_alg(
            &mut group,
            "standard",
            k,
            200,
            Box::new(StandardMwu::new(k, StandardConfig::default())),
        );
        bench_alg(
            &mut group,
            "slate",
            k,
            200,
            Box::new(SlateMwu::new(k, SlateConfig::default())),
        );
        // The O(k²) decomposition sampler is far off the systematic path's
        // cost curve; cap its size so the bench stays snappy.
        if k <= 256 {
            bench_alg(
                &mut group,
                "slate-decomp",
                k,
                50,
                Box::new(SlateMwu::new(
                    k,
                    SlateConfig {
                        sampling: SlateSampling::ConvexDecomposition,
                        ..SlateConfig::default()
                    },
                )),
            );
        }
        if k <= 256 {
            bench_alg(
                &mut group,
                "distributed",
                k,
                100,
                Box::new(DistributedMwu::new(k, DistributedConfig::default())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_round_kernel);
criterion_main!(benches);
