//! The precompute phase (paper Fig. 5 phase 1, §III-C): building the
//! safe-mutation pool. Embarrassingly parallel candidate validation —
//! throughput per safe mutation at several pool sizes.

use apr_sim::{BugScenario, MutationPool, ScenarioKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_precompute(c: &mut Criterion) {
    let scenario = BugScenario::custom(
        "bench-precompute",
        ScenarioKind::Synthetic,
        100,
        20,
        1000,
        30,
        0.005,
        44,
    );
    let mut group = c.benchmark_group("precompute");
    group.sample_size(10);
    for &target in &[100usize, 500, 2000] {
        group.throughput(Throughput::Elements(target as u64));
        group.bench_with_input(BenchmarkId::new("pool", target), &target, |b, &target| {
            b.iter(|| {
                MutationPool::precompute(
                    &scenario.program,
                    &scenario.suite,
                    &scenario.world,
                    target,
                    7,
                    None,
                )
            });
        });
    }

    // Incremental revalidation (suite growth, §III-C).
    let pool = scenario.build_pool(7, None);
    group.bench_function("revalidate_1000", |b| {
        b.iter_batched(
            || pool.clone(),
            |mut p| p.revalidate(&scenario.world, 123, 20, 0.05, None),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_precompute);
criterion_main!(benches);
