//! Tables II–IV micro-cells: full run-to-convergence of each variant on a
//! small catalog dataset (the unit of work the tables aggregate 100× per
//! cell). Also benches the stabilization-vs-strict convergence ablation
//! for Standard.

use criterion::{criterion_group, criterion_main, Criterion};
use mwu_core::prelude::*;
use mwu_core::StandardConfig;
use mwu_datasets::catalog;

fn bench_cells(c: &mut Criterion) {
    let dataset = catalog::by_name("random64").unwrap();
    let k = dataset.size();
    let mut group = c.benchmark_group("convergence_cells");
    group.sample_size(10);

    group.bench_function("standard_random64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            let mut bandit = dataset.bandit();
            run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(seed))
        });
    });

    group.bench_function("slate_random64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut alg = SlateMwu::new(k, SlateConfig::default());
            let mut bandit = dataset.bandit();
            run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(seed))
        });
    });

    group.bench_function("distributed_random64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut alg = DistributedMwu::try_new(k, DistributedConfig::default()).unwrap();
            let mut bandit = dataset.bandit();
            run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(seed))
        });
    });

    // Ablation: stabilization (default) vs strict convergence criterion on
    // a clearly-separated instance where both terminate.
    let mut sep_values = vec![0.05f64; 64];
    sep_values[17] = 0.95;
    group.bench_function("standard_stabilized_criterion", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut alg = StandardMwu::new(64, StandardConfig::default());
            let mut bandit = ValueBandit::bernoulli(sep_values.clone());
            run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(seed))
        });
    });
    group.bench_function("standard_strict_criterion", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut alg = StandardMwu::new(
                64,
                StandardConfig {
                    stability_window: 0,
                    ..StandardConfig::default()
                },
            );
            let mut bandit = ValueBandit::bernoulli(sep_values.clone());
            run_to_convergence(&mut alg, &mut bandit, &RunConfig::seeded(seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
