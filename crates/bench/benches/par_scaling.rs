//! Thread-pool scaling of the two embarrassingly parallel hot loops: a
//! Table II grid cell (replicates over rayon workers) and the Fig. 5
//! phase-1 precompute (safety screening over candidate mutations), each at
//! 1/2/4/8 participating threads.
//!
//! The pool is sized once at 8; each measurement runs under
//! `rayon::with_max_threads`, so one `cargo bench` run produces the whole
//! scaling curve. `bench_grid` (the standalone binary) covers the full
//! grid and emits `BENCH_grid.json`; this benchmark is the statistically
//! rigorous single-cell view.

use apr_sim::{BugScenario, ScenarioKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mwu_core::Variant;
use mwu_datasets::full_catalog;
use mwu_experiments::{run_cell, GridConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_grid_cell(c: &mut Criterion) {
    rayon::set_num_threads(8);
    let dataset = full_catalog()
        .into_iter()
        .find(|d| d.name == "random256")
        .expect("catalog dataset");
    let config = GridConfig {
        replicates: 16,
        max_iterations: 5_000,
        seed: 0xEED5,
    };
    let mut group = c.benchmark_group("par_scaling/grid_cell");
    group.sample_size(10);
    for &threads in &THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("standard_random256", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    rayon::with_max_threads(threads, || {
                        run_cell(Variant::Standard, &dataset, &config)
                    })
                });
            },
        );
    }
    group.finish();
}

fn bench_precompute(c: &mut Criterion) {
    rayon::set_num_threads(8);
    let scenario = BugScenario::custom(
        "par-bench",
        ScenarioKind::Synthetic,
        120,
        24,
        900,
        30,
        0.3,
        5,
    );
    let mut group = c.benchmark_group("par_scaling/precompute");
    group.sample_size(10);
    for &threads in &THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("pool_build", threads),
            &threads,
            |b, &threads| {
                b.iter(|| rayon::with_max_threads(threads, || scenario.build_pool(5, None)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grid_cell, bench_precompute);
criterion_main!(benches);
