//! Ablation (paper §II-C): the O(k²) convex decomposition of the capped
//! weight vector into slate vertices versus the O(k) systematic-sampling
//! equivalent. Both achieve identical per-arm inclusion probabilities; the
//! paper notes the naive subset projection is "prohibitively expensive"
//! and the decomposition "requires O(k²) time" — this bench quantifies the
//! gap against the default sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mwu_core::slate::{decompose_into_slates, sample_decomposition, systematic_sample};
use mwu_core::weights::WeightVector;
use mwu_datasets::random;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn capped_q(k: usize, s: usize) -> Vec<f64> {
    let w = WeightVector::from_weights(&random::generate(k, 3));
    let capped = w.mix_uniform(0.05).capped(1.0 / s as f64);
    capped
        .probabilities()
        .iter()
        .map(|&p| (s as f64 * p).min(1.0))
        .collect()
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("slate_sampling");
    group.sample_size(20);
    for &k in &[64usize, 256, 1024] {
        let s = ((0.05 * k as f64).ceil() as usize).clamp(2, k);
        let q = capped_q(k, s);

        group.bench_with_input(BenchmarkId::new("systematic", k), &k, |b, _| {
            let mut rng = SmallRng::seed_from_u64(9);
            b.iter(|| systematic_sample(&q, s, &mut rng));
        });

        group.bench_with_input(BenchmarkId::new("convex_decomposition", k), &k, |b, _| {
            let mut rng = SmallRng::seed_from_u64(9);
            b.iter(|| {
                let d = decompose_into_slates(&q, s);
                sample_decomposition(&d, &mut rng)
            });
        });

        // Decomposition reused across draws (amortized): decompose once,
        // then sample vertices — the practical middle ground.
        group.bench_with_input(
            BenchmarkId::new("decomposition_amortized", k),
            &k,
            |b, _| {
                let d = decompose_into_slates(&q, s);
                let mut rng = SmallRng::seed_from_u64(9);
                b.iter(|| sample_decomposition(&d, &mut rng));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
