//! §IV-G end-to-end cost: MWRepair (each variant) versus the GenProg /
//! RSRepair / AE baselines on a small repairable scenario. Criterion
//! measures the *host* compute per full search — the simulated fitness-
//! evaluation counts are the `repair_comparison` binary's job.

use apr_baselines::{AdaptiveSearch, GenProg, GenProgConfig, RandomSearch, SearchBudget};
use apr_sim::{BugScenario, ScenarioKind};
use criterion::{criterion_group, criterion_main, Criterion};
use mwrepair::{repair_with_variant, MwRepairConfig, VariantChoice};

fn bench_repair(c: &mut Criterion) {
    let scenario = BugScenario::custom(
        "bench-repair",
        ScenarioKind::Synthetic,
        60,
        12,
        400,
        15,
        0.06,
        21,
    );
    let pool = scenario.build_pool(1, None);
    let mut group = c.benchmark_group("repair_end_to_end");
    group.sample_size(10);

    for variant in [
        VariantChoice::Standard,
        VariantChoice::Slate,
        VariantChoice::Distributed,
    ] {
        group.bench_function(format!("mwrepair_{variant:?}").to_lowercase(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                repair_with_variant(
                    &scenario,
                    &pool,
                    variant,
                    &MwRepairConfig::seeded(seed),
                    None,
                )
                .unwrap()
            });
        });
    }

    group.bench_function("genprog", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            GenProg::new(GenProgConfig::default()).run(
                &scenario,
                &SearchBudget::new(10_000, seed),
                None,
            )
        });
    });
    group.bench_function("rsrepair", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            RandomSearch::default().run(&scenario, &SearchBudget::new(10_000, seed), None)
        });
    });
    group.bench_function("ae", |b| {
        b.iter(|| AdaptiveSearch::default().run(&scenario, &SearchBudget::new(10_000, 0), None));
    });
    group.finish();
}

criterion_group!(benches, bench_repair);
criterion_main!(benches);
