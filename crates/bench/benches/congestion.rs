//! Table I communication entries: congestion measurement cost for the
//! star (Standard/Slate synchronization) and random-neighbor (Distributed)
//! patterns, plus the raw balls-into-bins kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simnet::congestion::balls_into_bins_max;
use simnet::Topology;

fn bench_congestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion");
    group.sample_size(20);
    for &n in &[256usize, 4096, 65536] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("balls_into_bins", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| balls_into_bins_max(n, n, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("random_neighbor", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| Topology::RandomNeighbor.congestion(n, &mut rng));
        });
        if n <= 4096 {
            group.bench_with_input(BenchmarkId::new("star", n), &n, |b, &n| {
                let mut rng = SmallRng::seed_from_u64(1);
                b.iter(|| Topology::Star.congestion(n, &mut rng));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_congestion);
criterion_main!(benches);
