//! The profiler's zero-overhead-when-disabled gate (docs/TELEMETRY.md).
//!
//! The round kernels (`plan`, water-fill, normalize, sample, `update`)
//! carry `mwu_core::prof` spans unconditionally. The tentpole claim is
//! that a *disabled* profiler — the production default — costs one
//! relaxed atomic load per span and nothing else, so the kernels run at
//! their pre-profiler speed. Two groups pin that down:
//!
//! * `prof_span_raw` — the per-span primitive cost, disabled vs enabled;
//! * `prof_overhead` — a full convergence run, disabled vs enabled, on
//!   the same spanned kernels. The disabled number is the one CI eyeballs
//!   against `null_observer_overhead`'s baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use mwu_core::prelude::*;
use mwu_core::prof;
use mwu_datasets::random;

fn bench_span_raw(c: &mut Criterion) {
    let mut group = c.benchmark_group("prof_span_raw");

    prof::set_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| prof::span(prof::Phase::Plan));
    });

    prof::set_enabled(true);
    group.bench_function("enabled", |b| {
        b.iter(|| prof::span(prof::Phase::Plan));
    });
    prof::set_enabled(false);
    prof::reset();

    group.finish();
}

fn bench_prof_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("prof_overhead");
    group.sample_size(20);
    let k = 256usize;
    let values = random::generate(k, 1);
    let cfg = RunConfig {
        max_iterations: 200,
        seed: 7,
        run_past_convergence: true,
    };

    prof::set_enabled(false);
    group.bench_function("spans_disabled", |b| {
        b.iter(|| {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            let mut bandit = ValueBandit::bernoulli(values.clone());
            run_to_convergence(&mut alg, &mut bandit, &cfg)
        });
    });

    prof::set_enabled(true);
    group.bench_function("spans_enabled", |b| {
        b.iter(|| {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            let mut bandit = ValueBandit::bernoulli(values.clone());
            run_to_convergence(&mut alg, &mut bandit, &cfg)
        });
    });
    prof::set_enabled(false);
    prof::reset();

    group.finish();
}

criterion_group!(benches, bench_span_raw, bench_prof_overhead);
criterion_main!(benches);
