//! Per-update-cycle cost of each MWU variant (the compute profile behind
//! Tables II and IV): one plan + evaluate + update cycle at several
//! instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mwu_core::prelude::*;
use mwu_datasets::random;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn one_cycle<A: MwuAlgorithm>(alg: &mut A, bandit: &mut ValueBandit, rng: &mut SmallRng) {
    let plan = alg.plan(rng);
    let mut rewards = Vec::with_capacity(plan.len());
    for &arm in plan {
        rewards.push(bandit.pull(arm, rng));
    }
    alg.update(&rewards, rng);
}

fn bench_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwu_iteration");
    group.sample_size(20);
    for &k in &[64usize, 1024, 4096] {
        let values = random::generate(k, 1);
        group.throughput(Throughput::Elements(k as u64));

        group.bench_with_input(BenchmarkId::new("standard", k), &k, |b, &k| {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            let mut bandit = ValueBandit::bernoulli(values.clone());
            let mut rng = SmallRng::seed_from_u64(7);
            b.iter(|| one_cycle(&mut alg, &mut bandit, &mut rng));
        });

        group.bench_with_input(BenchmarkId::new("slate", k), &k, |b, &k| {
            let mut alg = SlateMwu::new(k, SlateConfig::default());
            let mut bandit = ValueBandit::bernoulli(values.clone());
            let mut rng = SmallRng::seed_from_u64(7);
            b.iter(|| one_cycle(&mut alg, &mut bandit, &mut rng));
        });

        // Distributed's per-cycle cost is per *agent*; restrict to sizes
        // whose populations keep the bench snappy.
        if k <= 1024 {
            group.bench_with_input(BenchmarkId::new("distributed", k), &k, |b, &k| {
                let mut alg = DistributedMwu::try_new(k, DistributedConfig::default()).unwrap();
                let mut bandit = ValueBandit::bernoulli(values.clone());
                let mut rng = SmallRng::seed_from_u64(7);
                b.iter(|| one_cycle(&mut alg, &mut bandit, &mut rng));
            });
        }
    }
    group.finish();
}

/// The tentpole claim of the telemetry layer: driving a run through
/// `run_to_convergence_observed(…, &mut NullObserver)` costs the same as the
/// legacy `run_to_convergence` — `NullObserver::enabled()` is a constant
/// `false`, so the observed path monomorphizes to the pre-telemetry loop.
fn bench_null_observer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("null_observer_overhead");
    group.sample_size(20);
    let k = 256usize;
    let values = random::generate(k, 1);
    let cfg = RunConfig {
        max_iterations: 200,
        seed: 7,
        run_past_convergence: true,
    };

    group.bench_function("legacy_unobserved", |b| {
        b.iter(|| {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            let mut bandit = ValueBandit::bernoulli(values.clone());
            run_to_convergence(&mut alg, &mut bandit, &cfg)
        });
    });

    group.bench_function("observed_null", |b| {
        b.iter(|| {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            let mut bandit = ValueBandit::bernoulli(values.clone());
            run_to_convergence_observed(&mut alg, &mut bandit, &cfg, &mut NullObserver)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_iteration, bench_null_observer_overhead);
criterion_main!(benches);
