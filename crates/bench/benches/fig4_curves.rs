//! Fig. 4a / 4b regeneration cost: Monte-Carlo estimation of the survival
//! and repair-density curves (per-point trial batches).

use apr_sim::fig4::{repair_density_curve, survival_curve, untested_survival_curve};
use apr_sim::{BugScenario, ScenarioKind};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_curves(c: &mut Criterion) {
    let scenario = BugScenario::custom(
        "bench-fig4",
        ScenarioKind::Synthetic,
        100,
        20,
        800,
        25,
        0.01,
        55,
    );
    let pool = scenario.build_pool(3, None);
    let xs: Vec<usize> = (1..=100).step_by(10).collect();
    let trials = 200;

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.throughput(Throughput::Elements((xs.len() * trials) as u64));
    group.bench_function("fig4a_survival", |b| {
        b.iter(|| survival_curve(&scenario, &pool, &xs, trials, 1));
    });
    group.bench_function("fig4a_untested", |b| {
        b.iter(|| untested_survival_curve(&scenario, &xs, trials, 1));
    });
    group.bench_function("fig4b_repair_density", |b| {
        b.iter(|| repair_density_curve(&scenario, &pool, &xs, trials, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_curves);
criterion_main!(benches);
