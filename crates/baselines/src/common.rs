//! Shared budget / outcome types for the baseline searches.

use apr_sim::ledger::CostSnapshot;
use apr_sim::Mutation;
use serde::{Deserialize, Serialize};

/// Search budget: fitness evaluations (the paper's cost unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Maximum test-suite executions before giving up.
    pub max_evals: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SearchBudget {
    /// Budget with defaults used by the §IV-G comparison (GenProg-scale).
    pub fn new(max_evals: u64, seed: u64) -> Self {
        Self { max_evals, seed }
    }
}

/// What a baseline search produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Short algorithm name ("genprog", "rsrepair", "ae").
    pub algorithm: &'static str,
    /// The repairing mutation set, if found within budget.
    pub repair: Option<Vec<Mutation>>,
    /// Fitness evaluations used.
    pub evals: u64,
    /// Cost snapshot (sequential and critical-path simulated time).
    pub cost: CostSnapshot,
}

impl SearchOutcome {
    /// Did the search repair the defect?
    pub fn is_repaired(&self) -> bool {
        self.repair.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_flag() {
        let o = SearchOutcome {
            algorithm: "x",
            repair: None,
            evals: 1,
            cost: CostSnapshot {
                fitness_evals: 1,
                simulated_ms: 1,
                critical_path_ms: 1,
            },
        };
        assert!(!o.is_repaired());
    }
}
