//! RSRepair-style random search (Qi et al.).
//!
//! RSRepair showed that GenProg's genetic machinery often adds little over
//! pure random search: sample a random single edit, test it, repeat. It is
//! "parallel because no information is shared between threads" (paper §V-B)
//! — we model `threads` independent probes per round, so the critical path
//! per round is one suite run.

use crate::common::{SearchBudget, SearchOutcome};
use apr_sim::{BugScenario, CostLedger, Mutation};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The RSRepair baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomSearch {
    /// Independent probes per parallel round.
    pub threads: usize,
    /// Edits per probe (RSRepair samples single edits; 1 by default).
    pub edits_per_probe: usize,
}

impl Default for RandomSearch {
    fn default() -> Self {
        Self {
            threads: 16,
            edits_per_probe: 1,
        }
    }
}

impl RandomSearch {
    /// Run the search on `scenario` within `budget`.
    pub fn run(
        &self,
        scenario: &BugScenario,
        budget: &SearchBudget,
        ledger: Option<&CostLedger>,
    ) -> SearchOutcome {
        assert!(self.threads > 0 && self.edits_per_probe > 0);
        let mut rng = SmallRng::seed_from_u64(budget.seed);
        let sites = scenario.program.covered_sites(&scenario.suite);
        let suite_cost = scenario.suite.full_run_cost_ms();
        let own_ledger = CostLedger::new();
        let ledger = ledger.unwrap_or(&own_ledger);
        let mut evals: u64 = 0;

        while evals < budget.max_evals {
            let round = (budget.max_evals - evals).min(self.threads as u64);
            let mut found: Option<Vec<Mutation>> = None;
            for _ in 0..round {
                let genome: Vec<Mutation> = (0..self.edits_per_probe)
                    .map(|_| Mutation::random(&scenario.program, &sites, &mut rng))
                    .collect();
                evals += 1;
                let out = scenario.evaluate(&genome, Some(ledger));
                if out.repaired && found.is_none() {
                    found = Some(genome);
                }
            }
            ledger.record_parallel_phase(suite_cost);
            if let Some(genome) = found {
                return SearchOutcome {
                    algorithm: "rsrepair",
                    repair: Some(genome),
                    evals,
                    cost: ledger.snapshot(),
                };
            }
        }

        SearchOutcome {
            algorithm: "rsrepair",
            repair: None,
            evals,
            cost: ledger.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_sim::ScenarioKind;

    #[test]
    fn repairs_high_rate_scenario() {
        let s = BugScenario::custom(
            "rs-easy",
            ScenarioKind::Synthetic,
            40,
            10,
            300,
            12,
            0.06,
            41,
        );
        let out = RandomSearch::default().run(&s, &SearchBudget::new(8_000, 1), None);
        assert!(out.is_repaired(), "evals {}", out.evals);
        let verify = s.evaluate(out.repair.as_ref().unwrap(), None);
        assert!(verify.repaired);
    }

    #[test]
    fn budget_respected_exactly() {
        let s = BugScenario::custom("rs-hard", ScenarioKind::Synthetic, 40, 10, 300, 12, 0.0, 42);
        let out = RandomSearch::default().run(&s, &SearchBudget::new(100, 1), None);
        assert!(!out.is_repaired());
        assert_eq!(out.evals, 100);
    }

    #[test]
    fn deterministic() {
        let s = BugScenario::custom("rs-det", ScenarioKind::Synthetic, 40, 10, 300, 12, 0.03, 43);
        let a = RandomSearch::default().run(&s, &SearchBudget::new(3_000, 9), None);
        let b = RandomSearch::default().run(&s, &SearchBudget::new(3_000, 9), None);
        assert_eq!(a.evals, b.evals);
        assert_eq!(a.repair, b.repair);
    }

    #[test]
    fn parallel_rounds_reduce_critical_path() {
        let s = BugScenario::custom("rs-par", ScenarioKind::Synthetic, 40, 10, 300, 12, 0.0, 44);
        let ledger = CostLedger::new();
        let rs = RandomSearch {
            threads: 32,
            edits_per_probe: 1,
        };
        let out = rs.run(&s, &SearchBudget::new(320, 1), Some(&ledger));
        assert_eq!(out.evals, 320);
        // 320 evals in rounds of 32 ⇒ 10 rounds of critical path.
        assert_eq!(ledger.critical_path_ms(), 10 * s.suite.full_run_cost_ms());
        assert!(out.cost.parallel_speedup() > 10.0);
    }
}
