//! AE-style adaptive search (Weimer, Fry & Forrest: "Leveraging program
//! equivalence for adaptive program repair").
//!
//! AE replaces GenProg's stochastic population with a *deterministic*
//! enumeration of single-edit repairs, pruning syntactically-duplicate and
//! semantically-equivalent mutants so each equivalence class is tested at
//! most once. We model the equivalence relation with the mutation-id
//! dedup (syntactic) plus a token-equality rule (two Replace edits at the
//! same site whose donors carry the same token produce identical programs —
//! the dominant equivalence class in practice).

use crate::common::{SearchBudget, SearchOutcome};
use apr_sim::{BugScenario, CostLedger, MutOp, Mutation};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The AE baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveSearch {
    /// Number of donor statements considered per site (AE bounds its
    /// enumeration; full cross-product is quadratic in program size).
    pub donors_per_site: usize,
}

impl Default for AdaptiveSearch {
    fn default() -> Self {
        Self {
            donors_per_site: 20,
        }
    }
}

impl AdaptiveSearch {
    /// Run the deterministic enumeration within `budget`. The seed in
    /// `budget` is unused (AE is deterministic); kept for interface parity.
    pub fn run(
        &self,
        scenario: &BugScenario,
        budget: &SearchBudget,
        ledger: Option<&CostLedger>,
    ) -> SearchOutcome {
        let sites = scenario.program.covered_sites(&scenario.suite);
        let own_ledger = CostLedger::new();
        let ledger = ledger.unwrap_or(&own_ledger);
        let suite_cost = scenario.suite.full_run_cost_ms();
        let mut evals: u64 = 0;
        // Semantic-equivalence cache: (op, site, donor token).
        let mut seen_classes: HashSet<(u64, usize, u32)> = HashSet::new();

        // Order the worklist by spectrum-based suspiciousness (AE uses
        // fault localization to prioritize sites).
        let localization =
            apr_sim::localize(&scenario.program, &scenario.suite, apr_sim::Formula::Ochiai);
        let site_set: std::collections::HashSet<usize> = sites.iter().copied().collect();
        let ordered: Vec<usize> = localization
            .ranked_sites()
            .into_iter()
            .filter(|s| site_set.contains(s))
            .collect();

        for &site in &ordered {
            for op in [MutOp::Delete, MutOp::Replace, MutOp::Insert, MutOp::Swap] {
                let donors: Vec<usize> = if op == MutOp::Delete {
                    vec![site]
                } else {
                    // Deterministic donor subset: statements spread evenly
                    // over the program.
                    let n = scenario.program.len();
                    let step = (n / self.donors_per_site).max(1);
                    (0..n).step_by(step).take(self.donors_per_site).collect()
                };
                for donor in donors {
                    if evals >= budget.max_evals {
                        return SearchOutcome {
                            algorithm: "ae",
                            repair: None,
                            evals,
                            cost: ledger.snapshot(),
                        };
                    }
                    let m = Mutation { op, site, donor };
                    // Equivalence pruning: skip mutants whose class was
                    // already tested.
                    let token = scenario.program.statements[donor].token;
                    if !seen_classes.insert((op.tag(), site, token)) {
                        continue;
                    }
                    evals += 1;
                    let out = scenario.evaluate(&[m], Some(ledger));
                    ledger.record_parallel_phase(suite_cost);
                    if out.repaired {
                        return SearchOutcome {
                            algorithm: "ae",
                            repair: Some(vec![m]),
                            evals,
                            cost: ledger.snapshot(),
                        };
                    }
                }
            }
        }

        SearchOutcome {
            algorithm: "ae",
            repair: None,
            evals,
            cost: ledger.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_sim::ScenarioKind;

    #[test]
    fn finds_single_edit_repairs_deterministically() {
        let s = BugScenario::custom(
            "ae-easy",
            ScenarioKind::Synthetic,
            40,
            10,
            300,
            12,
            0.05,
            51,
        );
        let ae = AdaptiveSearch::default();
        let a = ae.run(&s, &SearchBudget::new(20_000, 0), None);
        let b = ae.run(&s, &SearchBudget::new(20_000, 12345), None);
        assert!(a.is_repaired());
        // Seed-independence: AE is deterministic.
        assert_eq!(a.repair, b.repair);
        assert_eq!(a.evals, b.evals);
        let verify = s.evaluate(a.repair.as_ref().unwrap(), None);
        assert!(verify.repaired);
    }

    #[test]
    fn equivalence_pruning_reduces_evals() {
        let s = BugScenario::custom(
            "ae-prune",
            ScenarioKind::Synthetic,
            40,
            10,
            200,
            12,
            0.0,
            52,
        );
        let ae = AdaptiveSearch {
            donors_per_site: 50,
        };
        let out = ae.run(&s, &SearchBudget::new(1_000_000, 0), None);
        // Without pruning the enumeration would test sites × ops × donors;
        // with token classes it must be strictly less.
        let sites = s.program.covered_sites(&s.suite).len() as u64;
        let unpruned = sites * (1 + 3 * 50);
        assert!(
            out.evals < unpruned,
            "evals {} not reduced from {unpruned}",
            out.evals
        );
        assert!(out.evals > 0);
    }

    #[test]
    fn budget_respected() {
        let s = BugScenario::custom(
            "ae-budget",
            ScenarioKind::Synthetic,
            40,
            10,
            300,
            12,
            0.0,
            53,
        );
        let out = AdaptiveSearch::default().run(&s, &SearchBudget::new(57, 0), None);
        assert_eq!(out.evals, 57);
        assert!(!out.is_repaired());
    }

    #[test]
    fn fault_localization_orders_near_defect_first() {
        // A repair-rich neighborhood near the defect should be found with
        // few evals relative to the full enumeration.
        let s = BugScenario::custom("ae-fl", ScenarioKind::Synthetic, 40, 10, 500, 15, 0.03, 54);
        let out = AdaptiveSearch::default().run(&s, &SearchBudget::new(50_000, 0), None);
        if out.is_repaired() {
            let sites = s.program.covered_sites(&s.suite).len() as u64;
            assert!(
                out.evals < sites * 61,
                "repair took {} evals over {} sites",
                out.evals,
                sites
            );
        }
    }
}
