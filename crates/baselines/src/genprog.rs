//! GenProg-style genetic programming repair (Le Goues et al.).
//!
//! Population of program variants (mutation lists over the original
//! program); fitness-proportional tournament selection; one-point crossover
//! on the mutation lists; per-generation mutation appends one fresh random
//! edit. Every variant evaluation runs the full suite (one fitness eval).
//! Mutations are generated inside the loop — no precomputed pool — and the
//! per-generation evaluations are parallel (GenProg parallelized test
//! execution per variant; we model the critical path as one suite run per
//! generation).

use crate::common::{SearchBudget, SearchOutcome};
use apr_sim::{BugScenario, CostLedger, Mutation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// GenProg hyperparameters (defaults follow the original tool's common
/// settings: population 40, small tournaments, crossover rate 0.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenProgConfig {
    /// Population size.
    pub pop_size: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of crossover (vs. cloning) when producing offspring.
    pub crossover_rate: f64,
    /// Maximum genome length (mutation-list length) — GenProg genomes stay
    /// short in practice; repairs are "redundant and can be minimized to
    /// one or two single-statement edits".
    pub max_genome: usize,
}

impl Default for GenProgConfig {
    fn default() -> Self {
        Self {
            pop_size: 40,
            tournament: 3,
            crossover_rate: 0.5,
            max_genome: 3,
        }
    }
}

/// The GenProg baseline.
#[derive(Debug, Clone)]
pub struct GenProg {
    config: GenProgConfig,
}

#[derive(Clone)]
struct Individual {
    genome: Vec<Mutation>,
    fitness: u32,
}

impl GenProg {
    /// New instance with the given hyperparameters.
    pub fn new(config: GenProgConfig) -> Self {
        Self { config }
    }

    /// Run the search on `scenario` within `budget`.
    pub fn run(
        &self,
        scenario: &BugScenario,
        budget: &SearchBudget,
        ledger: Option<&CostLedger>,
    ) -> SearchOutcome {
        let mut rng = SmallRng::seed_from_u64(budget.seed);
        let sites = scenario.program.covered_sites(&scenario.suite);
        let suite_cost = scenario.suite.full_run_cost_ms();
        let max_fit = scenario.suite.max_fitness();
        let mut evals: u64 = 0;
        let own_ledger = CostLedger::new();
        let ledger = ledger.unwrap_or(&own_ledger);

        let eval = |genome: &[Mutation], evals: &mut u64| -> u32 {
            *evals += 1;
            scenario.evaluate(genome, Some(ledger)).fitness
        };

        // Initial population: single random edits.
        let mut pop: Vec<Individual> = Vec::with_capacity(self.config.pop_size);
        for _ in 0..self.config.pop_size {
            if evals >= budget.max_evals {
                break;
            }
            let genome = vec![Mutation::random(&scenario.program, &sites, &mut rng)];
            let fitness = eval(&genome, &mut evals);
            if fitness == max_fit {
                ledger.record_parallel_phase(suite_cost);
                return SearchOutcome {
                    algorithm: "genprog",
                    repair: Some(genome),
                    evals,
                    cost: ledger.snapshot(),
                };
            }
            pop.push(Individual { genome, fitness });
        }
        ledger.record_parallel_phase(suite_cost);

        while evals < budget.max_evals && !pop.is_empty() {
            // Produce one generation.
            let mut next: Vec<Individual> = Vec::with_capacity(self.config.pop_size);
            while next.len() < self.config.pop_size && evals < budget.max_evals {
                let a = self.select(&pop, &mut rng);
                let mut child_genome = if rng.gen::<f64>() < self.config.crossover_rate {
                    let b = self.select(&pop, &mut rng);
                    crossover(&pop[a].genome, &pop[b].genome, &mut rng)
                } else {
                    pop[a].genome.clone()
                };
                // Genomes are capped: multi-edit children beyond the cap
                // are truncated (long genomes are almost never all-safe —
                // the paper's Fig. 4a argument against composing *untested*
                // mutations applies to GenProg's own genomes).
                child_genome.truncate(self.config.max_genome);
                // Mutation step: one fresh edit per offspring, generated on
                // the fly (the inefficiency the paper's precompute
                // removes). Genomes at the length cap replace a random
                // position instead of appending, so the search keeps moving
                // rather than re-evaluating a frozen population.
                let fresh = Mutation::random(&scenario.program, &sites, &mut rng);
                if child_genome.len() < self.config.max_genome {
                    child_genome.push(fresh);
                } else {
                    let slot = rng.gen_range(0..child_genome.len());
                    child_genome[slot] = fresh;
                }
                let fitness = eval(&child_genome, &mut evals);
                if fitness == max_fit {
                    ledger.record_parallel_phase(suite_cost);
                    return SearchOutcome {
                        algorithm: "genprog",
                        repair: Some(child_genome),
                        evals,
                        cost: ledger.snapshot(),
                    };
                }
                next.push(Individual {
                    genome: child_genome,
                    fitness,
                });
            }
            // One generation's evaluations run in parallel: critical path is
            // one suite run.
            ledger.record_parallel_phase(suite_cost);
            if !next.is_empty() {
                pop = next;
            }
        }

        SearchOutcome {
            algorithm: "genprog",
            repair: None,
            evals,
            cost: ledger.snapshot(),
        }
    }

    fn select(&self, pop: &[Individual], rng: &mut SmallRng) -> usize {
        let mut best = rng.gen_range(0..pop.len());
        for _ in 1..self.config.tournament {
            let c = rng.gen_range(0..pop.len());
            if pop[c].fitness > pop[best].fitness {
                best = c;
            }
        }
        best
    }
}

fn crossover(a: &[Mutation], b: &[Mutation], rng: &mut SmallRng) -> Vec<Mutation> {
    let cut_a = if a.is_empty() {
        0
    } else {
        rng.gen_range(0..=a.len())
    };
    let cut_b = if b.is_empty() {
        0
    } else {
        rng.gen_range(0..=b.len())
    };
    let mut child: Vec<Mutation> = a[..cut_a].to_vec();
    child.extend_from_slice(&b[cut_b..]);
    if child.is_empty() && !a.is_empty() {
        child.push(a[0]);
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_sim::ScenarioKind;

    fn easy_scenario() -> BugScenario {
        // High repair rate so GenProg's 1–2 edit search finds it quickly.
        BugScenario::custom(
            "gp-easy",
            ScenarioKind::Synthetic,
            40,
            10,
            300,
            12,
            0.05,
            31,
        )
    }

    #[test]
    fn repairs_easy_scenario_within_budget() {
        let s = easy_scenario();
        let gp = GenProg::new(GenProgConfig::default());
        let out = gp.run(&s, &SearchBudget::new(5_000, 1), None);
        assert!(out.is_repaired(), "used {} evals", out.evals);
        // Verify the repair reproduces.
        let verify = s.evaluate(out.repair.as_ref().unwrap(), None);
        assert!(verify.repaired);
    }

    #[test]
    fn respects_eval_budget() {
        let s = BugScenario::custom(
            "gp-hard",
            ScenarioKind::Synthetic,
            40,
            10,
            300,
            12,
            0.0, // unrepairable
            32,
        );
        let gp = GenProg::new(GenProgConfig::default());
        let out = gp.run(&s, &SearchBudget::new(500, 2), None);
        assert!(!out.is_repaired());
        assert!(out.evals <= 500 + 40, "evals {}", out.evals);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = easy_scenario();
        let gp = GenProg::new(GenProgConfig::default());
        let a = gp.run(&s, &SearchBudget::new(2_000, 7), None);
        let b = gp.run(&s, &SearchBudget::new(2_000, 7), None);
        assert_eq!(a.evals, b.evals);
        assert_eq!(a.repair, b.repair);
    }

    #[test]
    fn crossover_produces_valid_child() {
        let mut rng = SmallRng::seed_from_u64(0);
        let s = easy_scenario();
        let sites: Vec<usize> = (0..s.program.len()).collect();
        let a: Vec<Mutation> = (0..3)
            .map(|_| Mutation::random(&s.program, &sites, &mut rng))
            .collect();
        let b: Vec<Mutation> = (0..2)
            .map(|_| Mutation::random(&s.program, &sites, &mut rng))
            .collect();
        for _ in 0..50 {
            let c = crossover(&a, &b, &mut rng);
            assert!(c.len() <= a.len() + b.len());
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn ledger_counts_match_reported_evals() {
        let s = easy_scenario();
        let ledger = CostLedger::new();
        let gp = GenProg::new(GenProgConfig::default());
        let out = gp.run(&s, &SearchBudget::new(2_000, 3), Some(&ledger));
        assert_eq!(ledger.fitness_evals(), out.evals);
    }
}
