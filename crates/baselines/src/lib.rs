//! # apr-baselines
//!
//! The baseline search-based APR algorithms MWRepair is compared against in
//! the paper's §IV-G: a GenProg-style genetic algorithm, RSRepair-style
//! random search, and AE-style deterministic adaptive search. All three run
//! against the same `apr-sim` substrate and `CostLedger` accounting as
//! MWRepair, so fitness-evaluation counts and simulated latency are
//! directly comparable.
//!
//! All baselines follow the field's practice that the paper critiques:
//! mutations are generated **on the fly inside the search loop** (no
//! precomputed pool) and applied **one or two at a time** — "even those
//! that are capable of applying multiple mutations typically do so only one
//! at a time" (§III).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ae;
pub mod common;
pub mod genprog;
pub mod rsrepair;

pub use ae::AdaptiveSearch;
pub use common::{SearchBudget, SearchOutcome};
pub use genprog::{GenProg, GenProgConfig};
pub use rsrepair::RandomSearch;
