//! The `random` dataset family: iid uniform option values.

use mwu_core::rng::keyed_uniform;

/// The five instance sizes used in Tables II–IV.
pub const SIZES: [usize; 5] = [64, 256, 1024, 4096, 16384];

/// Generate `k` option values sampled independently and uniformly from the
/// unit interval, deterministically from `seed`.
pub fn generate(k: usize, seed: u64) -> Vec<f64> {
    assert!(k > 0);
    // Values are keyed per (seed, index): the five instance sizes share a
    // common prefix, which couples the instances but leaves each one an
    // iid-uniform draw — the property every experiment depends on.
    (0..k as u64)
        .map(|i| keyed_uniform(&[seed, 0x7A2D_0001, i]))
        .collect()
}

/// Name used in the paper's tables for size `k` ("random64", ...).
pub fn name(k: usize) -> String {
    format!("random{k}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_unit_interval() {
        let v = generate(4096, 1);
        assert_eq!(v.len(), 4096);
        assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(64, 5), generate(64, 5));
        assert_ne!(generate(64, 5), generate(64, 6));
    }

    #[test]
    fn roughly_uniform() {
        let v = generate(20_000, 3);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let below_quarter = v.iter().filter(|&&x| x < 0.25).count() as f64 / v.len() as f64;
        assert!((below_quarter - 0.25).abs() < 0.02);
    }

    #[test]
    fn larger_instances_have_tighter_top_gaps() {
        // The paper's hardness claim: with more options, the top two values
        // are closer. Check expected order statistics empirically.
        let gap = |k: usize| -> f64 {
            let mut avg = 0.0;
            for seed in 0..40 {
                let mut v = generate(k, 100 + seed);
                v.sort_by(|a, b| b.total_cmp(a));
                avg += v[0] - v[1];
            }
            avg / 40.0
        };
        assert!(gap(64) > gap(4096));
    }

    #[test]
    fn names_match_tables() {
        assert_eq!(name(64), "random64");
        assert_eq!(name(16384), "random16384");
    }
}
