//! The `unimodal` dataset family: `v(x) = a·x·e^(−bx) + c`.
//!
//! The paper constructs these "similarly [to random], except the
//! distribution is defined by the form a·x·e^(−bx) + c, where a, b, and c
//! are chosen independently and uniformly at random from the unit
//! interval." We follow that construction literally, with two small
//! adjustments documented here and in DESIGN.md:
//!
//! * `b` is clamped below at `8/k` so the mode `x* = 1/b` always lies
//!   inside the instance support (an unclamped tiny `b` would make the
//!   curve monotone over all k options — no longer unimodal *as an
//!   instance*);
//! * values are normalized into `[0, 0.95]` so they are valid Bernoulli
//!   means for the noisy-feedback observation model.
//!
//! Note the literal draw concentrates the mode at small x (the median of
//! `1/b` is 2), so the peak is *sharp*: the runner-up option is clearly
//! worse than the best. That property is what lets Distributed's 30 %
//! population threshold and Slate's cap saturation be reachable on the
//! unimodal family — it matches the paper's observation that for its
//! (unimodal) problem domain "it is less important to find the exact best
//! option than it is to bias the search towards high-density regions."

use mwu_core::rng::keyed_uniform;

/// The five instance sizes used in Tables II–IV.
pub const SIZES: [usize; 5] = [64, 256, 1024, 4096, 16384];

/// The (a, b, c) parameters behind one unimodal instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnimodalParams {
    /// Amplitude a ~ U(0,1), bounded away from 0 so the bump exists.
    pub a: f64,
    /// Decay b ~ U(0,1), clamped below at 8/k (mode within support).
    pub b: f64,
    /// Offset c ~ U(0,1), scaled down to keep the peak dominant.
    pub c: f64,
}

/// Draw the instance parameters for (k, seed).
pub fn params(k: usize, seed: u64) -> UnimodalParams {
    let a = keyed_uniform(&[seed, 0x0417_0001]);
    let b_raw = keyed_uniform(&[seed, 0x0417_0002]);
    let c = keyed_uniform(&[seed, 0x0417_0003]);
    UnimodalParams {
        a: 0.2 + 0.8 * a, // keep a bounded away from 0 so the bump exists
        b: b_raw.max(8.0 / k as f64),
        c: 0.2 * c, // offset stays below the peak
    }
}

/// Generate the `k` option values for (k, seed), normalized into
/// `[0, 0.95]` with the peak at exactly 0.95.
pub fn generate(k: usize, seed: u64) -> Vec<f64> {
    assert!(k > 0);
    let p = params(k, seed);
    let raw: Vec<f64> = (1..=k)
        .map(|x| {
            let x = x as f64;
            p.a * x * (-p.b * x).exp() + p.c
        })
        .collect();
    let max = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    raw.iter().map(|&v| 0.95 * v / max).collect()
}

/// Index (0-based) of the mode of the generated instance.
pub fn mode_index(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Name used in the paper's tables ("unimodal64", ...).
pub fn name(k: usize) -> String {
    format!("unimodal{k}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_bounded_and_peak_at_095() {
        for k in [64usize, 1024] {
            let v = generate(k, 3);
            assert_eq!(v.len(), k);
            assert!(v.iter().all(|x| (0.0..=0.95 + 1e-12).contains(x)));
            let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!((max - 0.95).abs() < 1e-12);
        }
    }

    #[test]
    fn shape_is_unimodal() {
        let v = generate(256, 7);
        let m = mode_index(&v);
        for w in v[..m].windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "not increasing before mode");
        }
        for w in v[m..].windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "not decreasing after mode");
        }
    }

    #[test]
    fn mode_within_support() {
        for seed in 0..30 {
            for k in [64usize, 4096] {
                let v = generate(k, seed);
                let m = mode_index(&v);
                assert!(m < k, "mode out of range");
                // Mode should generally be interior (not the last arm).
                assert!(m + 1 < k, "mode clipped to boundary at seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(128, 9), generate(128, 9));
        assert_ne!(generate(128, 9), generate(128, 10));
    }

    #[test]
    fn params_in_documented_ranges() {
        for seed in 0..50 {
            let p = params(1024, seed);
            assert!((0.2..=1.0).contains(&p.a));
            assert!((0.0..=0.2).contains(&p.c));
            assert!((8.0 / 1024.0..=1.0).contains(&p.b));
            let mode = 1.0 / p.b;
            assert!((1.0..=128.0 + 1e-9).contains(&mode));
        }
    }

    #[test]
    fn peak_is_sharp_enough_for_population_convergence() {
        // The literal construction's sharp mode: the best arm beats the
        // runner-up by a measurable margin (this is what makes the 30 %
        // population threshold reachable for Distributed).
        for k in [64usize, 1024, 16384] {
            let v = generate(k, crate::catalog::CATALOG_SEED);
            let mut sorted = v.clone();
            sorted.sort_by(|a, b| b.total_cmp(a));
            let rel_gap = (sorted[0] - sorted[1]) / sorted[0];
            assert!(
                rel_gap > 1e-4,
                "k={k}: relative top gap {rel_gap} too small"
            );
        }
    }

    #[test]
    fn names_match_tables() {
        assert_eq!(name(4096), "unimodal4096");
    }
}
