//! The full twenty-dataset catalog of §IV-A, in the paper's table order.

use crate::{random, unimodal};
use apr_sim::BugScenario;
use mwu_core::bandit::ValueBandit;
use serde::{Deserialize, Serialize};

/// Which §IV-A family a dataset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// iid uniform values.
    Random,
    /// a·x·e^(−bx)+c values.
    Unimodal,
    /// ManyBugs/`units`-shaped APR scenarios.
    C,
    /// Defects4J-shaped APR scenarios.
    Java,
}

impl Family {
    /// Display label matching the paper's table groupings.
    pub fn label(self) -> &'static str {
        match self {
            Family::Random => "random",
            Family::Unimodal => "unimodal",
            Family::C => "C",
            Family::Java => "Java",
        }
    }
}

/// One evaluation dataset: a named vector of option values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Table name (e.g. "random1024", "gzip-2009-08-16").
    pub name: String,
    /// Family.
    pub family: Family,
    /// Option values (the "Size" column is `values.len()`).
    pub values: Vec<f64>,
}

impl Dataset {
    /// Instance size `k`.
    pub fn size(&self) -> usize {
        self.values.len()
    }

    /// The Bernoulli-feedback bandit over this dataset (the observation
    /// model of the paper's APR use case, used for all experiments).
    pub fn bandit(&self) -> ValueBandit {
        ValueBandit::bernoulli(self.values.clone())
    }

    /// Best arm in hindsight.
    pub fn best_arm(&self) -> usize {
        self.values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Value of the best arm.
    pub fn best_value(&self) -> f64 {
        self.values[self.best_arm()]
    }

    /// Table III accuracy of choosing `arm` on this dataset.
    pub fn accuracy_of(&self, arm: usize) -> f64 {
        let best = self.best_value();
        if best <= 0.0 {
            return 100.0;
        }
        100.0 * (1.0 - (best - self.values[arm]).abs() / best)
    }
}

/// Dataset-generation seed: fixed so the whole catalog is reproducible
/// (replicate seeds vary per run; the *instances* are shared by all
/// replicates, as in the paper: "All experiments share the same input
/// datasets").
pub const CATALOG_SEED: u64 = 0x0DA7_A5E7;

/// The five random datasets.
pub fn random_datasets() -> Vec<Dataset> {
    random::SIZES
        .iter()
        .map(|&k| Dataset {
            name: random::name(k),
            family: Family::Random,
            values: random::generate(k, CATALOG_SEED),
        })
        .collect()
}

/// The five unimodal datasets.
pub fn unimodal_datasets() -> Vec<Dataset> {
    unimodal::SIZES
        .iter()
        .map(|&k| Dataset {
            name: unimodal::name(k),
            family: Family::Unimodal,
            values: unimodal::generate(k, CATALOG_SEED),
        })
        .collect()
}

/// The five C datasets, derived from the simulated APR scenarios.
pub fn c_datasets() -> Vec<Dataset> {
    BugScenario::catalog_c()
        .into_iter()
        .map(|s| Dataset {
            name: s.name.clone(),
            family: Family::C,
            values: s.value_distribution(),
        })
        .collect()
}

/// The five Java datasets, derived from the simulated APR scenarios.
pub fn java_datasets() -> Vec<Dataset> {
    BugScenario::catalog_java()
        .into_iter()
        .map(|s| Dataset {
            name: s.name.clone(),
            family: Family::Java,
            values: s.value_distribution(),
        })
        .collect()
}

/// All twenty datasets in the paper's table order:
/// random, unimodal, C, Java.
pub fn full_catalog() -> Vec<Dataset> {
    let mut v = random_datasets();
    v.extend(unimodal_datasets());
    v.extend(c_datasets());
    v.extend(java_datasets());
    v
}

/// Look up a catalog dataset by name.
pub fn by_name(name: &str) -> Option<Dataset> {
    full_catalog().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_twenty_datasets_in_order() {
        let c = full_catalog();
        assert_eq!(c.len(), 20);
        assert!(c[..5].iter().all(|d| d.family == Family::Random));
        assert!(c[5..10].iter().all(|d| d.family == Family::Unimodal));
        assert!(c[10..15].iter().all(|d| d.family == Family::C));
        assert!(c[15..].iter().all(|d| d.family == Family::Java));
    }

    #[test]
    fn sizes_match_tables() {
        let c = full_catalog();
        let sizes: Vec<usize> = c.iter().map(|d| d.size()).collect();
        assert_eq!(
            sizes,
            vec![
                64, 256, 1024, 4096, 16384, // random
                64, 256, 1024, 4096, 16384, // unimodal
                1000, 5000, 2000, 100, 50, // C
                100, 100, 100, 100, 100 // Java
            ]
        );
    }

    #[test]
    fn all_values_are_valid_bernoulli_means() {
        for d in full_catalog() {
            assert!(
                d.values.iter().all(|v| (0.0..=1.0).contains(v)),
                "{} has out-of-range values",
                d.name
            );
        }
    }

    #[test]
    fn bandit_roundtrip() {
        let d = by_name("random64").unwrap();
        let b = d.bandit();
        use mwu_core::bandit::Bandit;
        assert_eq!(b.num_arms(), 64);
        assert_eq!(b.best_arm(), d.best_arm());
    }

    #[test]
    fn accuracy_of_best_arm_is_100() {
        for d in full_catalog() {
            assert!((d.accuracy_of(d.best_arm()) - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn catalog_is_reproducible() {
        let a = full_catalog();
        let b = full_catalog();
        assert_eq!(a, b);
    }

    #[test]
    fn java_datasets_share_size_but_differ_in_values() {
        let j = java_datasets();
        assert!(j.iter().all(|d| d.size() == 100));
        for pair in j.windows(2) {
            assert_ne!(pair[0].values, pair[1].values);
        }
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("nope").is_none());
        assert_eq!(by_name("Chart26").unwrap().family, Family::Java);
    }
}
