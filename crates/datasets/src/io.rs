//! Plain-CSV persistence for datasets and generic result rows.
//!
//! The experiment binaries write every regenerated table/figure into
//! `results/` as CSV so figures can be replotted without rerunning; the
//! format here is deliberately dependency-free (two columns for datasets,
//! caller-defined rows for results).

use crate::catalog::{Dataset, Family};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Serialize a dataset as `index,value` CSV with a `# name=...,family=...`
/// header comment.
pub fn dataset_to_csv(d: &Dataset) -> String {
    let mut out = String::with_capacity(d.values.len() * 12 + 64);
    let _ = writeln!(out, "# name={},family={}", d.name, d.family.label());
    out.push_str("index,value\n");
    for (i, v) in d.values.iter().enumerate() {
        let _ = writeln!(out, "{i},{v:.12}");
    }
    out
}

/// Parse a dataset from the CSV produced by [`dataset_to_csv`].
pub fn dataset_from_csv<R: Read>(r: R) -> io::Result<Dataset> {
    let reader = BufReader::new(r);
    let mut name = String::from("unnamed");
    let mut family = Family::Random;
    let mut values = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            for kv in meta.split(',') {
                let mut it = kv.trim().splitn(2, '=');
                match (it.next(), it.next()) {
                    (Some("name"), Some(v)) => name = v.to_string(),
                    (Some("family"), Some(v)) => {
                        family = match v {
                            "random" => Family::Random,
                            "unimodal" => Family::Unimodal,
                            "C" => Family::C,
                            "Java" => Family::Java,
                            other => {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("unknown family {other:?}"),
                                ))
                            }
                        }
                    }
                    _ => {}
                }
            }
            continue;
        }
        if line == "index,value" {
            continue;
        }
        let mut cols = line.split(',');
        let _idx = cols.next();
        let v: f64 = cols
            .next()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: missing value column"),
                )
            })?
            .parse()
            .map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {e}"))
            })?;
        values.push(v);
    }
    if values.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "no values"));
    }
    Ok(Dataset {
        name,
        family,
        values,
    })
}

/// Write arbitrary CSV rows (header + rows of stringified cells) to a
/// writer. Cells containing commas are not expected and will panic in
/// debug builds.
pub fn write_csv<W: Write>(w: &mut W, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    writeln!(w, "{}", header.join(","))?;
    for row in rows {
        debug_assert!(row.iter().all(|c| !c.contains(',')), "comma in CSV cell");
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn dataset_csv_roundtrip() {
        let d = catalog::by_name("unimodal64").unwrap();
        let csv = dataset_to_csv(&d);
        let back = dataset_from_csv(csv.as_bytes()).unwrap();
        assert_eq!(back.name, d.name);
        assert_eq!(back.family, d.family);
        assert_eq!(back.values.len(), d.values.len());
        for (a, b) in back.values.iter().zip(d.values.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(dataset_from_csv("".as_bytes()).is_err());
        assert!(dataset_from_csv("index,value\n0,notanumber\n".as_bytes()).is_err());
        assert!(dataset_from_csv("# family=klingon\n0,0.5\n".as_bytes()).is_err());
    }

    #[test]
    fn write_csv_formats_rows() {
        let mut buf = Vec::new();
        write_csv(
            &mut buf,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n3,4\n");
    }
}
