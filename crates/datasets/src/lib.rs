//! # mwu-datasets
//!
//! The dataset catalog of the paper's §IV-A: each algorithm is evaluated on
//! four distribution families —
//!
//! * **random** — `k` option values sampled iid from the unit interval,
//!   `k ∈ {64, 256, 1024, 4096, 16384}`. "The larger the instance, the
//!   harder it is for the algorithm to converge, and it is likelier that
//!   multiple options have similar values."
//! * **unimodal** — `v(x) = a·x·e^(−bx) + c` with `a, b, c` drawn uniformly
//!   at random (b rescaled so the mode lands inside the support), same five
//!   sizes. Chosen "for generality because we have strong evidence that
//!   most bug repair scenarios are unimodal."
//! * **C** — five scenarios derived from the ManyBugs/`units` simulated
//!   substrate (`apr-sim`), option counts 1000 / 5000 / 2000 / 100 / 50.
//! * **Java** — five Defects4J-shaped scenarios, all with 100 options but
//!   different value distributions.
//!
//! [`catalog::full_catalog`] returns all twenty datasets in the paper's
//! table order; [`Dataset::bandit`] turns any of them into the Bernoulli
//! bandit environment the experiments run against.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod io;
pub mod random;
pub mod unimodal;

pub use catalog::{full_catalog, Dataset, Family};
