//! Agents, messages, and the per-round execution context.

use bytes::Bytes;
use rand::rngs::SmallRng;

/// Dense agent identifier within one [`crate::Network`].
pub type AgentId = usize;

/// A point-to-point message. Payloads are cheaply-cloneable byte buffers so
/// broadcast fan-out does not copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sender.
    pub from: AgentId,
    /// Recipient.
    pub to: AgentId,
    /// Opaque payload (application-defined encoding).
    pub payload: Bytes,
}

/// What one agent sees and can do during one round.
///
/// Created by the engine per (agent, round); sends are buffered and
/// delivered at the start of the *next* round (synchronous / round-based
/// message passing — the standard model for congestion analysis).
pub struct Context<'a> {
    pub(crate) id: AgentId,
    pub(crate) round: usize,
    pub(crate) n_agents: usize,
    pub(crate) inbox: &'a [Message],
    pub(crate) outbox: &'a mut Vec<Message>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) halted: &'a mut bool,
}

impl<'a> Context<'a> {
    /// This agent's id.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// Current round (0-based).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of agents in the network.
    pub fn n_agents(&self) -> usize {
        self.n_agents
    }

    /// Messages delivered to this agent this round (sent last round).
    pub fn inbox(&self) -> &[Message] {
        self.inbox
    }

    /// Queue a message for delivery next round.
    pub fn send(&mut self, to: AgentId, payload: Bytes) {
        assert!(to < self.n_agents, "recipient {to} out of range");
        self.outbox.push(Message {
            from: self.id,
            to,
            payload,
        });
    }

    /// Queue the same payload to every other agent (broadcast).
    ///
    /// Routed through [`Context::send`] so broadcast and point-to-point
    /// traffic share one delivery path — fault injection, byte counting,
    /// and range checks cannot diverge between the two.
    pub fn broadcast(&mut self, payload: Bytes) {
        for to in 0..self.n_agents {
            if to != self.id {
                self.send(to, payload.clone());
            }
        }
    }

    /// Deterministic per-agent-per-round RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Request that the whole network stop after this round.
    pub fn halt(&mut self) {
        *self.halted = true;
    }
}

/// A participant in a [`crate::Network`].
pub trait Agent {
    /// Run one round: read `ctx.inbox()`, optionally `ctx.send(..)`.
    fn step(&mut self, ctx: &mut Context<'_>);
}

impl<F: FnMut(&mut Context<'_>)> Agent for F {
    fn step(&mut self, ctx: &mut Context<'_>) {
        self(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_send_and_broadcast() {
        let mut outbox = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut halted = false;
        let inbox: Vec<Message> = vec![];
        let mut ctx = Context {
            id: 1,
            round: 0,
            n_agents: 4,
            inbox: &inbox,
            outbox: &mut outbox,
            rng: &mut rng,
            halted: &mut halted,
        };
        ctx.send(0, Bytes::from_static(b"hi"));
        ctx.broadcast(Bytes::from_static(b"all"));
        assert_eq!(outbox.len(), 1 + 3); // one direct + broadcast to 3 others
        assert!(outbox.iter().all(|m| m.from == 1));
        assert!(outbox.iter().all(|m| m.to != 1 || m.payload == "hi"));
    }

    #[test]
    #[should_panic]
    fn send_out_of_range_panics() {
        let mut outbox = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut halted = false;
        let inbox: Vec<Message> = vec![];
        let mut ctx = Context {
            id: 0,
            round: 0,
            n_agents: 2,
            inbox: &inbox,
            outbox: &mut outbox,
            rng: &mut rng,
            halted: &mut halted,
        };
        ctx.send(5, Bytes::new());
    }

    #[test]
    fn closures_are_agents() {
        let mut hits = 0usize;
        {
            let mut agent = |_ctx: &mut Context<'_>| {
                hits += 1;
            };
            let mut outbox = Vec::new();
            let mut rng = SmallRng::seed_from_u64(0);
            let mut halted = false;
            let inbox: Vec<Message> = vec![];
            let mut ctx = Context {
                id: 0,
                round: 0,
                n_agents: 1,
                inbox: &inbox,
                outbox: &mut outbox,
                rng: &mut rng,
                halted: &mut halted,
            };
            agent.step(&mut ctx);
        }
        assert_eq!(hits, 1);
    }
}
