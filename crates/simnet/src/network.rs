//! The discrete-time, round-based message-passing engine.

use crate::agent::{Agent, Context, Message};
use crate::stats::{NetStats, RoundStats};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A deterministic round-based network of agents.
///
/// Execution model: in round `t`, every agent runs once (in id order —
/// determinism matters more than simulated concurrency here, and agents
/// only interact through messages, which are not delivered until round
/// `t+1`, so the in-round order is unobservable to the agents themselves).
///
/// ```
/// use simnet::{Network, Context};
/// use bytes::Bytes;
///
/// // A ring: each agent forwards a token to its right neighbor.
/// let mut net = Network::new(4, 42);
/// for i in 0..4 {
///     net.add_agent(move |ctx: &mut Context<'_>| {
///         let next = (ctx.id() + 1) % ctx.n_agents();
///         if ctx.round() == 0 && ctx.id() == 0 {
///             ctx.send(next, Bytes::from_static(b"token"));
///         }
///         if !ctx.inbox().is_empty() {
///             ctx.send(next, ctx.inbox()[0].payload.clone());
///         }
///         let _ = i;
///     });
/// }
/// let stats = net.run(8);
/// assert_eq!(stats.rounds, 8);
/// assert!(stats.messages >= 8);
/// ```
pub struct Network {
    agents: Vec<Box<dyn Agent>>,
    expected_agents: usize,
    mailboxes: Vec<Vec<Message>>,
    next_mailboxes: Vec<Vec<Message>>,
    rngs: Vec<SmallRng>,
    stats: NetStats,
    history: Vec<RoundStats>,
    round: usize,
    halted: bool,
}

impl Network {
    /// Create a network expecting `n` agents, with deterministic per-agent
    /// RNG streams derived from `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            agents: Vec::with_capacity(n),
            expected_agents: n,
            mailboxes: (0..n).map(|_| Vec::new()).collect(),
            next_mailboxes: (0..n).map(|_| Vec::new()).collect(),
            rngs: (0..n as u64)
                .map(|i| SmallRng::seed_from_u64(mwu_seed(seed, i)))
                .collect(),
            stats: NetStats::default(),
            history: Vec::new(),
            round: 0,
            halted: false,
        }
    }

    /// Register the next agent. Agents receive ids in registration order.
    ///
    /// # Panics
    /// Panics if more than the declared `n` agents are added.
    pub fn add_agent<A: Agent + 'static>(&mut self, agent: A) {
        assert!(
            self.agents.len() < self.expected_agents,
            "network already has {} agents",
            self.expected_agents
        );
        self.agents.push(Box::new(agent));
    }

    /// Number of registered agents.
    pub fn n_agents(&self) -> usize {
        self.agents.len()
    }

    /// Whether an agent requested a halt.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Run one round; returns its statistics.
    ///
    /// # Panics
    /// Panics if fewer agents are registered than declared.
    pub fn step(&mut self) -> RoundStats {
        assert_eq!(
            self.agents.len(),
            self.expected_agents,
            "register all agents before running"
        );
        let n = self.agents.len();
        let mut outbox: Vec<Message> = Vec::new();
        let mut round_messages = 0u64;
        let mut round_bytes = 0u64;
        let mut in_degree = vec![0usize; n];
        let mut out_degree = vec![0usize; n];

        for id in 0..n {
            let mut halted = self.halted;
            let mut ctx = Context {
                id,
                round: self.round,
                n_agents: n,
                inbox: &self.mailboxes[id],
                outbox: &mut outbox,
                rng: &mut self.rngs[id],
                halted: &mut halted,
            };
            self.agents[id].step(&mut ctx);
            self.halted = halted;
        }

        for m in outbox.drain(..) {
            round_messages += 1;
            round_bytes += m.payload.len() as u64;
            in_degree[m.to] += 1;
            out_degree[m.from] += 1;
            self.next_mailboxes[m.to].push(m);
        }

        for (mb, next) in self
            .mailboxes
            .iter_mut()
            .zip(self.next_mailboxes.iter_mut())
        {
            mb.clear();
            std::mem::swap(mb, next);
        }

        let rs = RoundStats {
            round: self.round,
            messages: round_messages,
            bytes: round_bytes,
            max_in_degree: in_degree.iter().copied().max().unwrap_or(0),
            max_out_degree: out_degree.iter().copied().max().unwrap_or(0),
        };
        self.stats.absorb(&rs);
        self.history.push(rs);
        self.round += 1;
        rs
    }

    /// Run up to `rounds` rounds (stopping early on halt); returns the
    /// cumulative statistics.
    pub fn run(&mut self, rounds: usize) -> NetStats {
        for _ in 0..rounds {
            if self.halted {
                break;
            }
            self.step();
        }
        self.stats
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Per-round statistics history.
    pub fn history(&self) -> &[RoundStats] {
        &self.history
    }
}

/// Seed derivation (mirrors `mwu_core::rng::mix` without the dependency —
/// simnet is a substrate below mwu-core in spirit; keeping it dependency-free
/// of the algorithm crate avoids a cycle since mwrepair composes both).
fn mwu_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Context;
    use bytes::Bytes;

    #[test]
    fn messages_delivered_next_round() {
        let mut net = Network::new(2, 0);
        net.add_agent(|ctx: &mut Context<'_>| {
            if ctx.round() == 0 {
                ctx.send(1, Bytes::from_static(b"ping"));
            }
        });
        net.add_agent(|ctx: &mut Context<'_>| {
            if ctx.round() == 0 {
                assert!(ctx.inbox().is_empty(), "delivery must lag one round");
            }
            if ctx.round() == 1 {
                assert_eq!(ctx.inbox().len(), 1);
                assert_eq!(&ctx.inbox()[0].payload[..], b"ping");
            }
        });
        net.run(2);
    }

    #[test]
    fn congestion_of_star_pattern_is_n_minus_one() {
        // Everyone messages agent 0 — a gather, congestion n−1.
        let n = 10;
        let mut net = Network::new(n, 1);
        for _ in 0..n {
            net.add_agent(|ctx: &mut Context<'_>| {
                if ctx.id() != 0 {
                    ctx.send(0, Bytes::new());
                }
            });
        }
        let rs = net.step();
        assert_eq!(rs.max_in_degree, n - 1);
        assert_eq!(rs.messages, (n - 1) as u64);
    }

    #[test]
    fn halt_stops_the_run() {
        let mut net = Network::new(1, 0);
        net.add_agent(|ctx: &mut Context<'_>| {
            if ctx.round() == 2 {
                ctx.halt();
            }
        });
        let stats = net.run(100);
        assert_eq!(stats.rounds, 3);
        assert!(net.is_halted());
    }

    #[test]
    fn deterministic_across_constructions() {
        fn run_once() -> (u64, usize) {
            let mut net = Network::new(8, 99);
            for _ in 0..8 {
                net.add_agent(|ctx: &mut Context<'_>| {
                    use rand::Rng;
                    let n = ctx.n_agents();
                    let me = ctx.id();
                    let mut to = ctx.rng().gen_range(0..n - 1);
                    if to >= me {
                        to += 1;
                    }
                    ctx.send(to, Bytes::new());
                });
            }
            let s = net.run(20);
            (s.messages, s.peak_congestion)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic]
    fn running_underpopulated_network_panics() {
        let mut net = Network::new(3, 0);
        net.add_agent(|_: &mut Context<'_>| {});
        net.step();
    }

    #[test]
    fn history_matches_rounds() {
        let mut net = Network::new(2, 0);
        net.add_agent(|_: &mut Context<'_>| {});
        net.add_agent(|_: &mut Context<'_>| {});
        net.run(5);
        assert_eq!(net.history().len(), 5);
        assert_eq!(net.history()[3].round, 3);
    }
}
