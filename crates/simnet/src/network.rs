//! The discrete-time, round-based message-passing engine.

use crate::agent::{Agent, Context, Message};
use crate::faults::{FaultPlan, FaultRoundStats, MessageFate, RetryPolicy};
use crate::stats::{NetStats, RoundStats};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A message whose delivery is deferred: a delayed original, or a scheduled
/// retransmission of a dropped one.
struct PendingDelivery {
    /// Deliver (into next-round mailboxes) at the end of this round.
    due: usize,
    msg: Message,
    /// Fate key of the *original* send (round, nonce) — retransmissions
    /// re-draw their fate under the same key with a bumped attempt.
    key_round: usize,
    nonce: u64,
    attempt: u32,
    /// True while the entry still needs a fate draw (retransmission);
    /// false once a fate has already been decided (plain delayed delivery).
    is_retry: bool,
}

/// A deterministic round-based network of agents.
///
/// Execution model: in round `t`, every agent runs once (in id order —
/// determinism matters more than simulated concurrency here, and agents
/// only interact through messages, which are not delivered until round
/// `t+1`, so the in-round order is unobservable to the agents themselves).
///
/// ```
/// use simnet::{Network, Context};
/// use bytes::Bytes;
///
/// // A ring: each agent forwards a token to its right neighbor.
/// let mut net = Network::new(4, 42);
/// for i in 0..4 {
///     net.add_agent(move |ctx: &mut Context<'_>| {
///         let next = (ctx.id() + 1) % ctx.n_agents();
///         if ctx.round() == 0 && ctx.id() == 0 {
///             ctx.send(next, Bytes::from_static(b"token"));
///         }
///         if !ctx.inbox().is_empty() {
///             ctx.send(next, ctx.inbox()[0].payload.clone());
///         }
///         let _ = i;
///     });
/// }
/// let stats = net.run(8);
/// assert_eq!(stats.rounds, 8);
/// assert!(stats.messages >= 8);
/// ```
pub struct Network {
    agents: Vec<Box<dyn Agent>>,
    expected_agents: usize,
    mailboxes: Vec<Vec<Message>>,
    next_mailboxes: Vec<Vec<Message>>,
    rngs: Vec<SmallRng>,
    stats: NetStats,
    history: Vec<RoundStats>,
    round: usize,
    halted: bool,
    faults: Option<FaultPlan>,
    retry: Option<RetryPolicy>,
    pending: Vec<PendingDelivery>,
}

impl Network {
    /// Create a network expecting `n` agents, with deterministic per-agent
    /// RNG streams derived from `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            agents: Vec::with_capacity(n),
            expected_agents: n,
            mailboxes: (0..n).map(|_| Vec::new()).collect(),
            next_mailboxes: (0..n).map(|_| Vec::new()).collect(),
            rngs: (0..n as u64)
                .map(|i| SmallRng::seed_from_u64(mwu_seed(seed, i)))
                .collect(),
            stats: NetStats::default(),
            history: Vec::new(),
            round: 0,
            halted: false,
            faults: None,
            retry: None,
            pending: Vec::new(),
        }
    }

    /// Install a fault plan. Subsequent rounds are subject to its drop /
    /// delay / duplicate / reorder / crash decisions; per-round counts
    /// appear in [`RoundStats::faults`]. A quiescent plan is equivalent to
    /// none.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = if plan.config().is_quiescent() {
            None
        } else {
            Some(plan)
        };
    }

    /// Enable retransmission of dropped messages under `policy` (seeded
    /// exponential backoff; see [`RetryPolicy`]). Only meaningful together
    /// with [`Network::set_faults`].
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// The fault plan in force, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Register the next agent. Agents receive ids in registration order.
    ///
    /// # Panics
    /// Panics if more than the declared `n` agents are added.
    pub fn add_agent<A: Agent + 'static>(&mut self, agent: A) {
        assert!(
            self.agents.len() < self.expected_agents,
            "network already has {} agents",
            self.expected_agents
        );
        self.agents.push(Box::new(agent));
    }

    /// Number of registered agents.
    pub fn n_agents(&self) -> usize {
        self.agents.len()
    }

    /// Whether an agent requested a halt.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Run one round; returns its statistics.
    ///
    /// With a fault plan installed (see [`Network::set_faults`]) the
    /// delivery path consults it per message: drops vanish (or are
    /// retransmitted under the retry policy), delays defer delivery,
    /// duplicates inject an extra copy, reorder reverses mailbox order, and
    /// crashed agents neither run nor keep the messages delivered to them
    /// while down. Traffic statistics count *deliveries* (so the fault-free
    /// path is unchanged, and duplicates/retransmissions show up as real
    /// traffic).
    ///
    /// # Panics
    /// Panics if fewer agents are registered than declared.
    pub fn step(&mut self) -> RoundStats {
        assert_eq!(
            self.agents.len(),
            self.expected_agents,
            "register all agents before running"
        );
        let n = self.agents.len();
        let round = self.round;
        let plan = self.faults;
        let mut faults = FaultRoundStats::default();

        // Crashed agents do not run, and whatever was delivered to them
        // while down is lost.
        let mut crashed = vec![false; n];
        if let Some(p) = &plan {
            for (id, down) in crashed.iter_mut().enumerate() {
                if p.is_crashed(id, round) {
                    *down = true;
                    faults.crashed += 1;
                    faults.lost_to_crash += self.mailboxes[id].len() as u64;
                    self.mailboxes[id].clear();
                }
            }
        }

        let mut outbox: Vec<Message> = Vec::new();
        let mut round_messages = 0u64;
        let mut round_bytes = 0u64;
        let mut in_degree = vec![0usize; n];
        let mut out_degree = vec![0usize; n];

        for (id, &down) in crashed.iter().enumerate() {
            if down {
                continue;
            }
            let mut halted = self.halted;
            let mut ctx = Context {
                id,
                round,
                n_agents: n,
                inbox: &self.mailboxes[id],
                outbox: &mut outbox,
                rng: &mut self.rngs[id],
                halted: &mut halted,
            };
            self.agents[id].step(&mut ctx);
            self.halted = halted;
        }

        let deliver = |m: Message,
                       next_mailboxes: &mut Vec<Vec<Message>>,
                       round_messages: &mut u64,
                       round_bytes: &mut u64,
                       in_degree: &mut Vec<usize>,
                       out_degree: &mut Vec<usize>| {
            *round_messages += 1;
            *round_bytes += m.payload.len() as u64;
            in_degree[m.to] += 1;
            out_degree[m.from] += 1;
            next_mailboxes[m.to].push(m);
        };

        // Fresh sends: fate each message, then deliver / defer / drop.
        for (nonce, m) in outbox.drain(..).enumerate() {
            let nonce = nonce as u64;
            let fate = match &plan {
                Some(p) => p.message_fate(round, m.from, m.to, nonce, 0),
                None => MessageFate::Deliver,
            };
            match fate {
                MessageFate::Deliver => deliver(
                    m,
                    &mut self.next_mailboxes,
                    &mut round_messages,
                    &mut round_bytes,
                    &mut in_degree,
                    &mut out_degree,
                ),
                MessageFate::Duplicate => {
                    faults.duplicated += 1;
                    deliver(
                        m.clone(),
                        &mut self.next_mailboxes,
                        &mut round_messages,
                        &mut round_bytes,
                        &mut in_degree,
                        &mut out_degree,
                    );
                    deliver(
                        m,
                        &mut self.next_mailboxes,
                        &mut round_messages,
                        &mut round_bytes,
                        &mut in_degree,
                        &mut out_degree,
                    );
                }
                MessageFate::Delay(d) => {
                    faults.delayed += 1;
                    self.pending.push(PendingDelivery {
                        due: round + d as usize,
                        msg: m,
                        key_round: round,
                        nonce,
                        attempt: 0,
                        is_retry: false,
                    });
                }
                MessageFate::Drop => {
                    faults.dropped += 1;
                    if let Some(pol) = &self.retry {
                        if pol.max_attempts >= 1 {
                            let jitter = plan
                                .as_ref()
                                .expect("drop implies plan")
                                .retry_jitter(round, nonce, 1);
                            faults.retried += 1;
                            self.pending.push(PendingDelivery {
                                due: round + pol.backoff_rounds(1, jitter),
                                msg: m,
                                key_round: round,
                                nonce,
                                attempt: 1,
                                is_retry: true,
                            });
                        } else {
                            faults.retry_exhausted += 1;
                        }
                    }
                }
            }
        }

        // Deferred deliveries (delays and retransmissions) that come due
        // now. Order-stable extraction keeps the schedule deterministic.
        if !self.pending.is_empty() {
            let mut later = Vec::with_capacity(self.pending.len());
            let mut due_now = Vec::new();
            for p in self.pending.drain(..) {
                if p.due <= round {
                    due_now.push(p);
                } else {
                    later.push(p);
                }
            }
            self.pending = later;
            for p in due_now {
                if !p.is_retry {
                    deliver(
                        p.msg,
                        &mut self.next_mailboxes,
                        &mut round_messages,
                        &mut round_bytes,
                        &mut in_degree,
                        &mut out_degree,
                    );
                    continue;
                }
                let fate = plan.as_ref().expect("retry implies plan").message_fate(
                    p.key_round,
                    p.msg.from,
                    p.msg.to,
                    p.nonce,
                    p.attempt,
                );
                match fate {
                    MessageFate::Deliver => deliver(
                        p.msg,
                        &mut self.next_mailboxes,
                        &mut round_messages,
                        &mut round_bytes,
                        &mut in_degree,
                        &mut out_degree,
                    ),
                    MessageFate::Duplicate => {
                        faults.duplicated += 1;
                        deliver(
                            p.msg.clone(),
                            &mut self.next_mailboxes,
                            &mut round_messages,
                            &mut round_bytes,
                            &mut in_degree,
                            &mut out_degree,
                        );
                        deliver(
                            p.msg,
                            &mut self.next_mailboxes,
                            &mut round_messages,
                            &mut round_bytes,
                            &mut in_degree,
                            &mut out_degree,
                        );
                    }
                    MessageFate::Delay(d) => {
                        faults.delayed += 1;
                        self.pending.push(PendingDelivery {
                            due: round + d as usize,
                            is_retry: false,
                            ..p
                        });
                    }
                    MessageFate::Drop => {
                        faults.dropped += 1;
                        let pol = self.retry.as_ref().expect("retry entry implies policy");
                        if p.attempt < pol.max_attempts {
                            let next = p.attempt + 1;
                            let jitter = plan.as_ref().expect("retry implies plan").retry_jitter(
                                p.key_round,
                                p.nonce,
                                next,
                            );
                            faults.retried += 1;
                            self.pending.push(PendingDelivery {
                                due: round + pol.backoff_rounds(next, jitter),
                                attempt: next,
                                ..p
                            });
                        } else {
                            faults.retry_exhausted += 1;
                        }
                    }
                }
            }
        }

        // Reorder: reverse next-round delivery order for loaded mailboxes.
        if plan.as_ref().is_some_and(|p| p.reorders(round)) {
            for mb in &mut self.next_mailboxes {
                if mb.len() >= 2 {
                    mb.reverse();
                    faults.reordered += 1;
                }
            }
        }

        for (mb, next) in self
            .mailboxes
            .iter_mut()
            .zip(self.next_mailboxes.iter_mut())
        {
            mb.clear();
            std::mem::swap(mb, next);
        }

        let rs = RoundStats {
            round,
            messages: round_messages,
            bytes: round_bytes,
            max_in_degree: in_degree.iter().copied().max().unwrap_or(0),
            max_out_degree: out_degree.iter().copied().max().unwrap_or(0),
            faults,
        };
        self.stats.absorb(&rs);
        self.history.push(rs);
        self.round += 1;
        rs
    }

    /// Run up to `rounds` rounds (stopping early on halt); returns the
    /// cumulative statistics.
    pub fn run(&mut self, rounds: usize) -> NetStats {
        for _ in 0..rounds {
            if self.halted {
                break;
            }
            self.step();
        }
        self.stats
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Per-round statistics history.
    pub fn history(&self) -> &[RoundStats] {
        &self.history
    }
}

/// Seed derivation (mirrors `mwu_core::rng::mix` without the dependency —
/// simnet is a substrate below mwu-core in spirit; keeping it dependency-free
/// of the algorithm crate avoids a cycle since mwrepair composes both).
fn mwu_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Context;
    use bytes::Bytes;

    #[test]
    fn messages_delivered_next_round() {
        let mut net = Network::new(2, 0);
        net.add_agent(|ctx: &mut Context<'_>| {
            if ctx.round() == 0 {
                ctx.send(1, Bytes::from_static(b"ping"));
            }
        });
        net.add_agent(|ctx: &mut Context<'_>| {
            if ctx.round() == 0 {
                assert!(ctx.inbox().is_empty(), "delivery must lag one round");
            }
            if ctx.round() == 1 {
                assert_eq!(ctx.inbox().len(), 1);
                assert_eq!(&ctx.inbox()[0].payload[..], b"ping");
            }
        });
        net.run(2);
    }

    #[test]
    fn congestion_of_star_pattern_is_n_minus_one() {
        // Everyone messages agent 0 — a gather, congestion n−1.
        let n = 10;
        let mut net = Network::new(n, 1);
        for _ in 0..n {
            net.add_agent(|ctx: &mut Context<'_>| {
                if ctx.id() != 0 {
                    ctx.send(0, Bytes::new());
                }
            });
        }
        let rs = net.step();
        assert_eq!(rs.max_in_degree, n - 1);
        assert_eq!(rs.messages, (n - 1) as u64);
    }

    #[test]
    fn halt_stops_the_run() {
        let mut net = Network::new(1, 0);
        net.add_agent(|ctx: &mut Context<'_>| {
            if ctx.round() == 2 {
                ctx.halt();
            }
        });
        let stats = net.run(100);
        assert_eq!(stats.rounds, 3);
        assert!(net.is_halted());
    }

    #[test]
    fn deterministic_across_constructions() {
        fn run_once() -> (u64, usize) {
            let mut net = Network::new(8, 99);
            for _ in 0..8 {
                net.add_agent(|ctx: &mut Context<'_>| {
                    use rand::Rng;
                    let n = ctx.n_agents();
                    let me = ctx.id();
                    let mut to = ctx.rng().gen_range(0..n - 1);
                    if to >= me {
                        to += 1;
                    }
                    ctx.send(to, Bytes::new());
                });
            }
            let s = net.run(20);
            (s.messages, s.peak_congestion)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic]
    fn running_underpopulated_network_panics() {
        let mut net = Network::new(3, 0);
        net.add_agent(|_: &mut Context<'_>| {});
        net.step();
    }

    #[test]
    fn quiescent_faults_change_nothing() {
        fn run(with_plan: bool) -> NetStats {
            let mut net = Network::new(6, 7);
            if with_plan {
                net.set_faults(FaultPlan::quiescent());
            }
            for _ in 0..6 {
                net.add_agent(|ctx: &mut Context<'_>| {
                    let to = (ctx.id() + 1) % ctx.n_agents();
                    ctx.send(to, Bytes::from_static(b"x"));
                });
            }
            net.run(10)
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn drops_reduce_deliveries_and_are_counted() {
        let mut net = Network::new(4, 3);
        net.set_faults(FaultPlan::new(9, crate::faults::FaultConfig::drops(0.5)));
        for _ in 0..4 {
            net.add_agent(|ctx: &mut Context<'_>| {
                ctx.broadcast(Bytes::from_static(b"g"));
            });
        }
        let stats = net.run(50);
        // 4 agents × 3 peers × 50 rounds = 600 sends; about half must drop.
        assert!(
            stats.faults.dropped > 150,
            "dropped {}",
            stats.faults.dropped
        );
        assert!(
            stats.messages < 550,
            "deliveries {} not reduced by drops",
            stats.messages
        );
        assert_eq!(stats.faults.retried, 0, "no retry policy installed");
    }

    #[test]
    fn retries_recover_dropped_messages() {
        fn total_delivered(retry: bool) -> (u64, FaultRoundStats) {
            let mut net = Network::new(2, 3);
            net.set_faults(FaultPlan::new(5, crate::faults::FaultConfig::drops(0.4)));
            if retry {
                net.set_retry(RetryPolicy {
                    max_attempts: 5,
                    base_delay: 1,
                });
            }
            net.add_agent(|ctx: &mut Context<'_>| {
                if ctx.round() < 40 {
                    ctx.send(1, Bytes::from_static(b"m"));
                }
            });
            net.add_agent(|_: &mut Context<'_>| {});
            let s = net.run(90);
            (s.messages, s.faults)
        }
        let (without, _) = total_delivered(false);
        let (with, faults) = total_delivered(true);
        assert!(faults.retried > 0, "retries should be scheduled");
        assert!(
            with > without,
            "retry delivered {with} <= no-retry {without}"
        );
        // With 5 attempts at 40% drop, nearly all 40 sends eventually land.
        assert!(with >= 38, "only {with}/40 delivered with retries");
    }

    #[test]
    fn delayed_messages_arrive_late_not_never() {
        let cfg = crate::faults::FaultConfig {
            delay_rate: 1.0,
            max_delay: 3,
            ..crate::faults::FaultConfig::default()
        };
        let mut net = Network::new(2, 1);
        net.set_faults(FaultPlan::new(2, cfg));
        net.add_agent(|ctx: &mut Context<'_>| {
            if ctx.round() == 0 {
                ctx.send(1, Bytes::from_static(b"late"));
            }
        });
        net.add_agent(|_: &mut Context<'_>| {});
        // Round 0: send is deferred. It must land within max_delay rounds.
        let mut delivered_round = None;
        for r in 0..8 {
            let rs = net.step();
            if rs.messages > 0 {
                delivered_round = Some(r);
                break;
            }
        }
        let r = delivered_round.expect("delayed message never delivered");
        assert!((1..=3).contains(&r), "delivered in round {r}");
        assert_eq!(net.stats().faults.delayed, 1);
    }

    #[test]
    fn duplicates_inject_extra_copies() {
        let cfg = crate::faults::FaultConfig {
            duplicate_rate: 1.0,
            ..crate::faults::FaultConfig::default()
        };
        let mut net = Network::new(2, 1);
        net.set_faults(FaultPlan::new(4, cfg));
        net.add_agent(|ctx: &mut Context<'_>| {
            if ctx.round() == 0 {
                ctx.send(1, Bytes::from_static(b"d"));
            }
        });
        net.add_agent(|ctx: &mut Context<'_>| {
            if ctx.round() == 1 {
                assert_eq!(ctx.inbox().len(), 2, "duplicate should deliver twice");
            }
        });
        let stats = net.run(2);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.faults.duplicated, 1);
    }

    #[test]
    fn crashed_agents_skip_rounds_and_lose_mail() {
        let cfg = crate::faults::FaultConfig {
            crash_rate: 0.1,
            crash_length: 3,
            ..crate::faults::FaultConfig::default()
        };
        let mut net = Network::new(4, 2);
        net.set_faults(FaultPlan::new(8, cfg));
        for _ in 0..4 {
            net.add_agent(|ctx: &mut Context<'_>| {
                ctx.broadcast(Bytes::from_static(b"hb"));
            });
        }
        let stats = net.run(60);
        assert!(
            stats.faults.crashed > 0,
            "no crashes at rate 0.1 over 240 draws"
        );
        assert!(
            stats.faults.lost_to_crash > 0,
            "crashed broadcast targets should lose mail"
        );
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        fn run_once() -> (NetStats, Vec<RoundStats>) {
            let mut net = Network::new(5, 11);
            net.set_faults(FaultPlan::new(13, crate::faults::FaultConfig::mixed(0.2)));
            net.set_retry(RetryPolicy::default());
            for _ in 0..5 {
                net.add_agent(|ctx: &mut Context<'_>| {
                    use rand::Rng;
                    let n = ctx.n_agents();
                    let to = ctx.rng().gen_range(0..n);
                    if to != ctx.id() {
                        ctx.send(to, Bytes::from_static(b"gossip"));
                    }
                });
            }
            net.run(40);
            (net.stats(), net.history().to_vec())
        }
        let (s1, h1) = run_once();
        let (s2, h2) = run_once();
        assert_eq!(s1, s2);
        assert_eq!(h1, h2);
        assert!(s1.faults.total() > 0, "mixed(0.2) should inject something");
    }

    #[test]
    fn history_matches_rounds() {
        let mut net = Network::new(2, 0);
        net.add_agent(|_: &mut Context<'_>| {});
        net.add_agent(|_: &mut Context<'_>| {});
        net.run(5);
        assert_eq!(net.history().len(), 5);
        assert_eq!(net.history()[3].round, 3);
    }
}
