//! Balls-into-bins congestion analysis (paper §II-C).
//!
//! In Distributed MWU every agent observes one uniformly random neighbor
//! per round, so with `n` agents the per-round communication load is a
//! classic balls-into-bins process with `n` balls and `n` bins. The maximum
//! load — the congestion of the heaviest-hit node — is
//! `Θ(ln n / ln ln n)` with probability at least `1 − 1/n` (Raab &
//! Steger), which is the Table I communication entry for Distributed.
//!
//! This module provides both a direct simulation (used by the `congestion`
//! experiment binary to regenerate the bound empirically) and the
//! closed-form leading term.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Throw `balls` balls into `bins` bins uniformly; return the maximum load.
pub fn balls_into_bins_max(balls: usize, bins: usize, rng: &mut SmallRng) -> usize {
    assert!(bins > 0);
    let mut load = vec![0u32; bins];
    for _ in 0..balls {
        load[rng.gen_range(0..bins)] += 1;
    }
    load.into_iter().max().unwrap_or(0) as usize
}

/// Leading-order expected maximum load for `n` balls in `n` bins:
/// `ln n / ln ln n`.
pub fn expected_max_load(n: usize) -> f64 {
    if n < 3 {
        return n as f64;
    }
    let ln_n = (n as f64).ln();
    ln_n / ln_n.ln()
}

/// Empirical mean of the maximum load over `trials` independent throws of
/// `n` balls into `n` bins.
pub fn mean_max_load(n: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sum = 0usize;
    for _ in 0..trials {
        sum += balls_into_bins_max(n, n, &mut rng);
    }
    sum as f64 / trials as f64
}

/// Fraction of `trials` in which the max load exceeded `bound`.
/// Used to verify the "with probability ≥ 1 − 1/n" claim empirically.
pub fn exceedance_rate(n: usize, bound: f64, trials: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut exceed = 0usize;
    for _ in 0..trials {
        if balls_into_bins_max(n, n, &mut rng) as f64 > bound {
            exceed += 1;
        }
    }
    exceed as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_load_at_least_ceiling_of_mean() {
        let mut rng = SmallRng::seed_from_u64(0);
        // n balls in n bins: max load ≥ 1 always (pigeonhole on non-empty).
        for n in [8, 64, 512] {
            let m = balls_into_bins_max(n, n, &mut rng);
            assert!(m >= 1 && m <= n);
        }
    }

    #[test]
    fn closed_form_grows_sublogarithmically() {
        assert!(expected_max_load(100) < expected_max_load(10_000));
        // ln n / ln ln n is far below n.
        assert!(expected_max_load(10_000) < 10.0);
    }

    #[test]
    fn empirical_mean_tracks_theory_within_constant() {
        for n in [64usize, 1024] {
            let emp = mean_max_load(n, 200, 7);
            let theory = expected_max_load(n);
            // The constant in Θ(·) is known to be close to 1; allow [1, 4].
            assert!(
                emp > theory && emp < 4.0 * theory,
                "n={n}: empirical {emp} vs theory {theory}"
            );
        }
    }

    #[test]
    fn high_probability_bound_holds() {
        // With bound 3·(ln n / ln ln n), exceedance should be rare.
        let n = 1024;
        let rate = exceedance_rate(n, 3.0 * expected_max_load(n), 300, 11);
        assert!(rate < 0.05, "exceedance rate {rate}");
    }

    #[test]
    fn tiny_n_is_safe() {
        assert_eq!(expected_max_load(1), 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(balls_into_bins_max(1, 1, &mut rng), 1);
        assert_eq!(balls_into_bins_max(0, 5, &mut rng), 0);
    }
}
