//! Communication topologies and their per-round congestion profiles.
//!
//! The three MWU variants induce three different communication patterns:
//! Standard and Slate synchronize through a (logical) master each round — a
//! star gather/scatter whose congestion equals the agent count — while
//! Distributed's random-neighbor observation induces a sparse random graph
//! whose congestion is the balls-into-bins maximum load.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A communication pattern over `n` agents for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every agent exchanges with a central master (Standard/Slate's
    /// global weight synchronization).
    Star,
    /// Every agent messages every other agent (the naive all-gather that a
    /// masterless full-information variant would need).
    Complete,
    /// Every agent observes one uniformly random *other* agent
    /// (Distributed's sample step).
    RandomNeighbor,
    /// Each agent messages its clockwise neighbor on a ring — the minimal-
    /// congestion structured topology (congestion exactly 1).
    Ring,
    /// Each agent observes `d` uniformly random distinct other agents —
    /// the gossip generalization of `RandomNeighbor` (congestion is the
    /// max load of d·n balls in n bins).
    KRegularRandom(usize),
}

impl Topology {
    /// Generate the directed edges (from → to) of one round.
    pub fn edges(&self, n: usize, rng: &mut SmallRng) -> Vec<(usize, usize)> {
        match self {
            Topology::Star => {
                // Gather to 0 and scatter back.
                let mut e = Vec::with_capacity(2 * (n.saturating_sub(1)));
                for i in 1..n {
                    e.push((i, 0));
                    e.push((0, i));
                }
                e
            }
            Topology::Complete => {
                let mut e = Vec::with_capacity(n * n.saturating_sub(1));
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            e.push((i, j));
                        }
                    }
                }
                e
            }
            Topology::RandomNeighbor => {
                let mut e = Vec::with_capacity(n);
                for i in 0..n {
                    if n < 2 {
                        break;
                    }
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    // Observation of j by i = a message j → i.
                    e.push((j, i));
                }
                e
            }
            Topology::Ring => {
                if n < 2 {
                    return Vec::new();
                }
                (0..n).map(|i| (i, (i + 1) % n)).collect()
            }
            Topology::KRegularRandom(d) => {
                let mut e = Vec::with_capacity(n * d);
                if n < 2 {
                    return e;
                }
                let d = (*d).min(n - 1);
                for i in 0..n {
                    // d distinct random neighbors via partial Fisher–Yates
                    // over a small rejection loop (d ≪ n in practice).
                    let mut picked = Vec::with_capacity(d);
                    while picked.len() < d {
                        let mut j = rng.gen_range(0..n - 1);
                        if j >= i {
                            j += 1;
                        }
                        if !picked.contains(&j) {
                            picked.push(j);
                        }
                    }
                    for j in picked {
                        e.push((j, i));
                    }
                }
                e
            }
        }
    }

    /// Max in-degree of one generated round.
    pub fn congestion(&self, n: usize, rng: &mut SmallRng) -> usize {
        let mut in_deg = vec![0usize; n];
        for (_, to) in self.edges(n, rng) {
            in_deg[to] += 1;
        }
        in_deg.into_iter().max().unwrap_or(0)
    }

    /// Analytic congestion: the Table I communication entry.
    pub fn analytic_congestion(&self, n: usize) -> f64 {
        match self {
            Topology::Star => (n.saturating_sub(1)) as f64,
            Topology::Complete => (n.saturating_sub(1)) as f64,
            Topology::RandomNeighbor => crate::congestion::expected_max_load(n),
            Topology::Ring => 1.0_f64.min(n.saturating_sub(1) as f64),
            // d·n balls into n bins: leading term d + O(√(d ln n)); we use
            // the simple additive bound d + ln n / ln ln n.
            Topology::KRegularRandom(d) => *d as f64 + crate::congestion::expected_max_load(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn star_congestion_is_linear() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(Topology::Star.congestion(16, &mut rng), 15);
        assert_eq!(Topology::Star.analytic_congestion(16), 15.0);
    }

    #[test]
    fn complete_has_n_squared_edges() {
        let mut rng = SmallRng::seed_from_u64(0);
        let e = Topology::Complete.edges(8, &mut rng);
        assert_eq!(e.len(), 8 * 7);
        assert_eq!(Topology::Complete.congestion(8, &mut rng), 7);
    }

    #[test]
    fn random_neighbor_congestion_sublinear() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 4096;
        let c = Topology::RandomNeighbor.congestion(n, &mut rng);
        assert!(c >= 1);
        assert!(
            (c as f64) < 6.0 * Topology::RandomNeighbor.analytic_congestion(n),
            "congestion {c}"
        );
    }

    #[test]
    fn random_neighbor_never_self_observes() {
        let mut rng = SmallRng::seed_from_u64(5);
        for (from, to) in Topology::RandomNeighbor.edges(64, &mut rng) {
            assert_ne!(from, to);
        }
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(Topology::Star.edges(1, &mut rng).len(), 0);
        assert_eq!(Topology::RandomNeighbor.edges(1, &mut rng).len(), 0);
        assert_eq!(Topology::Complete.congestion(1, &mut rng), 0);
        assert_eq!(Topology::Ring.edges(1, &mut rng).len(), 0);
        assert_eq!(Topology::KRegularRandom(3).edges(1, &mut rng).len(), 0);
    }

    #[test]
    fn ring_congestion_is_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        let e = Topology::Ring.edges(10, &mut rng);
        assert_eq!(e.len(), 10);
        assert_eq!(Topology::Ring.congestion(10, &mut rng), 1);
        assert_eq!(Topology::Ring.analytic_congestion(10), 1.0);
        // Every node has out-degree exactly 1 and in-degree exactly 1.
        let mut out_deg = [0; 10];
        for (f, _) in e {
            out_deg[f] += 1;
        }
        assert!(out_deg.iter().all(|&d| d == 1));
    }

    #[test]
    fn k_regular_has_dn_edges_with_distinct_neighbors() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = 4;
        let n = 50;
        let e = Topology::KRegularRandom(d).edges(n, &mut rng);
        assert_eq!(e.len(), d * n);
        // No self-edges, no duplicate (observer, observed) pairs.
        let mut seen = std::collections::HashSet::new();
        for (from, to) in e {
            assert_ne!(from, to);
            assert!(seen.insert((from, to)), "duplicate edge ({from},{to})");
        }
    }

    #[test]
    fn k_regular_congestion_near_analytic() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 2048;
        let c = Topology::KRegularRandom(3).congestion(n, &mut rng);
        let analytic = Topology::KRegularRandom(3).analytic_congestion(n);
        assert!(
            (c as f64) < 4.0 * analytic,
            "congestion {c} vs analytic {analytic}"
        );
        assert!(c >= 3, "in-degree max below the out-degree mean");
    }

    #[test]
    fn k_regular_caps_degree_at_n_minus_one() {
        let mut rng = SmallRng::seed_from_u64(4);
        let e = Topology::KRegularRandom(100).edges(5, &mut rng);
        assert_eq!(e.len(), 4 * 5); // d clamped to n−1 = 4
    }
}
