//! # simnet
//!
//! A small, deterministic simulated parallel runtime used to *measure* the
//! communication behaviour that the paper analyses formally (§II-C):
//! congestion (the maximum number of agents any one agent must communicate
//! with per round), message counts, and synchronization stalls.
//!
//! Two execution substrates are provided:
//!
//! * [`network::Network`] — a discrete-time, message-passing simulator.
//!   Agents implement [`agent::Agent`]; each round every agent runs once,
//!   reads the messages delivered to it at the end of the previous round,
//!   and sends new ones. The engine records per-round
//!   [`stats::RoundStats`] — exactly the congestion quantity of Table I.
//! * [`executor::ThreadPool`] — a real-thread executor built on crossbeam
//!   channels and a barrier, used to measure the *wall-clock* effect of
//!   synchronization blocks: the paper's §III-C observation that with `m`
//!   synchronized threads, the per-round latency is the *maximum* of the
//!   per-thread work, so heavy-tailed work distributions cripple throughput
//!   (the motivation for precomputing safe mutations).
//!
//! [`congestion`] contains the balls-into-bins machinery behind
//! Distributed's `Θ(ln n / ln ln n)` congestion bound, both simulated and
//! in closed form.
//!
//! [`faults`] provides the deterministic adversary for both substrates: a
//! seeded [`faults::FaultPlan`] that the [`network::Network`] delivery path
//! and the [`executor::ThreadPool`] consult to drop, delay, duplicate, and
//! reorder messages, crash/restart agents, and inject stragglers — with
//! per-round counts folded into [`stats::RoundStats`] and
//! [`executor::RoundEvent`] so every injected fault is observable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod congestion;
pub mod executor;
pub mod faults;
pub mod network;
pub mod profhook;
pub mod stats;
pub mod topology;

pub use agent::{Agent, AgentId, Context, Message};
pub use congestion::{balls_into_bins_max, expected_max_load};
pub use executor::{
    NullRoundObserver, RoundEvent, RoundObserver, SyncMode, ThreadPool, WorkResult,
};
pub use faults::{FaultConfig, FaultPlan, FaultRoundStats, MessageFate, RetryPolicy};
pub use network::Network;
pub use profhook::{set_hook as set_profile_hook, SimEvent};
pub use stats::{NetStats, RoundStats};
pub use topology::Topology;
