//! Seeded fault injection for the simulated network and the thread executor.
//!
//! The paper's Distributed MWU analysis (§II-C, Table I) assumes a lossless
//! synchronous network, but the deployment target is a large parallel
//! cluster where message loss, stragglers, and agent crashes are routine.
//! This module provides the deterministic adversary used to measure how the
//! algorithms degrade: a [`FaultPlan`] built from a seed and a
//! [`FaultConfig`] of per-event rates.
//!
//! Every decision the plan makes is a *pure function* of
//! `(seed, event labels)` — no internal RNG state is consumed — so fault
//! injection composes with the engine's determinism guarantees: the same
//! seed and the same plan produce byte-identical runs regardless of
//! execution order, retries, or observer configuration. That property is
//! pinned by `tests/tests/faults.rs`.
//!
//! Fault classes:
//!
//! * **Drop** — the message disappears (optionally retried with
//!   exponential backoff, see [`RetryPolicy`]).
//! * **Delay** — delivery is postponed 1..=[`FaultConfig::max_delay`]
//!   rounds (the receiver sees a *stale* observation).
//! * **Duplicate** — the message is delivered twice.
//! * **Reorder** — a mailbox's delivery order is reversed for one round.
//! * **Crash / restart** — an agent goes down for
//!   [`FaultConfig::crash_length`] rounds: it does not execute and
//!   everything addressed to it while down is lost.
//! * **Straggler** — a thread's round is stretched by extra spin latency
//!   (the executor-level analogue of the paper's §III-C slow-thread
//!   analysis).
//! * **Corrupt** — a loss/reward value is replaced by garbage (NaN or a
//!   huge magnitude); consumed by the algorithm layer, which must clamp.
//!
//! Per-round injected-fault counts are reported as [`FaultRoundStats`]
//! inside [`crate::stats::RoundStats`] (and straggler hits inside
//! [`crate::executor::RoundEvent`]), so the telemetry pipeline records
//! every injected fault alongside the traffic it perturbed.

use serde::{Deserialize, Serialize};

/// Per-event-class fault probabilities and shape parameters.
///
/// All rates are probabilities in `[0, 1]`, applied independently per
/// message (or per agent-round for crashes, per thread-round for
/// stragglers). The all-zero default injects nothing, and the fault-free
/// code path is unchanged when no plan is installed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a message is dropped.
    pub drop_rate: f64,
    /// Probability a (non-dropped) message is delayed.
    pub delay_rate: f64,
    /// Maximum delay in rounds (actual delay uniform in `1..=max_delay`).
    pub max_delay: u32,
    /// Probability a (delivered) message is duplicated.
    pub duplicate_rate: f64,
    /// Probability a round's mailbox delivery order is reversed.
    pub reorder_rate: f64,
    /// Per-agent-per-round probability a crash *begins*.
    pub crash_rate: f64,
    /// Rounds an agent stays down after a crash begins.
    pub crash_length: u32,
    /// Per-thread-per-round probability of straggling.
    pub straggler_rate: f64,
    /// Extra spin latency (microseconds) a straggling thread incurs.
    pub straggler_extra_us: u64,
    /// Probability a loss/reward observation is corrupted (NaN or huge).
    pub corrupt_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 3,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            crash_rate: 0.0,
            crash_length: 5,
            straggler_rate: 0.0,
            straggler_extra_us: 200,
            corrupt_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// A drop-only adversary (the headline knob of the chaos sweeps).
    pub fn drops(rate: f64) -> Self {
        Self {
            drop_rate: rate,
            ..Self::default()
        }
    }

    /// A mixed adversary exercising every message-level fault class at
    /// `rate`, with crashes and stragglers at a tenth of it.
    pub fn mixed(rate: f64) -> Self {
        Self {
            drop_rate: rate,
            delay_rate: rate,
            duplicate_rate: rate,
            reorder_rate: rate,
            crash_rate: rate / 10.0,
            straggler_rate: rate / 10.0,
            corrupt_rate: rate / 10.0,
            ..Self::default()
        }
    }

    /// Are all rates zero (plan injects nothing)?
    pub fn is_quiescent(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.crash_rate == 0.0
            && self.straggler_rate == 0.0
            && self.corrupt_rate == 0.0
    }

    /// # Panics
    /// Panics if any rate lies outside `[0, 1]` or a length field is zero
    /// while its rate is positive.
    fn validate(&self) {
        for (name, r) in [
            ("drop_rate", self.drop_rate),
            ("delay_rate", self.delay_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("reorder_rate", self.reorder_rate),
            ("crash_rate", self.crash_rate),
            ("straggler_rate", self.straggler_rate),
            ("corrupt_rate", self.corrupt_rate),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} {r} outside [0, 1]");
        }
        assert!(
            self.delay_rate == 0.0 || self.max_delay >= 1,
            "delay_rate > 0 requires max_delay >= 1"
        );
        assert!(
            self.crash_rate == 0.0 || self.crash_length >= 1,
            "crash_rate > 0 requires crash_length >= 1"
        );
    }
}

/// What the plan decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver normally next round.
    Deliver,
    /// The message is lost.
    Drop,
    /// Deliver after this many *extra* rounds (≥ 1).
    Delay(u32),
    /// Deliver two copies next round.
    Duplicate,
}

/// A deterministic fault schedule: seed + rates, no mutable state.
///
/// All queries are pure functions of the seed and the event's labels, so a
/// plan can be freely copied, shared across threads, and re-queried without
/// perturbing the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
}

/// Label-space tags keeping the independent decision streams disjoint.
const TAG_DROP: u64 = 0xFA01;
const TAG_DELAY: u64 = 0xFA02;
const TAG_DELAY_LEN: u64 = 0xFA03;
const TAG_DUP: u64 = 0xFA04;
const TAG_REORDER: u64 = 0xFA05;
const TAG_CRASH: u64 = 0xFA06;
const TAG_STRAGGLE: u64 = 0xFA07;
const TAG_CORRUPT: u64 = 0xFA08;
const TAG_CORRUPT_KIND: u64 = 0xFA09;
const TAG_JITTER: u64 = 0xFA0A;

impl FaultPlan {
    /// Plan over `config`, keyed by `seed`.
    ///
    /// # Panics
    /// Panics on rates outside `[0, 1]` (see [`FaultConfig`]).
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        config.validate();
        Self { seed, config }
    }

    /// The fault-free plan (injects nothing; every query is a constant).
    pub fn quiescent() -> Self {
        Self::new(0, FaultConfig::default())
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The seed in force.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Keyed uniform in `[0, 1)` (53-bit), consuming no state.
    fn uniform(&self, labels: &[u64]) -> f64 {
        (self.hash(labels) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn bernoulli(&self, p: f64, labels: &[u64]) -> bool {
        p > 0.0 && self.uniform(labels) < p
    }

    fn hash(&self, labels: &[u64]) -> u64 {
        let mut acc = mix64(self.seed ^ 0xC2B2_AE3D_27D4_EB4F);
        for &l in labels {
            acc = mix64(acc ^ l.rotate_left(17));
        }
        mix64(acc)
    }

    /// The fate of message number `nonce` sent `from → to` in `round`.
    /// `attempt` distinguishes retransmissions of the same logical message
    /// (attempt 0 is the original send), so a retry is re-exposed to an
    /// independent drop draw.
    pub fn message_fate(
        &self,
        round: usize,
        from: usize,
        to: usize,
        nonce: u64,
        attempt: u32,
    ) -> MessageFate {
        let labels = [round as u64, from as u64, to as u64, nonce, attempt as u64];
        if self.bernoulli(
            self.config.drop_rate,
            &[
                TAG_DROP, labels[0], labels[1], labels[2], labels[3], labels[4],
            ],
        ) {
            return MessageFate::Drop;
        }
        if self.bernoulli(
            self.config.delay_rate,
            &[
                TAG_DELAY, labels[0], labels[1], labels[2], labels[3], labels[4],
            ],
        ) {
            let span = self.config.max_delay.max(1) as u64;
            let extra = 1
                + (self.hash(&[TAG_DELAY_LEN, labels[0], labels[1], labels[2], labels[3]]) % span)
                    as u32;
            return MessageFate::Delay(extra);
        }
        if self.bernoulli(
            self.config.duplicate_rate,
            &[
                TAG_DUP, labels[0], labels[1], labels[2], labels[3], labels[4],
            ],
        ) {
            return MessageFate::Duplicate;
        }
        MessageFate::Deliver
    }

    /// Does a crash *begin* for `agent` at `round`?
    pub fn crash_begins(&self, agent: usize, round: usize) -> bool {
        self.bernoulli(
            self.config.crash_rate,
            &[TAG_CRASH, agent as u64, round as u64],
        )
    }

    /// Is `agent` down (crashed, not yet restarted) during `round`?
    ///
    /// An agent is down for [`FaultConfig::crash_length`] rounds starting
    /// at the round its crash begins. Overlapping crash draws extend
    /// naturally (the agent stays down until `crash_length` rounds after
    /// the latest begin).
    pub fn is_crashed(&self, agent: usize, round: usize) -> bool {
        if self.config.crash_rate == 0.0 {
            return false;
        }
        let len = self.config.crash_length.max(1) as usize;
        let earliest = round.saturating_sub(len - 1);
        (earliest..=round).any(|r| self.crash_begins(agent, r))
    }

    /// Is delivery order reversed for messages arriving in `round`?
    pub fn reorders(&self, round: usize) -> bool {
        self.bernoulli(self.config.reorder_rate, &[TAG_REORDER, round as u64])
    }

    /// Extra spin latency (µs) thread `thread` incurs in `round` (0 when
    /// not straggling).
    pub fn straggler_us(&self, thread: usize, round: usize) -> u64 {
        if self.bernoulli(
            self.config.straggler_rate,
            &[TAG_STRAGGLE, thread as u64, round as u64],
        ) {
            self.config.straggler_extra_us
        } else {
            0
        }
    }

    /// If the observation of `agent` in `round` is corrupted, the garbage
    /// value that replaces it (alternating NaN and a huge magnitude, the
    /// two failure shapes a clamping guard must absorb).
    pub fn corrupt(&self, round: usize, agent: usize) -> Option<f64> {
        if self.bernoulli(
            self.config.corrupt_rate,
            &[TAG_CORRUPT, round as u64, agent as u64],
        ) {
            let kind = self.hash(&[TAG_CORRUPT_KIND, round as u64, agent as u64]);
            Some(match kind % 3 {
                0 => f64::NAN,
                1 => 1e12,
                _ => -1e12,
            })
        } else {
            None
        }
    }

    /// Seeded jitter in `[0, 1)` for retry backoff of `(round, from, to,
    /// nonce, attempt)`.
    pub fn retry_jitter(&self, round: usize, nonce: u64, attempt: u32) -> f64 {
        self.uniform(&[TAG_JITTER, round as u64, nonce, attempt as u64])
    }
}

/// Retransmission policy for dropped messages: exponential backoff with
/// seeded jitter and a capped attempt count.
///
/// Attempt `a` (1-based) of a dropped message is re-sent after
/// `base_delay · 2^(a−1)` rounds, plus 0 or 1 extra round of seeded jitter;
/// after [`RetryPolicy::max_attempts`] failed attempts the message is
/// abandoned and counted in [`FaultRoundStats::retry_exhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retransmissions allowed after the original send (0 disables retry).
    pub max_attempts: u32,
    /// Backoff base, in rounds (attempt `a` waits `base · 2^(a−1)`).
    pub base_delay: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: 1,
        }
    }
}

impl RetryPolicy {
    /// Rounds to wait before retry attempt `attempt` (1-based), including
    /// the plan's seeded jitter.
    pub fn backoff_rounds(&self, attempt: u32, jitter: f64) -> usize {
        let base = (self.base_delay.max(1) as usize) << (attempt.saturating_sub(1).min(16));
        base + usize::from(jitter >= 0.5)
    }
}

/// Counts of faults injected during one round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRoundStats {
    /// Messages dropped this round (after exhausting any retries' sends —
    /// each failed attempt of a retried message counts once).
    pub dropped: u64,
    /// Messages whose delivery was postponed.
    pub delayed: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Mailboxes whose delivery order was reversed.
    pub reordered: u64,
    /// Agents down (crashed) this round.
    pub crashed: u64,
    /// Messages lost because their recipient was down on delivery.
    pub lost_to_crash: u64,
    /// Retransmissions scheduled this round.
    pub retried: u64,
    /// Messages abandoned after the retry cap.
    pub retry_exhausted: u64,
    /// Straggler events (threads slowed) this round.
    pub stragglers: u64,
}

impl FaultRoundStats {
    /// Total injected fault events this round.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.delayed
            + self.duplicated
            + self.reordered
            + self.crashed
            + self.lost_to_crash
            + self.retried
            + self.retry_exhausted
            + self.stragglers
    }

    /// Fold another round's counts into this accumulator.
    pub fn absorb(&mut self, other: &FaultRoundStats) {
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.crashed += other.crashed;
        self.lost_to_crash += other.lost_to_crash;
        self.retried += other.retried;
        self.retry_exhausted += other.retry_exhausted;
        self.stragglers += other.stragglers;
    }
}

/// SplitMix64 finalizer (the same mixer as `network::mwu_seed`, shared here
/// for keyed fault draws; simnet stays dependency-free of `mwu_core`).
#[inline]
fn mix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_plan_injects_nothing() {
        let p = FaultPlan::quiescent();
        for r in 0..50 {
            for a in 0..10 {
                assert_eq!(
                    p.message_fate(r, a, (a + 1) % 10, 0, 0),
                    MessageFate::Deliver
                );
                assert!(!p.is_crashed(a, r));
                assert_eq!(p.straggler_us(a, r), 0);
                assert!(p.corrupt(r, a).is_none());
            }
            assert!(!p.reorders(r));
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(7, FaultConfig::mixed(0.3));
        let b = FaultPlan::new(7, FaultConfig::mixed(0.3));
        for r in 0..100 {
            assert_eq!(a.message_fate(r, 1, 2, 5, 0), b.message_fate(r, 1, 2, 5, 0));
            assert_eq!(a.is_crashed(3, r), b.is_crashed(3, r));
            assert_eq!(a.straggler_us(0, r), b.straggler_us(0, r));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, FaultConfig::drops(0.5));
        let b = FaultPlan::new(2, FaultConfig::drops(0.5));
        let fates_a: Vec<_> = (0..200).map(|n| a.message_fate(0, 0, 1, n, 0)).collect();
        let fates_b: Vec<_> = (0..200).map(|n| b.message_fate(0, 0, 1, n, 0)).collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let p = FaultPlan::new(11, FaultConfig::drops(0.25));
        let drops = (0..20_000u64)
            .filter(|&n| p.message_fate(0, 0, 1, n, 0) == MessageFate::Drop)
            .count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn delays_bounded_by_max_delay() {
        let cfg = FaultConfig {
            delay_rate: 1.0,
            max_delay: 4,
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(3, cfg);
        for n in 0..500 {
            match p.message_fate(1, 0, 1, n, 0) {
                MessageFate::Delay(d) => assert!((1..=4).contains(&d), "delay {d}"),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn crash_lasts_crash_length_rounds() {
        let cfg = FaultConfig {
            crash_rate: 0.05,
            crash_length: 4,
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(9, cfg);
        // Find a crash begin and verify the agent stays down for the window.
        let mut checked = false;
        'outer: for agent in 0..20 {
            for r in 10..200 {
                if p.crash_begins(agent, r) {
                    for dr in 0..4 {
                        assert!(p.is_crashed(agent, r + dr), "down at +{dr}");
                    }
                    checked = true;
                    break 'outer;
                }
            }
        }
        assert!(checked, "no crash found at rate 0.05 over 20×190 draws");
    }

    #[test]
    fn retry_backoff_is_exponential_and_jittered() {
        let pol = RetryPolicy {
            max_attempts: 4,
            base_delay: 2,
        };
        assert_eq!(pol.backoff_rounds(1, 0.0), 2);
        assert_eq!(pol.backoff_rounds(2, 0.0), 4);
        assert_eq!(pol.backoff_rounds(3, 0.0), 8);
        assert_eq!(pol.backoff_rounds(1, 0.9), 3); // jitter adds a round
    }

    #[test]
    fn attempts_redraw_fate() {
        // A message dropped on attempt 0 must get an independent draw on
        // attempt 1 — otherwise retry could never succeed.
        let p = FaultPlan::new(5, FaultConfig::drops(0.5));
        let differs =
            (0..200u64).any(|n| p.message_fate(0, 0, 1, n, 0) != p.message_fate(0, 0, 1, n, 1));
        assert!(differs);
    }

    #[test]
    fn corrupt_values_are_nan_or_huge() {
        let cfg = FaultConfig {
            corrupt_rate: 1.0,
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(1, cfg);
        for a in 0..100 {
            let v = p.corrupt(0, a).expect("corrupt_rate 1.0");
            assert!(v.is_nan() || v.abs() >= 1e12);
        }
    }

    #[test]
    fn round_stats_absorb_totals() {
        let mut acc = FaultRoundStats::default();
        acc.absorb(&FaultRoundStats {
            dropped: 2,
            delayed: 1,
            duplicated: 3,
            ..FaultRoundStats::default()
        });
        acc.absorb(&FaultRoundStats {
            dropped: 1,
            stragglers: 4,
            ..FaultRoundStats::default()
        });
        assert_eq!(acc.dropped, 3);
        assert_eq!(acc.total(), 11);
    }

    #[test]
    #[should_panic]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::new(0, FaultConfig::drops(1.5));
    }
}
