//! Real-thread round executor: measures the cost of synchronization blocks.
//!
//! The paper's §III-C argues that generating safe mutations *inside* the
//! search loop cripples synchronized parallel algorithms: every round, all
//! threads wait for the slowest one, and with heavy-tailed per-thread work
//! the maximum dominates ("the naive system operates at about half the
//! efficiency of threads requiring no synchronization blocks").
//! Precomputing the pool removes the per-round dependence on the slowest
//! thread.
//!
//! [`ThreadPool::run_rounds`] executes the same per-(thread, round) work
//! closure under two regimes — [`SyncMode::Barrier`] (lock-step rounds) and
//! [`SyncMode::Free`] (no synchronization) — so the efficiency ratio can be
//! measured directly. The `sync_stall` experiment binary and a Criterion
//! bench regenerate the §III-C numbers with this.

use crossbeam::thread;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Whether threads synchronize at the end of every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Lock-step: a barrier at the end of each round (the regime of
    /// Standard/Slate with on-the-fly mutation generation).
    Barrier,
    /// No synchronization: each thread burns through its rounds
    /// independently (the regime enabled by precomputation).
    Free,
}

/// Outcome of a [`ThreadPool::run_rounds`] execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkResult {
    /// Wall-clock time for the whole execution.
    pub wall: Duration,
    /// Total work items executed (threads × rounds).
    pub items: u64,
    /// Sum of per-thread busy time (excludes barrier waits).
    pub busy: Duration,
}

impl WorkResult {
    /// Efficiency: busy time / (wall time × threads). 1.0 means no thread
    /// ever waited.
    pub fn efficiency(&self, threads: usize) -> f64 {
        let denom = self.wall.as_secs_f64() * threads as f64;
        if denom <= 0.0 {
            return 1.0;
        }
        (self.busy.as_secs_f64() / denom).min(1.0)
    }
}

/// A fixed-size pool of real OS threads executing round-structured work.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    n_threads: usize,
}

impl ThreadPool {
    /// Pool of `n_threads` threads.
    ///
    /// # Panics
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0);
        Self { n_threads }
    }

    /// Thread count.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Execute `work(thread_id, round)` for every (thread, round) pair.
    ///
    /// Under [`SyncMode::Barrier`], round `r+1` starts only after *every*
    /// thread finishes round `r`; under [`SyncMode::Free`] each thread
    /// proceeds at its own pace.
    pub fn run_rounds<F>(&self, rounds: usize, mode: SyncMode, work: F) -> WorkResult
    where
        F: Fn(usize, usize) + Sync,
    {
        let n = self.n_threads;
        let barrier = Barrier::new(n);
        let busy_total = Mutex::new(Duration::ZERO);
        let started = AtomicUsize::new(0);
        let t0 = Instant::now();

        thread::scope(|s| {
            for tid in 0..n {
                let work = &work;
                let barrier = &barrier;
                let busy_total = &busy_total;
                let started = &started;
                s.spawn(move |_| {
                    started.fetch_add(1, Ordering::SeqCst);
                    let mut busy = Duration::ZERO;
                    for r in 0..rounds {
                        let w0 = Instant::now();
                        work(tid, r);
                        busy += w0.elapsed();
                        if mode == SyncMode::Barrier {
                            barrier.wait();
                        }
                    }
                    *busy_total.lock() += busy;
                });
            }
        })
        .expect("worker thread panicked");

        WorkResult {
            wall: t0.elapsed(),
            items: (n * rounds) as u64,
            busy: busy_total.into_inner(),
        }
    }
}

/// Busy-wait for approximately `micros` microseconds (spin, not sleep — the
/// workloads being modeled are CPU-bound test-suite executions, and sleeping
/// would let the OS scheduler hide the stall being measured).
pub fn spin_for_micros(micros: u64) {
    let t0 = Instant::now();
    let target = Duration::from_micros(micros);
    while t0.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_items_in_both_modes() {
        for mode in [SyncMode::Barrier, SyncMode::Free] {
            let counter = AtomicU64::new(0);
            let pool = ThreadPool::new(4);
            let res = pool.run_rounds(10, mode, |_, _| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 40);
            assert_eq!(res.items, 40);
        }
    }

    #[test]
    fn barrier_mode_is_lockstep() {
        // In barrier mode, no thread may be 2+ rounds ahead of another.
        let max_round = AtomicUsize::new(0);
        let min_seen_gap = AtomicUsize::new(0);
        let pool = ThreadPool::new(4);
        pool.run_rounds(20, SyncMode::Barrier, |_, r| {
            let prev_max = max_round.fetch_max(r, Ordering::SeqCst).max(r);
            // Gap between this thread's round and the global max round.
            let gap = prev_max.saturating_sub(r);
            min_seen_gap.fetch_max(gap, Ordering::SeqCst);
        });
        assert!(
            min_seen_gap.load(Ordering::SeqCst) <= 1,
            "threads drifted more than one round apart under a barrier"
        );
    }

    #[test]
    fn skewed_work_hurts_barrier_efficiency_more() {
        // One slow thread per round: barrier mode's wall time tracks the
        // slow thread; free mode overlaps the slowness. The comparison is
        // only meaningful with real parallel hardware — on a single-core
        // (or busy) host both modes serialize and the measurement is noise,
        // so we only assert completion there.
        let pool = ThreadPool::new(4);
        let skewed = |tid: usize, r: usize| {
            // Thread (r % 4) is the slow one in round r.
            if tid == r % 4 {
                spin_for_micros(300);
            } else {
                spin_for_micros(30);
            }
        };
        let b = pool.run_rounds(30, SyncMode::Barrier, skewed);
        let f = pool.run_rounds(30, SyncMode::Free, skewed);
        assert_eq!(b.items, 120);
        assert_eq!(f.items, 120);
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if cores >= 4 {
            // Free mode should be meaningfully faster in wall time.
            assert!(
                f.wall.as_secs_f64() < b.wall.as_secs_f64(),
                "free {:?} !< barrier {:?}",
                f.wall,
                b.wall
            );
            assert!(f.efficiency(4) > b.efficiency(4));
        }
    }

    #[test]
    fn efficiency_bounded_by_one() {
        let pool = ThreadPool::new(2);
        let r = pool.run_rounds(5, SyncMode::Free, |_, _| spin_for_micros(50));
        let e = r.efficiency(2);
        assert!((0.0..=1.0).contains(&e), "efficiency {e}");
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }
}
