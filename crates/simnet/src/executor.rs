//! Real-thread round executor: measures the cost of synchronization blocks.
//!
//! The paper's §III-C argues that generating safe mutations *inside* the
//! search loop cripples synchronized parallel algorithms: every round, all
//! threads wait for the slowest one, and with heavy-tailed per-thread work
//! the maximum dominates ("the naive system operates at about half the
//! efficiency of threads requiring no synchronization blocks").
//! Precomputing the pool removes the per-round dependence on the slowest
//! thread.
//!
//! [`ThreadPool::run_rounds`] executes the same per-(thread, round) work
//! closure under two regimes — [`SyncMode::Barrier`] (lock-step rounds) and
//! [`SyncMode::Free`] (no synchronization) — so the efficiency ratio can be
//! measured directly. The `sync_stall` experiment binary and a Criterion
//! bench regenerate the §III-C numbers with this.

use crate::faults::FaultPlan;
use crate::profhook::{self, SimEvent};
use crossbeam::thread;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Whether threads synchronize at the end of every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Lock-step: a barrier at the end of each round (the regime of
    /// Standard/Slate with on-the-fly mutation generation).
    Barrier,
    /// No synchronization: each thread burns through its rounds
    /// independently (the regime enabled by precomputation).
    Free,
}

/// Outcome of a [`ThreadPool::run_rounds`] execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkResult {
    /// Wall-clock time for the whole execution.
    pub wall: Duration,
    /// Total work items executed (threads × rounds).
    pub items: u64,
    /// Sum of per-thread busy time (excludes barrier waits).
    pub busy: Duration,
}

impl WorkResult {
    /// Efficiency: busy time / (wall time × threads). 1.0 means no thread
    /// ever waited.
    pub fn efficiency(&self, threads: usize) -> f64 {
        let denom = self.wall.as_secs_f64() * threads as f64;
        if denom <= 0.0 {
            return 1.0;
        }
        (self.busy.as_secs_f64() / denom).min(1.0)
    }
}

/// Per-round timing snapshot delivered to a [`RoundObserver`]: the busy-time
/// spread across threads and the synchronization stall it induces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundEvent {
    /// Round index (0-based).
    pub round: usize,
    /// Busy time of the slowest thread this round.
    pub max_busy: Duration,
    /// Busy time of the fastest thread this round.
    pub min_busy: Duration,
    /// Summed busy time across all threads this round.
    pub total_busy: Duration,
    /// Aggregate barrier-wait time this round: `max_busy × threads −
    /// total_busy` under [`SyncMode::Barrier`] (every thread waits for the
    /// slowest), zero under [`SyncMode::Free`].
    pub stall: Duration,
    /// Threads slowed by an injected straggler fault this round (always 0
    /// without a fault plan — see [`ThreadPool::run_rounds_faulty`]).
    pub stragglers: u64,
}

/// Receives one [`RoundEvent`] per executed round. The simnet crate stands
/// below `mwu-core` in the dependency graph, so this is a local, minimal
/// analogue of `mwu_core::trace::Observer`: implement both to bridge
/// round-level telemetry into a shared sink.
pub trait RoundObserver {
    /// Gate: when `false`, the executor skips per-round timing collection
    /// entirely (no allocation, no extra clock reads beyond the busy timer
    /// it already keeps).
    fn enabled(&self) -> bool {
        true
    }
    /// One round's timing spread, delivered in round order after the pool
    /// joins.
    fn on_round(&mut self, event: RoundEvent);
}

/// The do-nothing observer: disables collection and monomorphizes away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRoundObserver;

impl RoundObserver for NullRoundObserver {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn on_round(&mut self, _event: RoundEvent) {}
}

impl<O: RoundObserver> RoundObserver for &mut O {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn on_round(&mut self, event: RoundEvent) {
        (**self).on_round(event);
    }
}

/// A fixed-size pool of real OS threads executing round-structured work.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    n_threads: usize,
}

impl ThreadPool {
    /// Pool of `n_threads` threads.
    ///
    /// # Panics
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads > 0);
        Self { n_threads }
    }

    /// Thread count.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Execute `work(thread_id, round)` for every (thread, round) pair.
    ///
    /// Under [`SyncMode::Barrier`], round `r+1` starts only after *every*
    /// thread finishes round `r`; under [`SyncMode::Free`] each thread
    /// proceeds at its own pace.
    pub fn run_rounds<F>(&self, rounds: usize, mode: SyncMode, work: F) -> WorkResult
    where
        F: Fn(usize, usize) + Sync,
    {
        self.run_rounds_observed(rounds, mode, work, &mut NullRoundObserver)
    }

    /// [`run_rounds`](Self::run_rounds) with per-round telemetry: after the
    /// pool joins, `observer` receives one [`RoundEvent`] per round (in round
    /// order) describing the busy-time spread across threads and the barrier
    /// stall it implies. With a disabled observer (e.g.
    /// [`NullRoundObserver`]) no per-round timings are recorded at all.
    pub fn run_rounds_observed<F, O>(
        &self,
        rounds: usize,
        mode: SyncMode,
        work: F,
        observer: &mut O,
    ) -> WorkResult
    where
        F: Fn(usize, usize) + Sync,
        O: RoundObserver,
    {
        self.run_rounds_inner(rounds, mode, work, observer, None)
    }

    /// [`run_rounds_observed`](Self::run_rounds_observed) under a fault
    /// plan: each (thread, round) pair consults
    /// [`FaultPlan::straggler_us`] and, when straggling, spins for the
    /// configured extra latency *inside* its busy window — modeling the
    /// slow-thread regime of §III-C (under [`SyncMode::Barrier`] every
    /// other thread absorbs the straggler's latency as stall). Straggler
    /// hits are reported per round in [`RoundEvent::stragglers`].
    pub fn run_rounds_faulty<F, O>(
        &self,
        rounds: usize,
        mode: SyncMode,
        work: F,
        observer: &mut O,
        plan: &FaultPlan,
    ) -> WorkResult
    where
        F: Fn(usize, usize) + Sync,
        O: RoundObserver,
    {
        self.run_rounds_inner(rounds, mode, work, observer, Some(plan))
    }

    fn run_rounds_inner<F, O>(
        &self,
        rounds: usize,
        mode: SyncMode,
        work: F,
        observer: &mut O,
        plan: Option<&FaultPlan>,
    ) -> WorkResult
    where
        F: Fn(usize, usize) + Sync,
        O: RoundObserver,
    {
        let n = self.n_threads;
        let record = observer.enabled();
        let barrier = Barrier::new(n);
        let busy_total = Mutex::new(Duration::ZERO);
        // One busy-time series per thread, filled only when observing.
        let per_thread: Mutex<Vec<Vec<Duration>>> = Mutex::new(vec![Vec::new(); n]);
        let started = AtomicUsize::new(0);
        let t0 = Instant::now();

        thread::scope(|s| {
            for tid in 0..n {
                let work = &work;
                let barrier = &barrier;
                let busy_total = &busy_total;
                let per_thread = &per_thread;
                let started = &started;
                s.spawn(move |_| {
                    started.fetch_add(1, Ordering::SeqCst);
                    let mut busy = Duration::ZERO;
                    let mut series = Vec::with_capacity(if record { rounds } else { 0 });
                    for r in 0..rounds {
                        let w0 = Instant::now();
                        work(tid, r);
                        if let Some(p) = plan {
                            let extra = p.straggler_us(tid, r);
                            if extra > 0 {
                                spin_for_micros(extra);
                            }
                        }
                        let d = w0.elapsed();
                        busy += d;
                        if record {
                            series.push(d);
                        }
                        if mode == SyncMode::Barrier {
                            let wait_t0 = profhook::active().then(Instant::now);
                            barrier.wait();
                            if let Some(t0) = wait_t0 {
                                profhook::emit(
                                    SimEvent::RoundBarrier,
                                    t0.elapsed().as_nanos() as u64,
                                );
                            }
                        }
                    }
                    *busy_total.lock() += busy;
                    if record {
                        per_thread.lock()[tid] = series;
                    }
                });
            }
        })
        .expect("worker thread panicked");

        if record {
            let per_thread = per_thread.into_inner();
            for r in 0..rounds {
                let mut max_busy = Duration::ZERO;
                let mut min_busy = Duration::MAX;
                let mut total_busy = Duration::ZERO;
                for series in &per_thread {
                    let d = series[r];
                    max_busy = max_busy.max(d);
                    min_busy = min_busy.min(d);
                    total_busy += d;
                }
                let stall = match mode {
                    SyncMode::Barrier => max_busy * n as u32 - total_busy,
                    SyncMode::Free => Duration::ZERO,
                };
                let stragglers = plan.map_or(0, |p| {
                    (0..n).filter(|&tid| p.straggler_us(tid, r) > 0).count() as u64
                });
                observer.on_round(RoundEvent {
                    round: r,
                    max_busy,
                    min_busy,
                    total_busy,
                    stall,
                    stragglers,
                });
            }
        }

        WorkResult {
            wall: t0.elapsed(),
            items: (n * rounds) as u64,
            busy: busy_total.into_inner(),
        }
    }
}

/// Busy-wait for approximately `micros` microseconds (spin, not sleep — the
/// workloads being modeled are CPU-bound test-suite executions, and sleeping
/// would let the OS scheduler hide the stall being measured).
pub fn spin_for_micros(micros: u64) {
    let t0 = Instant::now();
    let target = Duration::from_micros(micros);
    while t0.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_items_in_both_modes() {
        for mode in [SyncMode::Barrier, SyncMode::Free] {
            let counter = AtomicU64::new(0);
            let pool = ThreadPool::new(4);
            let res = pool.run_rounds(10, mode, |_, _| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 40);
            assert_eq!(res.items, 40);
        }
    }

    #[test]
    fn barrier_mode_is_lockstep() {
        // In barrier mode, no thread may be 2+ rounds ahead of another.
        let max_round = AtomicUsize::new(0);
        let min_seen_gap = AtomicUsize::new(0);
        let pool = ThreadPool::new(4);
        pool.run_rounds(20, SyncMode::Barrier, |_, r| {
            let prev_max = max_round.fetch_max(r, Ordering::SeqCst).max(r);
            // Gap between this thread's round and the global max round.
            let gap = prev_max.saturating_sub(r);
            min_seen_gap.fetch_max(gap, Ordering::SeqCst);
        });
        assert!(
            min_seen_gap.load(Ordering::SeqCst) <= 1,
            "threads drifted more than one round apart under a barrier"
        );
    }

    #[test]
    fn skewed_work_hurts_barrier_efficiency_more() {
        // One slow thread per round: barrier mode's wall time tracks the
        // slow thread; free mode overlaps the slowness. The comparison is
        // only meaningful with real parallel hardware — on a single-core
        // (or busy) host both modes serialize and the measurement is noise,
        // so we only assert completion there.
        let pool = ThreadPool::new(4);
        let skewed = |tid: usize, r: usize| {
            // Thread (r % 4) is the slow one in round r.
            if tid == r % 4 {
                spin_for_micros(300);
            } else {
                spin_for_micros(30);
            }
        };
        let b = pool.run_rounds(30, SyncMode::Barrier, skewed);
        let f = pool.run_rounds(30, SyncMode::Free, skewed);
        assert_eq!(b.items, 120);
        assert_eq!(f.items, 120);
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if cores >= 4 {
            // Free mode should be meaningfully faster in wall time.
            assert!(
                f.wall.as_secs_f64() < b.wall.as_secs_f64(),
                "free {:?} !< barrier {:?}",
                f.wall,
                b.wall
            );
            assert!(f.efficiency(4) > b.efficiency(4));
        }
    }

    #[test]
    fn efficiency_bounded_by_one() {
        let pool = ThreadPool::new(2);
        let r = pool.run_rounds(5, SyncMode::Free, |_, _| spin_for_micros(50));
        let e = r.efficiency(2);
        assert!((0.0..=1.0).contains(&e), "efficiency {e}");
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn observer_sees_every_round_in_order() {
        struct Collect(Vec<RoundEvent>);
        impl RoundObserver for Collect {
            fn on_round(&mut self, e: RoundEvent) {
                self.0.push(e);
            }
        }
        let pool = ThreadPool::new(3);
        let mut obs = Collect(Vec::new());
        let res =
            pool.run_rounds_observed(7, SyncMode::Barrier, |_, _| spin_for_micros(20), &mut obs);
        assert_eq!(res.items, 21);
        assert_eq!(obs.0.len(), 7);
        for (i, e) in obs.0.iter().enumerate() {
            assert_eq!(e.round, i);
            assert!(e.max_busy >= e.min_busy);
            assert!(e.total_busy >= e.max_busy);
            // stall = max × n − total is non-negative by construction.
            assert_eq!(e.stall, e.max_busy * 3 - e.total_busy);
        }
        // Summed per-round busy equals the WorkResult total.
        let summed: Duration = obs.0.iter().map(|e| e.total_busy).sum();
        assert_eq!(summed, res.busy);
    }

    #[test]
    fn free_mode_reports_zero_stall() {
        struct Collect(Vec<RoundEvent>);
        impl RoundObserver for Collect {
            fn on_round(&mut self, e: RoundEvent) {
                self.0.push(e);
            }
        }
        let pool = ThreadPool::new(2);
        let mut obs = Collect(Vec::new());
        pool.run_rounds_observed(4, SyncMode::Free, |_, _| spin_for_micros(10), &mut obs);
        assert!(obs.0.iter().all(|e| e.stall == Duration::ZERO));
    }

    #[test]
    fn stragglers_injected_and_reported() {
        use crate::faults::{FaultConfig, FaultPlan};
        struct Collect(Vec<RoundEvent>);
        impl RoundObserver for Collect {
            fn on_round(&mut self, e: RoundEvent) {
                self.0.push(e);
            }
        }
        let plan = FaultPlan::new(
            3,
            FaultConfig {
                straggler_rate: 0.5,
                straggler_extra_us: 100,
                ..FaultConfig::default()
            },
        );
        let pool = ThreadPool::new(2);
        let mut obs = Collect(Vec::new());
        pool.run_rounds_faulty(20, SyncMode::Free, |_, _| {}, &mut obs, &plan);
        assert_eq!(obs.0.len(), 20);
        let total: u64 = obs.0.iter().map(|e| e.stragglers).sum();
        assert!(total > 0, "rate 0.5 over 40 draws should straggle");
        // A round where every thread straggled has a correspondingly
        // inflated minimum busy time (the work closure itself is empty).
        for e in obs.0.iter().filter(|e| e.stragglers == 2) {
            assert!(
                e.min_busy >= Duration::from_micros(80),
                "straggling round {} min_busy {:?}",
                e.round,
                e.min_busy
            );
        }
    }

    #[test]
    fn quiescent_plan_reports_no_stragglers() {
        use crate::faults::FaultPlan;
        struct Collect(u64);
        impl RoundObserver for Collect {
            fn on_round(&mut self, e: RoundEvent) {
                self.0 += e.stragglers;
            }
        }
        let pool = ThreadPool::new(2);
        let mut obs = Collect(0);
        pool.run_rounds_faulty(
            5,
            SyncMode::Barrier,
            |_, _| {},
            &mut obs,
            &FaultPlan::quiescent(),
        );
        assert_eq!(obs.0, 0);
    }

    #[test]
    fn null_observer_matches_unobserved() {
        let pool = ThreadPool::new(2);
        let a = pool.run_rounds(5, SyncMode::Barrier, |_, _| spin_for_micros(10));
        let b = pool.run_rounds_observed(
            5,
            SyncMode::Barrier,
            |_, _| spin_for_micros(10),
            &mut NullRoundObserver,
        );
        assert_eq!(a.items, b.items);
    }
}
