//! Fn-pointer profiling hook for the simulated-network layer.
//!
//! `simnet` does not depend on `mwu-core`, so it cannot open
//! `mwu_core::prof` spans itself. Like the vendored pool's
//! `rayon::profile`, it reports leaf durations through a process-global
//! hook installed once by the composing layer (the experiment harness binds
//! [`set_hook`] to `mwu_core::prof::record_external` behind `--profile`).
//!
//! With no hook installed — or an installed hook whose `is_active` gate
//! returns false — every instrumented site pays one relaxed atomic load and
//! reads no clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Simnet activity reported through the hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// One thread's wait at the end-of-round barrier
    /// ([`crate::executor::SyncMode::Barrier`]).
    RoundBarrier,
}

struct Hook {
    is_active: fn() -> bool,
    sink: fn(SimEvent, u64),
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static HOOK: OnceLock<Hook> = OnceLock::new();

/// Install the process-wide profiling hook. First call wins; later calls
/// are ignored.
pub fn set_hook(is_active: fn() -> bool, sink: fn(SimEvent, u64)) {
    if HOOK.set(Hook { is_active, sink }).is_ok() {
        INSTALLED.store(true, Ordering::Release);
    }
}

/// Is a hook installed *and* currently active? One relaxed load on the
/// common (inactive) path.
#[inline]
pub(crate) fn active() -> bool {
    INSTALLED.load(Ordering::Relaxed) && (HOOK.get().expect("installed").is_active)()
}

/// Report one event. Callers must have checked [`active`] first so clock
/// reads stay behind the gate.
#[inline]
pub(crate) fn emit(event: SimEvent, duration_ns: u64) {
    if let Some(hook) = HOOK.get() {
        (hook.sink)(event, duration_ns);
    }
}
