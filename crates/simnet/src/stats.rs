//! Per-round and cumulative network statistics.

use crate::faults::FaultRoundStats;
use serde::{Deserialize, Serialize};

/// Communication statistics for one round of a [`crate::Network`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Messages sent this round.
    pub messages: u64,
    /// Total payload bytes sent this round.
    pub bytes: u64,
    /// Maximum in-degree: the most messages any single agent received —
    /// the paper's congestion measure (§II-C).
    pub max_in_degree: usize,
    /// Maximum out-degree: the most messages any single agent sent.
    pub max_out_degree: usize,
    /// Faults injected this round (all-zero when no plan is installed).
    pub faults: FaultRoundStats,
}

/// Cumulative statistics over a whole [`crate::Network`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Total messages.
    pub messages: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Peak per-round congestion (max in-degree over all rounds).
    pub peak_congestion: usize,
    /// Sum of per-round max in-degrees (divide by `rounds` for the mean).
    pub total_congestion: u64,
    /// Cumulative injected-fault counts over all rounds.
    pub faults: FaultRoundStats,
}

impl NetStats {
    /// Fold one round's statistics into the cumulative totals.
    pub fn absorb(&mut self, r: &RoundStats) {
        self.rounds += 1;
        self.messages += r.messages;
        self.bytes += r.bytes;
        self.total_congestion += r.max_in_degree as u64;
        if r.max_in_degree > self.peak_congestion {
            self.peak_congestion = r.max_in_degree;
        }
        self.faults.absorb(&r.faults);
    }

    /// Mean per-round congestion.
    pub fn mean_congestion(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_congestion as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut s = NetStats::default();
        s.absorb(&RoundStats {
            round: 0,
            messages: 10,
            bytes: 100,
            max_in_degree: 3,
            max_out_degree: 2,
            faults: FaultRoundStats {
                dropped: 2,
                ..FaultRoundStats::default()
            },
        });
        s.absorb(&RoundStats {
            round: 1,
            messages: 5,
            bytes: 50,
            max_in_degree: 7,
            max_out_degree: 1,
            faults: FaultRoundStats {
                dropped: 1,
                delayed: 4,
                ..FaultRoundStats::default()
            },
        });
        assert_eq!(s.rounds, 2);
        assert_eq!(s.messages, 15);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.peak_congestion, 7);
        assert!((s.mean_congestion() - 5.0).abs() < 1e-12);
        assert_eq!(s.faults.dropped, 3);
        assert_eq!(s.faults.delayed, 4);
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        assert_eq!(NetStats::default().mean_congestion(), 0.0);
    }
}
