//! Monte-Carlo estimators for the paper's Figure 4 curves.
//!
//! * Fig. 4a — "fraction of programs that pass the test suite" as a
//!   function of how many **safe** mutations are applied together, plus the
//!   comparison curve for *untested* (not-guaranteed-safe) mutations, where
//!   already two random mutations break more than half of programs.
//! * Fig. 4b — repair density: the fraction of probes at each composition
//!   size `x` that repair the defect, a unimodal curve whose optimum the
//!   online phase learns.
//!
//! Each point is the average of `trials` independent random compositions
//! (the paper uses 1,000 trials per point).

use crate::evaluate::evaluate_composition;
use crate::mutation::Mutation;
use crate::pool::MutationPool;
use crate::scenario::BugScenario;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One (x, estimate) point of a Figure-4 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Number of mutations combined.
    pub x: usize,
    /// Estimated probability (fraction of trials).
    pub value: f64,
}

/// Fig. 4a, safe-mutation curve: fraction of x-compositions of *pool*
/// (safe) mutations that retain full required-test fitness.
pub fn survival_curve(
    scenario: &BugScenario,
    pool: &MutationPool,
    xs: &[usize],
    trials: usize,
    seed: u64,
) -> Vec<CurvePoint> {
    estimate_curve(xs, trials, |x, t| {
        let mut rng = SmallRng::seed_from_u64(mix3(seed, x as u64, t as u64));
        let comp = pool.sample_composition(x.min(pool.len()), &mut rng);
        evaluate_composition(&scenario.world, &scenario.suite, &comp, None).survived
    })
}

/// Shared Monte-Carlo driver for the Figure-4 curves: estimate, for every
/// `x` in `xs`, the fraction of `trials` independent draws on which
/// `trial(x, t)` holds.
///
/// The whole `(x, trial)` rectangle is flattened into **one** parallel job
/// instead of one nested job per x-value — each pool chunk amortizes many
/// trials, where the nested form submitted `xs.len() + 1` jobs whose inner
/// units were each a single evaluation (the chunk-bookkeeping and
/// park/wake traffic PROFILE_grid attributed the scaling plateau to).
/// Every trial derives its RNG from `(x, t)` alone and the per-x counts
/// fold the ordered result buffer sequentially, so the curve is
/// byte-identical to the nested (and the sequential) form.
fn estimate_curve(
    xs: &[usize],
    trials: usize,
    trial: impl Fn(usize, usize) -> bool + Sync,
) -> Vec<CurvePoint> {
    let units: Vec<(usize, usize)> = xs
        .iter()
        .flat_map(|&x| (0..trials).map(move |t| (x, t)))
        .collect();
    let hits: Vec<bool> = units.par_iter().map(|&(x, t)| trial(x, t)).collect();
    xs.iter()
        .enumerate()
        .map(|(i, &x)| {
            let passed = hits[i * trials..(i + 1) * trials]
                .iter()
                .filter(|&&h| h)
                .count();
            CurvePoint {
                x,
                value: passed as f64 / trials as f64,
            }
        })
        .collect()
}

/// Fig. 4a, untested-mutation comparison curve: fraction of x-compositions
/// of *raw* random mutations (not screened for safety) that retain fitness.
pub fn untested_survival_curve(
    scenario: &BugScenario,
    xs: &[usize],
    trials: usize,
    seed: u64,
) -> Vec<CurvePoint> {
    let sites = scenario.program.covered_sites(&scenario.suite);
    estimate_curve(xs, trials, |x, t| {
        let mut rng = SmallRng::seed_from_u64(mix3(seed ^ 0xFF, x as u64, t as u64));
        let comp: Vec<Mutation> = (0..x)
            .map(|_| Mutation::random(&scenario.program, &sites, &mut rng))
            .collect();
        evaluate_composition(&scenario.world, &scenario.suite, &comp, None).survived
    })
}

/// Fig. 4b: fraction of x-compositions of pool mutations that repair the
/// defect.
pub fn repair_density_curve(
    scenario: &BugScenario,
    pool: &MutationPool,
    xs: &[usize],
    trials: usize,
    seed: u64,
) -> Vec<CurvePoint> {
    estimate_curve(xs, trials, |x, t| {
        let mut rng = SmallRng::seed_from_u64(mix3(seed ^ 0x4B, x as u64, t as u64));
        let comp = pool.sample_composition(x.min(pool.len()), &mut rng);
        evaluate_composition(&scenario.world, &scenario.suite, &comp, None).repaired
    })
}

/// The x at which a curve peaks (ties: smallest x).
pub fn curve_peak(points: &[CurvePoint]) -> Option<usize> {
    points
        .iter()
        .max_by(|a, b| a.value.total_cmp(&b.value))
        .map(|p| p.x)
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mwu_core::rng::mix(&[a, b, c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn scenario() -> (BugScenario, MutationPool) {
        let s = BugScenario::custom(
            "fig4-test",
            ScenarioKind::Synthetic,
            120,
            20,
            500,
            20,
            0.01,
            77,
        );
        let pool = s.build_pool(1, None);
        (s, pool)
    }

    #[test]
    fn survival_curve_is_monotone_decreasing_roughly() {
        let (s, pool) = scenario();
        let xs = [1usize, 10, 40, 100];
        let c = survival_curve(&s, &pool, &xs, 300, 3);
        assert_eq!(c.len(), 4);
        assert!(c[0].value > 0.95, "x=1 survival {}", c[0].value);
        assert!(c[0].value >= c[1].value);
        assert!(c[1].value > c[3].value);
    }

    #[test]
    fn survival_matches_analytic_expectation() {
        let (s, pool) = scenario();
        let xs = [15usize];
        let c = survival_curve(&s, &pool, &xs, 600, 4);
        let analytic = s.world.interaction.expected_survival(15);
        assert!(
            (c[0].value - analytic).abs() < 0.08,
            "empirical {} vs analytic {analytic}",
            c[0].value
        );
    }

    #[test]
    fn untested_curve_decays_much_faster() {
        let (s, pool) = scenario();
        let xs = [2usize, 10];
        let safe = survival_curve(&s, &pool, &xs, 300, 5);
        let raw = untested_survival_curve(&s, &xs, 300, 5);
        // Paper: two untested mutations already break > 50 % of programs
        // (safe rate 0.3 ⇒ both safe w.p. ≈ 9 %).
        assert!(raw[0].value < 0.5);
        assert!(safe[0].value > raw[0].value + 0.3);
        assert!(safe[1].value > raw[1].value);
    }

    #[test]
    fn repair_density_is_unimodal_near_tuned_optimum() {
        let (s, pool) = scenario();
        let xs: Vec<usize> = (1..=100).step_by(3).collect();
        let c = repair_density_curve(&s, &pool, &xs, 400, 6);
        let peak = curve_peak(&c).unwrap();
        // Tuned optimum 20; Monte-Carlo peak should land in its vicinity.
        assert!(
            (8..=45).contains(&peak),
            "repair-density peak at {peak}, expected near 20"
        );
        // Unimodal shape: density at peak well above both ends.
        let at = |x: usize| c.iter().find(|p| p.x == x).unwrap().value;
        let peak_v = at(peak);
        assert!(peak_v > at(1));
        assert!(peak_v > at(97));
    }

    #[test]
    fn curves_are_deterministic() {
        let (s, pool) = scenario();
        let xs = [5usize, 25];
        let a = survival_curve(&s, &pool, &xs, 100, 9);
        let b = survival_curve(&s, &pool, &xs, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn curve_peak_of_empty_is_none() {
        assert_eq!(curve_peak(&[]), None);
    }
}
