//! The simulated program: statements, coverage, and a defect.
//!
//! A [`Program`] is a vector of statements, each tagged with the set of
//! tests that execute it. The defect lives at one (covered) statement.
//! Statement *content* is an opaque token — the search algorithms under
//! study treat programs as mutable statement sequences whose semantics are
//! only observable through tests, and the simulation preserves exactly that
//! interface.

use serde::{Deserialize, Serialize};

use crate::suite::TestSuite;
use mwu_core::rng::keyed_uniform;

/// One statement of the simulated program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Statement {
    /// Stable statement id (index into the program).
    pub id: usize,
    /// Opaque content token. Donor statements with equal tokens are the
    /// "similar regions of code" some APR tools exploit; tokens are drawn
    /// from a Zipf-ish pool so realistic duplication exists.
    pub token: u32,
    /// Fraction of the regression suite that executes this statement.
    pub coverage: f64,
}

impl Statement {
    /// Is this statement executed by test `test_id` (of `n_tests`)?
    ///
    /// Deterministic per (world, statement, test): coverage is a fixed
    /// property of the program, like a real coverage matrix.
    pub fn covered_by(&self, world_seed: u64, test_id: usize, _n_tests: usize) -> bool {
        keyed_uniform(&[world_seed, 0xC0DE_C0DE, self.id as u64, test_id as u64]) < self.coverage
    }
}

/// The simulated program under repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable name (e.g. "gzip-2009-08-16").
    pub name: String,
    /// World seed: fixes every deterministic property (coverage, mutation
    /// safety, conflicts, repairs) of this program's universe.
    pub world_seed: u64,
    /// The statements.
    pub statements: Vec<Statement>,
    /// Statement at which the defect manifests.
    pub defect_site: usize,
}

impl Program {
    /// Generate a synthetic program with `n_statements` statements.
    ///
    /// Coverage per statement is drawn from a bimodal mixture (a core of
    /// hot statements covered by most tests, a long tail of cold ones),
    /// which is the shape real coverage matrices have.
    pub fn synthetic(name: &str, n_statements: usize, world_seed: u64) -> Self {
        assert!(n_statements > 0);
        let statements = (0..n_statements)
            .map(|id| {
                let hot = keyed_uniform(&[world_seed, 1, id as u64]) < 0.25;
                let coverage = if hot {
                    0.6 + 0.4 * keyed_uniform(&[world_seed, 2, id as u64])
                } else {
                    0.05 + 0.3 * keyed_uniform(&[world_seed, 3, id as u64])
                };
                // Token pool of size ~ n/4 so duplicates are common.
                let pool = (n_statements / 4).max(4) as u64;
                let token = (keyed_uniform(&[world_seed, 4, id as u64]) * pool as f64) as u32;
                Statement {
                    id,
                    token,
                    coverage,
                }
            })
            .collect::<Vec<_>>();
        let defect_site = (keyed_uniform(&[world_seed, 5]) * n_statements as f64) as usize;
        Self {
            name: name.to_string(),
            world_seed,
            statements,
            defect_site: defect_site.min(n_statements - 1),
        }
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True if the program has no statements (unreachable for synthetic
    /// programs; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Statement ids executed by at least one test of `suite` — the legal
    /// mutation sites (paper §III: mutations are restricted to covered
    /// code).
    pub fn covered_sites(&self, suite: &TestSuite) -> Vec<usize> {
        let n_tests = suite.len();
        self.statements
            .iter()
            .filter(|s| (0..n_tests).any(|t| s.covered_by(self.world_seed, t, n_tests)))
            .map(|s| s.id)
            .collect()
    }

    /// Fast approximation of [`Program::covered_sites`]: statements whose
    /// coverage probability is high enough that at least one of `n_tests`
    /// tests covers them with near-certainty. Exact enumeration is used by
    /// the pool builder; this is used in hot paths that only need counts.
    pub fn likely_covered_count(&self, n_tests: usize) -> usize {
        self.statements
            .iter()
            .filter(|s| 1.0 - (1.0 - s.coverage).powi(n_tests as i32) > 0.99)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::TestSuite;

    #[test]
    fn synthetic_program_is_deterministic() {
        let a = Program::synthetic("p", 100, 7);
        let b = Program::synthetic("p", 100, 7);
        let c = Program::synthetic("p", 100, 8);
        assert_eq!(a, b);
        assert_ne!(a.statements, c.statements);
    }

    #[test]
    fn defect_site_in_range() {
        for seed in 0..20 {
            let p = Program::synthetic("p", 50, seed);
            assert!(p.defect_site < 50);
        }
    }

    #[test]
    fn coverage_is_fixed_per_statement_test_pair() {
        let p = Program::synthetic("p", 10, 3);
        let s = &p.statements[0];
        let a = s.covered_by(p.world_seed, 4, 20);
        let b = s.covered_by(p.world_seed, 4, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn covered_sites_subset_of_statements() {
        let p = Program::synthetic("p", 200, 11);
        let suite = TestSuite::synthetic(30, 1, 11);
        let sites = p.covered_sites(&suite);
        assert!(!sites.is_empty());
        assert!(sites.len() <= 200);
        assert!(sites.windows(2).all(|w| w[0] < w[1]), "sites sorted unique");
    }

    #[test]
    fn with_many_tests_most_statements_are_covered() {
        let p = Program::synthetic("p", 100, 5);
        let suite = TestSuite::synthetic(100, 1, 5);
        let sites = p.covered_sites(&suite);
        // Min coverage is 5 %; with 100 tests, P(uncovered) = 0.95^100 ≈ 0.6 %.
        assert!(sites.len() > 90, "only {} covered", sites.len());
    }

    #[test]
    fn tokens_have_duplicates() {
        let p = Program::synthetic("p", 400, 9);
        let mut tokens: Vec<u32> = p.statements.iter().map(|s| s.token).collect();
        tokens.sort_unstable();
        let unique = {
            let mut t = tokens.clone();
            t.dedup();
            t.len()
        };
        assert!(unique < tokens.len(), "expected duplicate tokens");
    }
}
