//! # apr-sim
//!
//! A simulated automated-program-repair (APR) substrate reproducing the
//! statistical structure of the paper's real-world testbeds (ManyBugs C
//! programs and Defects4J Java programs).
//!
//! ## What is simulated, and why it is faithful
//!
//! The paper's search algorithms never inspect program text: they observe
//! only (a) whether a mutated program retains its fitness on a regression
//! test suite, (b) whether it additionally passes the bug-triggering tests
//! (a repair), and (c) how long the evaluation took. This substrate
//! reproduces exactly those observables:
//!
//! * [`program::Program`] — statements with per-statement test coverage;
//!   mutations are restricted to covered statements (paper §III: "all
//!   mutations ... are restricted to lines of code that are executed by the
//!   regression test suite").
//! * [`mutation::Mutation`] — the GenProg operator set (delete / insert /
//!   swap / replace). A mutation's individual safety is a deterministic
//!   hash-keyed Bernoulli at the paper's ≈30 % whole-statement safe rate
//!   (its refs 27 and 28): the same mutation is always safe or always
//!   unsafe in a given world, matching the determinism of a real test
//!   suite.
//! * [`interaction::InteractionModel`] — how individually-safe mutations
//!   interact when composed: either pairwise conflicts (survival
//!   ≈ (1−p)^C(x,2)) or per-mutation decay (survival (1−q)^x, the paper's
//!   fitted a·x·e^(−bx) form). Both reproduce Fig. 4a's slow decay and
//!   Fig. 4b's unimodal repair density.
//! * [`suite::TestSuite`] — tests with per-test simulated cost; the
//!   [`ledger::CostLedger`] accumulates simulated test-execution time so
//!   end-to-end comparisons (paper §IV-G) can report fitness evaluations
//!   and latency.
//! * [`pool::MutationPool`] — the paper's precompute phase: an
//!   embarrassingly-parallel (rayon) search for individually safe
//!   mutations, reusable across bugs and incrementally updatable as tests
//!   are added (§III-C).
//! * [`scenario::BugScenario`] — the catalog of C and Java bug scenarios
//!   with the option counts of Tables II–IV and per-scenario repair-density
//!   optima in the paper's reported 11–271 range.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apply;
pub mod evaluate;
pub mod fig4;
pub mod interaction;
pub mod ledger;
pub mod localize;
pub mod mutation;
pub mod pool;
pub mod prioritize;
pub mod program;
pub mod scenario;
pub mod suite;

pub use apply::{apply_mutations, Mutant};
pub use evaluate::{evaluate_composition, ProbeOutcome};
pub use interaction::InteractionModel;
pub use ledger::CostLedger;
pub use localize::{localize, Formula, Localization};
pub use mutation::{MutOp, Mutation, MutationId};
pub use pool::MutationPool;
pub use prioritize::{evaluate_early_exit, TestOrder};
pub use program::Program;
pub use scenario::{BugScenario, ScenarioKind};
pub use suite::{TestCase, TestSuite};
