//! Regression test suites with per-test simulated cost.
//!
//! "Testing the functionality of a large-scale software project can take
//! minutes to hours; this step occurs in the inner loop and is the dominant
//! cost" (paper §I). The simulated suite carries a per-test cost in
//! milliseconds so the harness can report latency and fitness-evaluation
//! counts in the paper's units without actually burning the time.

use mwu_core::rng::keyed_uniform;
use serde::{Deserialize, Serialize};

/// One test case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestCase {
    /// Stable id (index into the suite).
    pub id: usize,
    /// Simulated execution cost in milliseconds.
    pub cost_ms: u64,
    /// True for the bug-inducing test(s) the original program fails.
    pub triggers_bug: bool,
}

/// A regression suite: required tests plus bug-inducing test(s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestSuite {
    tests: Vec<TestCase>,
    total_cost_ms: u64,
    n_bug_tests: usize,
}

impl TestSuite {
    /// Build from explicit test cases.
    ///
    /// # Panics
    /// Panics if empty or if *every* test triggers the bug (no required
    /// functionality to preserve).
    pub fn new(tests: Vec<TestCase>) -> Self {
        assert!(!tests.is_empty(), "suite needs at least one test");
        let n_bug = tests.iter().filter(|t| t.triggers_bug).count();
        assert!(n_bug < tests.len(), "at least one required test expected");
        let total = tests.iter().map(|t| t.cost_ms).sum();
        Self {
            tests,
            total_cost_ms: total,
            n_bug_tests: n_bug,
        }
    }

    /// Synthetic suite: `n_required` required tests plus `n_bug` bug
    /// triggers, with log-normal-ish per-test costs (most tests fast, a few
    /// slow — the shape of real suites).
    pub fn synthetic(n_required: usize, n_bug: usize, world_seed: u64) -> Self {
        assert!(n_required > 0);
        let mut tests = Vec::with_capacity(n_required + n_bug);
        for id in 0..n_required + n_bug {
            let u = keyed_uniform(&[world_seed, 0x7E57, id as u64]);
            // Costs from ~5ms to ~5s, heavy-tailed.
            let cost_ms = (5.0 * (1000.0f64).powf(u)) as u64;
            tests.push(TestCase {
                id,
                cost_ms,
                triggers_bug: id >= n_required,
            });
        }
        Self::new(tests)
    }

    /// All tests.
    pub fn tests(&self) -> &[TestCase] {
        &self.tests
    }

    /// Total number of tests (required + bug-inducing).
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// True when the suite is empty (never constructible).
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Number of required (non-bug) tests.
    pub fn n_required(&self) -> usize {
        self.tests.len() - self.n_bug_tests
    }

    /// Number of bug-inducing tests.
    pub fn n_bug_tests(&self) -> usize {
        self.n_bug_tests
    }

    /// Cost of executing the full suite once, in simulated milliseconds.
    pub fn full_run_cost_ms(&self) -> u64 {
        self.total_cost_ms
    }

    /// Fitness of the *original* (defective) program: passes every required
    /// test, fails every bug test.
    pub fn baseline_fitness(&self) -> u32 {
        self.n_required() as u32
    }

    /// Maximum fitness (all tests pass) — the paper's `f(P', S) = |S|`
    /// early-termination condition.
    pub fn max_fitness(&self) -> u32 {
        self.tests.len() as u32
    }

    /// Add a new required test (paper §III-C: suites grow over time and the
    /// precomputed pool is revalidated incrementally).
    pub fn push_required(&mut self, cost_ms: u64) -> usize {
        let id = self.tests.len();
        self.tests.push(TestCase {
            id,
            cost_ms,
            triggers_bug: false,
        });
        self.total_cost_ms += cost_ms;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_suite_shape() {
        let s = TestSuite::synthetic(20, 2, 1);
        assert_eq!(s.len(), 22);
        assert_eq!(s.n_required(), 20);
        assert_eq!(s.n_bug_tests(), 2);
        assert_eq!(s.baseline_fitness(), 20);
        assert_eq!(s.max_fitness(), 22);
        assert!(s.full_run_cost_ms() > 0);
    }

    #[test]
    fn synthetic_deterministic() {
        assert_eq!(
            TestSuite::synthetic(10, 1, 5),
            TestSuite::synthetic(10, 1, 5)
        );
        assert_ne!(
            TestSuite::synthetic(10, 1, 5),
            TestSuite::synthetic(10, 1, 6)
        );
    }

    #[test]
    fn costs_heavy_tailed_but_bounded() {
        let s = TestSuite::synthetic(200, 1, 3);
        let max = s.tests().iter().map(|t| t.cost_ms).max().unwrap();
        let min = s.tests().iter().map(|t| t.cost_ms).min().unwrap();
        assert!(min >= 5);
        assert!(max <= 5000);
        assert!(max > 10 * min, "expected heavy tail, got {min}..{max}");
    }

    #[test]
    fn push_required_grows_suite_and_cost() {
        let mut s = TestSuite::synthetic(5, 1, 0);
        let before = s.full_run_cost_ms();
        let id = s.push_required(42);
        assert_eq!(id, 6);
        assert_eq!(s.n_required(), 6);
        assert_eq!(s.full_run_cost_ms(), before + 42);
    }

    #[test]
    #[should_panic]
    fn all_bug_tests_rejected() {
        let _ = TestSuite::new(vec![TestCase {
            id: 0,
            cost_ms: 1,
            triggers_bug: true,
        }]);
    }
}
