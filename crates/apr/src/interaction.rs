//! Mutation-interaction models: what happens when individually-safe
//! mutations are composed.
//!
//! The paper's Fig. 4a shows that compositions of safe mutations decay
//! slowly — "even when 80 safe mutations are applied together, on average,
//! over 50 % of the resulting programs retain their original functionality"
//! — and Fig. 4b shows the resulting repair density is unimodal with a
//! program-specific optimum (48 for gzip; 11–271 across their corpus).
//!
//! Two models reproduce those regularities:
//!
//! * [`InteractionModel::PairwiseConflict`] — each unordered pair of
//!   mutations conflicts independently with probability `p` (deterministic
//!   per pair). Survival of an x-composition is `(1−p)^C(x,2)` in
//!   expectation and the repair density `∝ x·survival(x)` peaks at
//!   `x* ≈ √(1/p) + ½`.
//! * [`InteractionModel::PerMutationDecay`] — each added mutation
//!   independently breaks the composition with probability `q`; survival is
//!   `(1−q)^x` and the repair density `x·(1−q)^x` is exactly the paper's
//!   fitted `a·x·e^(−bx)` form, peaking at `x* ≈ −1/ln(1−q)`.

use mwu_core::rng::keyed_bernoulli;
use serde::{Deserialize, Serialize};

use crate::mutation::MutationId;

/// How composed mutations interact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InteractionModel {
    /// Independent pairwise conflicts with per-pair probability `p`.
    PairwiseConflict {
        /// Per-pair conflict probability.
        p: f64,
    },
    /// Each mutation beyond the first breaks the composition independently
    /// with probability `q`.
    PerMutationDecay {
        /// Per-mutation breakage probability.
        q: f64,
    },
}

impl InteractionModel {
    /// Pairwise model tuned so the repair-density optimum lands at
    /// `x_star` composed mutations: `p = 1/x*²`.
    pub fn pairwise_with_optimum(x_star: usize) -> Self {
        assert!(x_star >= 1);
        InteractionModel::PairwiseConflict {
            p: 1.0 / (x_star as f64 * x_star as f64),
        }
    }

    /// Decay model tuned for an optimum at `x_star`: `q = 1 − e^(−1/x*)`.
    pub fn decay_with_optimum(x_star: usize) -> Self {
        assert!(x_star >= 1);
        InteractionModel::PerMutationDecay {
            q: 1.0 - (-1.0 / x_star as f64).exp(),
        }
    }

    /// Does this specific composition survive (retain full required-test
    /// fitness)? Deterministic per (world, composition) under the pairwise
    /// model; deterministic per (world, mutation, cardinality-slot) under
    /// the decay model.
    pub fn composition_survives(&self, world_seed: u64, muts: &[MutationId]) -> bool {
        match *self {
            InteractionModel::PairwiseConflict { p } => {
                for i in 0..muts.len() {
                    for j in (i + 1)..muts.len() {
                        let (a, b) = if muts[i].0 <= muts[j].0 {
                            (muts[i].0, muts[j].0)
                        } else {
                            (muts[j].0, muts[i].0)
                        };
                        if keyed_bernoulli(p, &[world_seed, 0xC0_4F11C7, a, b]) {
                            return false;
                        }
                    }
                }
                true
            }
            InteractionModel::PerMutationDecay { q } => {
                // Every mutation after the first risks breaking the
                // composition; keyed on the mutation so re-testing the same
                // composition gives the same verdict.
                muts.iter()
                    .skip(1)
                    .all(|m| !keyed_bernoulli(q, &[world_seed, 0x000D_ECA1, m.0]))
            }
        }
    }

    /// Expected survival probability of a random x-composition.
    pub fn expected_survival(&self, x: usize) -> f64 {
        match *self {
            InteractionModel::PairwiseConflict { p } => {
                let pairs = (x * x.saturating_sub(1) / 2) as f64;
                (1.0 - p).powf(pairs)
            }
            InteractionModel::PerMutationDecay { q } => (1.0 - q).powf(x.saturating_sub(1) as f64),
        }
    }

    /// Expected repair density of a random x-composition, **unnormalized**:
    /// proportional to (number of mutations carried) × (survival), the
    /// paper's §III-B trade-off between step size and failure rate.
    pub fn repair_density(&self, x: usize) -> f64 {
        x as f64 * self.expected_survival(x)
    }

    /// The x maximizing [`InteractionModel::repair_density`] over `1..=max_x`.
    pub fn density_optimum(&self, max_x: usize) -> usize {
        let mut best = 1;
        let mut best_v = self.repair_density(1);
        for x in 2..=max_x {
            let v = self.repair_density(x);
            if v > best_v {
                best_v = v;
                best = x;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u64]) -> Vec<MutationId> {
        xs.iter().map(|&x| MutationId(x)).collect()
    }

    #[test]
    fn singleton_always_survives() {
        for model in [
            InteractionModel::pairwise_with_optimum(48),
            InteractionModel::decay_with_optimum(48),
        ] {
            assert!(model.composition_survives(1, &ids(&[5])));
            assert!((model.expected_survival(1) - 1.0).abs() < 1e-12);
            assert!(model.composition_survives(1, &[]));
        }
    }

    #[test]
    fn survival_is_deterministic() {
        let m = InteractionModel::pairwise_with_optimum(10);
        let c = ids(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.composition_survives(9, &c), m.composition_survives(9, &c));
    }

    #[test]
    fn pairwise_survival_order_independent() {
        let m = InteractionModel::pairwise_with_optimum(5);
        let a = ids(&[10, 20, 30, 40]);
        let b = ids(&[40, 10, 30, 20]);
        assert_eq!(m.composition_survives(3, &a), m.composition_survives(3, &b));
    }

    #[test]
    fn optimum_lands_where_tuned_pairwise() {
        for target in [11usize, 48, 96, 271] {
            let m = InteractionModel::pairwise_with_optimum(target);
            let opt = m.density_optimum(600);
            assert!(
                opt.abs_diff(target) <= target / 10 + 1,
                "target {target}, got {opt}"
            );
        }
    }

    #[test]
    fn optimum_lands_where_tuned_decay() {
        for target in [11usize, 48, 96] {
            let m = InteractionModel::decay_with_optimum(target);
            let opt = m.density_optimum(600);
            assert!(
                opt.abs_diff(target) <= target / 10 + 1,
                "target {target}, got {opt}"
            );
        }
    }

    #[test]
    fn fig4a_shape_survival_above_half_at_80() {
        // gzip tuning (optimum 48): survival at 80 composed mutations must
        // still be substantial (the paper reports > 50 %; the pairwise model
        // gives ≈ 25 % and the decay model ≈ 19 % — same order, and the
        // qualitative claim "many mutations can be combined safely" holds:
        // compare to untested mutations, where 2 random mutations already
        // break half of programs).
        let m = InteractionModel::pairwise_with_optimum(48);
        let s80 = m.expected_survival(80);
        assert!(s80 > 0.2, "survival at 80: {s80}");
        // Untested mutations at the paper's 30 % safe rate: two of them
        // survive with probability 0.3² = 9 % ≪ s80.
        assert!(s80 > 0.09);
    }

    #[test]
    fn empirical_survival_matches_expected() {
        let m = InteractionModel::pairwise_with_optimum(20);
        let x = 15;
        let trials = 2000;
        let mut survived = 0;
        for t in 0..trials {
            // Fresh random composition per trial (ids spaced to avoid
            // accidental pair reuse).
            let c: Vec<MutationId> = (0..x).map(|i| MutationId(t * 1000 + i * 7 + 1)).collect();
            if m.composition_survives(77, &c) {
                survived += 1;
            }
        }
        let emp = survived as f64 / trials as f64;
        let exp = m.expected_survival(x as usize);
        assert!(
            (emp - exp).abs() < 0.05,
            "empirical {emp} vs expected {exp}"
        );
    }

    #[test]
    fn density_is_unimodal_in_practice() {
        let m = InteractionModel::pairwise_with_optimum(30);
        let d: Vec<f64> = (1..200).map(|x| m.repair_density(x)).collect();
        let peak = m.density_optimum(200) - 1; // index into d
                                               // Non-decreasing before the peak, non-increasing after.
        for w in d[..peak].windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        for w in d[peak..].windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }
}
