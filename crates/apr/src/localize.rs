//! Spectrum-based fault localization over the simulated coverage matrix.
//!
//! Real search-based APR tools weight their mutation sites by statement
//! *suspiciousness* computed from the coverage spectrum — which statements
//! the failing (bug-inducing) tests execute versus the passing ones. This
//! module implements the two standard formulas (Tarantula and Ochiai) over
//! the substrate's deterministic coverage matrix, and is what the AE
//! baseline uses to order its enumeration worklist.
//!
//! Modelling note: a bug-inducing test always executes the defect
//! statement (a fault lies on its own failing path), so the defect ranks
//! at or near the top of the suspiciousness order — matching the behaviour
//! of real spectra.

use crate::program::Program;
use crate::suite::TestSuite;
use serde::{Deserialize, Serialize};

/// Suspiciousness formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Formula {
    /// Tarantula: `(f/F) / (f/F + p/P)`.
    Tarantula,
    /// Ochiai: `f / √(F·(f+p))`.
    Ochiai,
}

/// Per-statement suspiciousness scores for one (program, suite) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Localization {
    scores: Vec<f64>,
    formula: Formula,
}

/// Does `test` execute statement `stmt`?
///
/// Bug-inducing tests always cover the defect statement and otherwise
/// execute a *narrow* path (each normally-covered statement survives with
/// probability 0.35) — failing runs traverse focused paths, which is what
/// gives real coverage spectra their localizing power.
pub fn covers(program: &Program, suite: &TestSuite, stmt: usize, test: usize) -> bool {
    let t = &suite.tests()[test];
    if t.triggers_bug {
        if stmt == program.defect_site {
            return true;
        }
        return program.statements[stmt].covered_by(program.world_seed, test, suite.len())
            && mwu_core::rng::keyed_bernoulli(
                0.35,
                &[program.world_seed, 0xB6_C0FE, stmt as u64, test as u64],
            );
    }
    program.statements[stmt].covered_by(program.world_seed, test, suite.len())
}

/// Compute per-statement suspiciousness for the original (defective)
/// program: required tests pass, bug-inducing tests fail.
pub fn localize(program: &Program, suite: &TestSuite, formula: Formula) -> Localization {
    let total_fail = suite.n_bug_tests().max(1) as f64;
    let total_pass = suite.n_required().max(1) as f64;
    let scores = (0..program.len())
        .map(|stmt| {
            let mut f = 0u32; // failing tests covering stmt
            let mut p = 0u32; // passing tests covering stmt
            for test in suite.tests() {
                if covers(program, suite, stmt, test.id) {
                    if test.triggers_bug {
                        f += 1;
                    } else {
                        p += 1;
                    }
                }
            }
            let f = f as f64;
            let p = p as f64;
            match formula {
                Formula::Tarantula => {
                    let ff = f / total_fail;
                    let pp = p / total_pass;
                    if ff + pp == 0.0 {
                        0.0
                    } else {
                        ff / (ff + pp)
                    }
                }
                Formula::Ochiai => {
                    let denom = (total_fail * (f + p)).sqrt();
                    if denom == 0.0 {
                        0.0
                    } else {
                        f / denom
                    }
                }
            }
        })
        .collect();
    Localization { scores, formula }
}

impl Localization {
    /// Suspiciousness of statement `stmt`.
    pub fn score(&self, stmt: usize) -> f64 {
        self.scores[stmt]
    }

    /// All scores (indexed by statement id).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The formula used.
    pub fn formula(&self) -> Formula {
        self.formula
    }

    /// Statement ids ordered by decreasing suspiciousness (ties: lower id
    /// first — a deterministic order, as AE requires).
    pub fn ranked_sites(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| self.scores[b].total_cmp(&self.scores[a]).then(a.cmp(&b)));
        order
    }

    /// Rank (0-based) of a statement in the suspiciousness order.
    pub fn rank_of(&self, stmt: usize) -> usize {
        self.ranked_sites()
            .iter()
            .position(|&s| s == stmt)
            .expect("statement in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Program, TestSuite) {
        let program = Program::synthetic("loc", 200, 31);
        let suite = TestSuite::synthetic(40, 2, 31);
        (program, suite)
    }

    #[test]
    fn bug_tests_cover_the_defect() {
        let (program, suite) = setup();
        for t in suite.tests() {
            if t.triggers_bug {
                assert!(covers(&program, &suite, program.defect_site, t.id));
            }
        }
    }

    #[test]
    fn defect_ranks_high_under_both_formulas() {
        let (program, suite) = setup();
        for formula in [Formula::Tarantula, Formula::Ochiai] {
            let loc = localize(&program, &suite, formula);
            let rank = loc.rank_of(program.defect_site);
            assert!(
                rank < program.len() / 10,
                "{formula:?}: defect ranked {rank} of {}",
                program.len()
            );
        }
    }

    #[test]
    fn scores_are_bounded() {
        let (program, suite) = setup();
        let loc = localize(&program, &suite, Formula::Ochiai);
        assert!(loc.scores().iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn ranked_sites_is_a_permutation() {
        let (program, suite) = setup();
        let loc = localize(&program, &suite, Formula::Tarantula);
        let mut r = loc.ranked_sites();
        assert_eq!(r.len(), program.len());
        r.sort_unstable();
        assert!(r.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn ranking_is_deterministic() {
        let (program, suite) = setup();
        let a = localize(&program, &suite, Formula::Ochiai).ranked_sites();
        let b = localize(&program, &suite, Formula::Ochiai).ranked_sites();
        assert_eq!(a, b);
    }

    #[test]
    fn uncovered_statement_scores_zero() {
        // A statement covered by no failing test has Ochiai score 0.
        let (program, suite) = setup();
        let loc = localize(&program, &suite, Formula::Ochiai);
        // At least one statement should be uncovered by the (few) bug tests.
        assert!(loc.scores().contains(&0.0));
    }
}
