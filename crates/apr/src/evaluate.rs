//! Composition evaluation: apply a set of mutations, run the suite, observe.
//!
//! This is the paper's inner loop (Fig. 6 lines 5–13): build `P'` from the
//! original program and a set of pooled mutations, evaluate `f(P', S)`, and
//! classify the probe. One call = one fitness evaluation = one full
//! simulated test-suite run, charged to the [`CostLedger`].

use crate::interaction::InteractionModel;
use crate::ledger::CostLedger;
use crate::mutation::Mutation;
use crate::suite::TestSuite;
use mwu_core::rng::keyed_uniform;
use serde::{Deserialize, Serialize};

/// Everything observable from one probe (one mutated program's test run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeOutcome {
    /// Passed every required test (retained fitness).
    pub survived: bool,
    /// Survived *and* passed the bug-inducing test(s) — a repair.
    pub repaired: bool,
    /// Number of tests passed, the paper's fitness `f(P', S)`.
    pub fitness: u32,
    /// Simulated cost of this evaluation in milliseconds.
    pub cost_ms: u64,
}

/// Parameters of the simulated world needed to adjudicate a composition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldParams {
    /// World seed fixing all deterministic draws.
    pub world_seed: u64,
    /// Individual whole-statement safe-mutation rate (paper ≈ 0.30).
    pub safe_rate: f64,
    /// Interaction model for composed mutations.
    pub interaction: InteractionModel,
    /// Statement where the defect manifests.
    pub defect_site: usize,
    /// Per-safe-mutation probability of being a repair.
    pub repair_rate: f64,
}

/// Evaluate a composition of mutations against the suite.
///
/// Semantics:
/// 1. If any member is individually unsafe, the composition fails some
///    required tests (fitness drops below baseline).
/// 2. Otherwise the interaction model decides survival; a surviving
///    composition has exactly baseline fitness — unless it contains at
///    least one repair mutation **and** no conflict masked it, in which
///    case it passes the bug tests too (maximum fitness).
/// 3. Every evaluation costs one full suite run (charged to `ledger` if
///    provided).
pub fn evaluate_composition(
    world: &WorldParams,
    suite: &TestSuite,
    muts: &[Mutation],
    ledger: Option<&CostLedger>,
) -> ProbeOutcome {
    let cost_ms = suite.full_run_cost_ms();
    if let Some(l) = ledger {
        l.record_eval(cost_ms);
    }

    let all_safe = muts
        .iter()
        .all(|m| m.is_safe(world.world_seed, world.safe_rate));

    let ids: Vec<_> = muts.iter().map(|m| m.id()).collect();
    let survived = all_safe
        && world
            .interaction
            .composition_survives(world.world_seed, &ids);

    if !survived {
        // A broken program fails between 1 and ~30 % of the required tests;
        // the exact count is a fixed property of the composition.
        let frac = keyed_uniform(&[
            world.world_seed,
            0xBAD_F17,
            ids.iter().fold(0u64, |a, m| a ^ m.0.rotate_left(13)),
        ]);
        let failed = 1 + (frac * 0.30 * suite.n_required() as f64) as u32;
        let fitness = suite.baseline_fitness().saturating_sub(failed);
        return ProbeOutcome {
            survived: false,
            repaired: false,
            fitness,
            cost_ms,
        };
    }

    let repaired = muts
        .iter()
        .any(|m| m.is_repair(world.world_seed, world.defect_site, world.repair_rate));

    ProbeOutcome {
        survived: true,
        repaired,
        fitness: if repaired {
            suite.max_fitness()
        } else {
            suite.baseline_fitness()
        },
        cost_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::MutOp;
    use crate::program::Program;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn world() -> WorldParams {
        WorldParams {
            world_seed: 42,
            safe_rate: 0.3,
            interaction: InteractionModel::pairwise_with_optimum(20),
            defect_site: 50,
            repair_rate: 0.005,
        }
    }

    fn pick_safe(world: &WorldParams, program: &Program, n: usize, seed: u64) -> Vec<Mutation> {
        let sites: Vec<usize> = (0..program.len()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        while out.len() < n {
            let m = Mutation::random(program, &sites, &mut rng);
            if m.is_safe(world.world_seed, world.safe_rate) && !out.contains(&m) {
                out.push(m);
            }
        }
        out
    }

    #[test]
    fn empty_composition_is_baseline() {
        let w = world();
        let suite = TestSuite::synthetic(20, 1, 42);
        let out = evaluate_composition(&w, &suite, &[], None);
        assert!(out.survived);
        assert!(!out.repaired);
        assert_eq!(out.fitness, suite.baseline_fitness());
        assert_eq!(out.cost_ms, suite.full_run_cost_ms());
    }

    #[test]
    fn unsafe_member_breaks_composition() {
        let w = world();
        let suite = TestSuite::synthetic(20, 1, 42);
        let program = Program::synthetic("p", 100, w.world_seed);
        let sites: Vec<usize> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        // Find an individually unsafe mutation.
        let unsafe_m = loop {
            let m = Mutation::random(&program, &sites, &mut rng);
            if !m.is_safe(w.world_seed, w.safe_rate) {
                break m;
            }
        };
        let out = evaluate_composition(&w, &suite, &[unsafe_m], None);
        assert!(!out.survived);
        assert!(!out.repaired);
        assert!(out.fitness < suite.baseline_fitness());
    }

    #[test]
    fn single_safe_mutation_survives() {
        let w = world();
        let suite = TestSuite::synthetic(20, 1, 42);
        let program = Program::synthetic("p", 100, w.world_seed);
        let muts = pick_safe(&w, &program, 1, 5);
        let out = evaluate_composition(&w, &suite, &muts, None);
        assert!(out.survived);
        assert!(out.fitness >= suite.baseline_fitness());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let w = world();
        let suite = TestSuite::synthetic(20, 1, 42);
        let program = Program::synthetic("p", 100, w.world_seed);
        let muts = pick_safe(&w, &program, 8, 6);
        let a = evaluate_composition(&w, &suite, &muts, None);
        let b = evaluate_composition(&w, &suite, &muts, None);
        assert_eq!(a, b);
    }

    #[test]
    fn repair_reaches_max_fitness() {
        // Scan for a composition containing a repair mutation.
        let mut w = world();
        w.repair_rate = 0.05; // boost so the scan is quick
        let suite = TestSuite::synthetic(20, 1, 42);
        let program = Program::synthetic("p", 100, w.world_seed);
        let mut found = false;
        for seed in 0..200 {
            let muts = pick_safe(&w, &program, 1, seed);
            let out = evaluate_composition(&w, &suite, &muts, None);
            if out.repaired {
                assert_eq!(out.fitness, suite.max_fitness());
                assert!(out.survived);
                found = true;
                break;
            }
        }
        assert!(found, "no repair found in 200 single-mutation probes");
    }

    #[test]
    fn ledger_is_charged_per_evaluation() {
        let w = world();
        let suite = TestSuite::synthetic(10, 1, 42);
        let ledger = CostLedger::new();
        for _ in 0..5 {
            evaluate_composition(&w, &suite, &[], Some(&ledger));
        }
        assert_eq!(ledger.fitness_evals(), 5);
        assert_eq!(ledger.simulated_ms(), 5 * suite.full_run_cost_ms());
    }

    #[test]
    fn larger_compositions_survive_less_often() {
        let w = world();
        let suite = TestSuite::synthetic(10, 1, 42);
        let program = Program::synthetic("p", 400, w.world_seed);
        let survival_at = |x: usize| -> f64 {
            let trials = 150;
            let mut ok = 0;
            for t in 0..trials {
                let muts = pick_safe(&w, &program, x, 1000 + t);
                if evaluate_composition(&w, &suite, &muts, None).survived {
                    ok += 1;
                }
            }
            ok as f64 / trials as f64
        };
        let s2 = survival_at(2);
        let s40 = survival_at(40);
        assert!(s2 > s40, "survival(2)={s2} !> survival(40)={s40}");
        assert!(s2 > 0.9);
    }

    #[test]
    fn delete_of_mut_op_is_reachable() {
        // Sanity: the operator enum round-trips through evaluation without
        // special-casing.
        let w = world();
        let suite = TestSuite::synthetic(5, 1, 42);
        let m = Mutation {
            op: MutOp::Delete,
            site: 3,
            donor: 3,
        };
        let _ = evaluate_composition(&w, &suite, &[m], None);
    }
}
