//! The bug-scenario catalog (paper §IV-A).
//!
//! Five C scenarios (four from ManyBugs plus `units` from an older
//! benchmark) and five Java scenarios from Defects4J, with the option
//! counts ("Size") of Tables II–IV. Option `x` of a scenario is "combine
//! `x` pooled safe mutations"; the scenario's value distribution over
//! options is its (normalized) repair-density curve, which is the proxy the
//! paper's online phase estimates (§III-B, §III-D).
//!
//! Per-scenario repair-density optima are placed inside the paper's
//! reported 11–271 range ("the optimum found anywhere from 11 to 271
//! mutations"), with gzip-2009-08-16 at the paper's headline 48.

use crate::evaluate::{evaluate_composition, ProbeOutcome, WorldParams};
use crate::interaction::InteractionModel;
use crate::ledger::CostLedger;
use crate::mutation::Mutation;
use crate::pool::MutationPool;
use crate::program::Program;
use crate::suite::TestSuite;
use serde::{Deserialize, Serialize};

/// Which benchmark family a scenario belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// ManyBugs / `units` (C).
    C,
    /// Defects4J (Java).
    Java,
    /// Synthetic (used by tests and custom experiments).
    Synthetic,
}

/// One bug-repair scenario: a defective program, its suite, and the world
/// parameters that fix the mutation space's statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BugScenario {
    /// Scenario name as the paper's tables print it.
    pub name: String,
    /// Benchmark family.
    pub kind: ScenarioKind,
    /// Number of options `k` (the Table II "Size" column): the bandit's
    /// arms are "combine x mutations" for x ∈ 1..=options.
    pub options: usize,
    /// Target size of the precomputed safe-mutation pool. The paper's
    /// precompute phase builds "a large sample of individually safe
    /// mutations"; the pool must be large enough that its repair density is
    /// representative of the mutation space (i.e. it actually contains
    /// repairers at rate ≈ `repair_rate`). Defaults to `options`; the
    /// catalog scenarios size it as ≳ 3/repair_rate.
    pub pool_size: usize,
    /// The defective program.
    pub program: Program,
    /// Its regression suite (including the bug-inducing test).
    pub suite: TestSuite,
    /// World parameters (safe rate, interaction model, repair rate).
    pub world: WorldParams,
}

impl BugScenario {
    /// Construct a scenario with explicit knobs.
    ///
    /// `x_star` is where the repair-density optimum should fall;
    /// `n_statements`/`n_tests` size the substrate.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: &str,
        kind: ScenarioKind,
        options: usize,
        x_star: usize,
        n_statements: usize,
        n_tests: usize,
        repair_rate: f64,
        world_seed: u64,
    ) -> Self {
        assert!(options >= 2);
        assert!(x_star >= 1 && x_star <= options);
        let program = Program::synthetic(name, n_statements, world_seed);
        let suite = TestSuite::synthetic(n_tests, 1, world_seed);
        let world = WorldParams {
            world_seed,
            safe_rate: 0.30,
            interaction: InteractionModel::pairwise_with_optimum(x_star),
            defect_site: program.defect_site,
            repair_rate,
        };
        Self {
            name: name.to_string(),
            kind,
            options,
            pool_size: options,
            program,
            suite,
            world,
        }
    }

    /// Override the precompute-pool target size (builder style).
    pub fn with_pool_size(mut self, pool_size: usize) -> Self {
        assert!(pool_size >= 1);
        self.pool_size = pool_size;
        self
    }

    /// The five C scenarios of §IV-A, with Table II option counts.
    ///
    /// Repair rates span "easy" bugs (single-edit searches find them within
    /// a GenProg-scale budget) and "hard" ones (repair density so low that
    /// one-edit-at-a-time search exhausts its budget, while multi-mutation
    /// probes still reach them) — the paper's §VI observation that "some
    /// bugs are easier to repair than others" and that "for harder
    /// scenarios ... the choice of algorithm matters a great deal."
    pub fn catalog_c() -> Vec<BugScenario> {
        vec![
            // (name, options k, density optimum x*, statements, tests, repair rate, seed)
            Self::custom("units", ScenarioKind::C, 1000, 96, 600, 30, 0.003, 0xC_0001)
                .with_pool_size(2000),
            Self::custom(
                "gzip-2009-08-16",
                ScenarioKind::C,
                5000,
                48,
                2500,
                60,
                0.0001, // hard: ≈33k expected single-edit evals
                0xC_0002,
            )
            .with_pool_size(30_000),
            Self::custom(
                "gzip-2009-09-26",
                ScenarioKind::C,
                2000,
                64,
                2500,
                60,
                0.00015, // hard-ish: ≈22k expected single-edit evals
                0xC_0003,
            )
            .with_pool_size(20_000),
            Self::custom(
                "libtiff-2005-12-14",
                ScenarioKind::C,
                100,
                27,
                1200,
                45,
                0.002,
                0xC_0004,
            )
            .with_pool_size(3_000),
            Self::custom(
                "lighttpd-1806-1807",
                ScenarioKind::C,
                50,
                11,
                900,
                35,
                0.0008,
                0xC_0005,
            )
            .with_pool_size(12_000),
        ]
    }

    /// The five Defects4J scenarios of §IV-A: same option count (100),
    /// differing value distributions ("vary in the distribution of values
    /// over them") and difficulties.
    pub fn catalog_java() -> Vec<BugScenario> {
        vec![
            Self::custom(
                "Chart26",
                ScenarioKind::Java,
                100,
                35,
                800,
                50,
                0.00012, // hard: ≈28k expected single-edit evals
                0x7A_0001,
            )
            .with_pool_size(25_000),
            Self::custom(
                "Closure13",
                ScenarioKind::Java,
                100,
                20,
                1500,
                70,
                0.0015,
                0x7A_0002,
            )
            .with_pool_size(3_000),
            Self::custom(
                "Closure22",
                ScenarioKind::Java,
                100,
                48,
                1500,
                70,
                0.00025, // borderline: ≈13k expected single-edit evals
                0x7A_0003,
            )
            .with_pool_size(15_000),
            Self::custom(
                "Math8",
                ScenarioKind::Java,
                100,
                60,
                700,
                40,
                0.002,
                0x7A_0004,
            )
            .with_pool_size(2_500),
            Self::custom(
                "Math80",
                ScenarioKind::Java,
                100,
                14,
                700,
                40,
                0.001,
                0x7A_0005,
            )
            .with_pool_size(4_000),
        ]
    }

    /// All ten APR scenarios, C first (the paper's table order).
    pub fn catalog_all() -> Vec<BugScenario> {
        let mut v = Self::catalog_c();
        v.extend(Self::catalog_java());
        v
    }

    /// Look up a catalog scenario by name.
    pub fn by_name(name: &str) -> Option<BugScenario> {
        Self::catalog_all().into_iter().find(|s| s.name == name)
    }

    /// Number of arms (alias for `options`).
    pub fn num_arms(&self) -> usize {
        self.options
    }

    /// Where this scenario's repair density peaks.
    pub fn density_optimum(&self) -> usize {
        self.world.interaction.density_optimum(self.options)
    }

    /// The scenario's value distribution over arms x ∈ 1..=options: the
    /// normalized repair-density proxy `v(x) ∝ x·survival(x)`, scaled so
    /// the peak sits at 0.9 (keeping Bernoulli feedback genuinely noisy
    /// even at the optimum).
    pub fn value_distribution(&self) -> Vec<f64> {
        let peak = self
            .world
            .interaction
            .repair_density(self.density_optimum());
        (1..=self.options)
            .map(|x| 0.9 * self.world.interaction.repair_density(x) / peak)
            .collect()
    }

    /// Precompute this scenario's safe-mutation pool (`pool_size` members).
    pub fn build_pool(&self, seed: u64, ledger: Option<&CostLedger>) -> MutationPool {
        MutationPool::precompute(
            &self.program,
            &self.suite,
            &self.world,
            self.pool_size,
            seed,
            ledger,
        )
    }

    /// Evaluate one composition against this scenario.
    pub fn evaluate(&self, muts: &[Mutation], ledger: Option<&CostLedger>) -> ProbeOutcome {
        evaluate_composition(&self.world, &self.suite, muts, ledger)
    }

    /// Derive a *sibling bug* in the same program: same program text, same
    /// suite shape, same mutation space and interaction statistics — but a
    /// different defect (different defect site, different repair draws).
    ///
    /// This is the §III-C amortization setting: "precomputes a large pool
    /// of safe mutations, a one-time cost that ... can be amortized over
    /// the cost of repairing multiple bugs in a given program." Safety is
    /// keyed only on `(world_seed, mutation)`, so a pool built for one bug
    /// is *exactly valid* for every sibling.
    pub fn sibling_bug(&self, bug_index: u64) -> BugScenario {
        let mut out = self.clone();
        out.name = format!("{}#bug{}", self.name, bug_index);
        // Move the defect deterministically; repair draws are keyed on the
        // repair tag + mutation id + defect proximity, so changing the
        // defect site (and a per-bug repair-rate salt via the tag below)
        // yields an independent repair set over the same safe pool.
        let k = self.program.len() as u64;
        let new_site =
            (mwu_core::rng::mix(&[self.world.world_seed, 0xB06, bug_index]) % k) as usize;
        out.program.defect_site = new_site;
        out.world.defect_site = new_site;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_sizes() {
        let c = BugScenario::catalog_c();
        let sizes: Vec<(String, usize)> = c.iter().map(|s| (s.name.clone(), s.options)).collect();
        assert_eq!(
            sizes,
            vec![
                ("units".to_string(), 1000),
                ("gzip-2009-08-16".to_string(), 5000),
                ("gzip-2009-09-26".to_string(), 2000),
                ("libtiff-2005-12-14".to_string(), 100),
                ("lighttpd-1806-1807".to_string(), 50),
            ]
        );
        let j = BugScenario::catalog_java();
        assert_eq!(j.len(), 5);
        assert!(j.iter().all(|s| s.options == 100));
    }

    #[test]
    fn gzip_optimum_is_48() {
        let s = BugScenario::by_name("gzip-2009-08-16").unwrap();
        let opt = s.density_optimum();
        assert!(opt.abs_diff(48) <= 3, "gzip optimum {opt}");
    }

    #[test]
    fn optima_span_paper_range() {
        let all = BugScenario::catalog_all();
        for s in &all {
            let opt = s.density_optimum();
            assert!(
                (8..=300).contains(&opt),
                "{}: optimum {opt} outside the paper's 11–271 band",
                s.name
            );
        }
        // And they differ across scenarios ("for each program/bug
        // combination, the optimal density occurs at a different place").
        let mut opts: Vec<usize> = all.iter().map(|s| s.density_optimum()).collect();
        opts.sort_unstable();
        opts.dedup();
        assert!(opts.len() >= 7);
    }

    #[test]
    fn value_distribution_is_unimodal_peaking_at_optimum() {
        let s = BugScenario::by_name("libtiff-2005-12-14").unwrap();
        let v = s.value_distribution();
        assert_eq!(v.len(), 100);
        let peak_idx = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak_idx + 1, s.density_optimum());
        assert!((v[peak_idx] - 0.9).abs() < 1e-9);
        assert!(v.iter().all(|&x| (0.0..=0.9 + 1e-9).contains(&x)));
    }

    #[test]
    fn java_distributions_differ() {
        let j = BugScenario::catalog_java();
        let d0 = j[0].value_distribution();
        let d1 = j[1].value_distribution();
        assert_eq!(d0.len(), d1.len());
        assert_ne!(d0, d1);
    }

    #[test]
    fn by_name_roundtrip() {
        assert!(BugScenario::by_name("Math80").is_some());
        assert!(BugScenario::by_name("nonexistent").is_none());
    }

    #[test]
    fn small_scenario_pool_and_probe() {
        let s = BugScenario::custom("tiny", ScenarioKind::Synthetic, 30, 8, 300, 15, 0.02, 5);
        let pool = s.build_pool(1, None);
        assert_eq!(pool.len(), 30);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        use rand::SeedableRng;
        let comp = pool.sample_composition(8, &mut rng);
        let out = s.evaluate(&comp, None);
        assert!(out.fitness <= s.suite.max_fitness());
    }
}
