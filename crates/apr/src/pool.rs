//! The precomputed safe-mutation pool (paper §III-C).
//!
//! "We propose a new approach, which precomputes a large pool of safe
//! mutations, a one-time cost that is easily run in parallel and can be
//! amortized over the cost of repairing multiple bugs in a given program."
//!
//! [`MutationPool::precompute`] is that phase: candidate mutations are
//! generated, deduplicated, and validated against the suite in parallel
//! (rayon), keeping the ≈30 % that are individually safe. Because each
//! candidate's validation is one independent suite run, the phase is
//! embarrassingly parallel: its critical path is one suite run per batch,
//! recorded in the [`CostLedger`].
//!
//! [`MutationPool::revalidate`] is the incremental update of §III-C: when
//! the suite grows, pool members are re-screened against the new test only.

use crate::evaluate::WorldParams;
use crate::ledger::CostLedger;
use crate::mutation::Mutation;
use crate::program::Program;
use crate::suite::TestSuite;
use mwu_core::rng::keyed_bernoulli;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A pool of individually-safe mutations for one program world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutationPool {
    mutations: Vec<Mutation>,
    /// Candidates tested to build the pool (safe + unsafe).
    candidates_tested: u64,
}

impl MutationPool {
    /// Precompute a pool of (up to) `target_size` safe mutations.
    ///
    /// Candidates are generated deterministically from `seed`, restricted
    /// to suite-covered statements, deduplicated, and validated in parallel
    /// batches. Each validation is one suite run charged to `ledger`; each
    /// batch contributes one suite-run of critical-path latency (the
    /// batch's validations all run concurrently).
    ///
    /// Returns a smaller pool only if the mutation space is exhausted
    /// before `target_size` safe mutations exist.
    pub fn precompute(
        program: &Program,
        suite: &TestSuite,
        world: &WorldParams,
        target_size: usize,
        seed: u64,
        ledger: Option<&CostLedger>,
    ) -> Self {
        assert!(target_size > 0);
        let sites = program.covered_sites(suite);
        assert!(!sites.is_empty(), "suite covers no statements");

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut seen: HashSet<u64> = HashSet::new();
        let mut safe: Vec<Mutation> = Vec::with_capacity(target_size);
        let mut tested: u64 = 0;
        // Upper bound on distinct candidates we can hope to draw.
        let space = sites.len() as u64 * program.len() as u64 * 4;
        let batch = (4 * target_size).clamp(64, 8192);

        while safe.len() < target_size && (seen.len() as u64) < space {
            // Generate a deduplicated batch sequentially (cheap)...
            let mut candidates = Vec::with_capacity(batch);
            let mut attempts = 0usize;
            while candidates.len() < batch && attempts < batch * 20 {
                attempts += 1;
                let m = Mutation::random(program, &sites, &mut rng);
                if seen.insert(m.id().0) {
                    candidates.push(m);
                }
            }
            if candidates.is_empty() {
                break;
            }
            // ...then validate it in parallel (each validation = one suite
            // run; the batch's critical path is a single run since all runs
            // are concurrent).
            let cost = suite.full_run_cost_ms();
            let verdicts: Vec<(Mutation, bool)> = candidates
                .par_iter()
                // Safety screening is a keyed hash: ~100ns/candidate. The
                // hint sizes chunks for that cost and keeps sub-batch-sized
                // jobs off the pool entirely.
                .with_cost_hint(100)
                .map(|&m| (m, m.is_safe(world.world_seed, world.safe_rate)))
                .collect();
            tested += verdicts.len() as u64;
            if let Some(l) = ledger {
                for _ in 0..verdicts.len() {
                    l.record_eval(cost);
                }
                l.record_parallel_phase(cost);
            }
            for (m, ok) in verdicts {
                if ok && safe.len() < target_size {
                    safe.push(m);
                }
            }
        }

        Self {
            mutations: safe,
            candidates_tested: tested,
        }
    }

    /// Build directly from known-safe mutations (tests, serialization).
    pub fn from_mutations(mutations: Vec<Mutation>) -> Self {
        Self {
            candidates_tested: mutations.len() as u64,
            mutations,
        }
    }

    /// The safe mutations.
    pub fn mutations(&self) -> &[Mutation] {
        &self.mutations
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }

    /// How many candidates were validated to build this pool.
    pub fn candidates_tested(&self) -> u64 {
        self.candidates_tested
    }

    /// Sample `x` distinct pool members uniformly (Fig. 6 line 5,
    /// `Random_Subset(M, probes)`), by partial Fisher–Yates.
    ///
    /// # Panics
    /// Panics if `x > len()`.
    pub fn sample_composition(&self, x: usize, rng: &mut SmallRng) -> Vec<Mutation> {
        let mut idx = Vec::new();
        let mut out = Vec::with_capacity(x);
        self.sample_composition_into(x, rng, &mut idx, &mut out);
        out
    }

    /// [`Self::sample_composition`] writing into caller-owned scratch: the
    /// index permutation goes into `idx` and the composition into `out`
    /// (both cleared first). Draws the identical RNG sequence as the
    /// allocating form, so a probe loop that reuses per-thread scratch (a
    /// [`mwu_core::ThreadArena`] buffer) produces byte-identical
    /// compositions. The O(pool) permutation buffer is the allocation this
    /// removes from the per-probe hot path.
    pub fn sample_composition_into(
        &self,
        x: usize,
        rng: &mut SmallRng,
        idx: &mut Vec<usize>,
        out: &mut Vec<Mutation>,
    ) {
        assert!(
            x <= self.mutations.len(),
            "requested {x} mutations from a pool of {}",
            self.mutations.len()
        );
        let n = self.mutations.len();
        idx.clear();
        idx.extend(0..n);
        for i in 0..x {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        out.clear();
        out.extend(idx[..x].iter().map(|&i| self.mutations[i]));
    }

    /// Incremental pool update when the suite gains a test (paper §III-C):
    /// re-screen each member against the new test only; members that break
    /// it are evicted. Each re-screen costs one *single-test* execution
    /// (`new_test_cost_ms`), run in parallel.
    ///
    /// `break_rate` is the probability a previously-safe mutation fails the
    /// new test (deterministic per (mutation, test)).
    pub fn revalidate(
        &mut self,
        world: &WorldParams,
        new_test_id: usize,
        new_test_cost_ms: u64,
        break_rate: f64,
        ledger: Option<&CostLedger>,
    ) -> usize {
        let before = self.mutations.len();
        let survivors: Vec<Mutation> = self
            .mutations
            .par_iter()
            .with_cost_hint(100)
            .copied()
            .filter(|m| {
                !keyed_bernoulli(
                    break_rate,
                    &[world.world_seed, 0xE57_ADD, new_test_id as u64, m.id().0],
                )
            })
            .collect();
        if let Some(l) = ledger {
            for _ in 0..before {
                l.record_eval(new_test_cost_ms);
            }
            l.record_parallel_phase(new_test_cost_ms);
        }
        self.mutations = survivors;
        before - self.mutations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::InteractionModel;

    fn setup() -> (Program, TestSuite, WorldParams) {
        let world = WorldParams {
            world_seed: 99,
            safe_rate: 0.3,
            interaction: InteractionModel::pairwise_with_optimum(30),
            defect_site: 10,
            repair_rate: 0.004,
        };
        let program = Program::synthetic("p", 500, world.world_seed);
        let suite = TestSuite::synthetic(40, 1, world.world_seed);
        (program, suite, world)
    }

    #[test]
    fn precompute_reaches_target_and_members_are_safe() {
        let (program, suite, world) = setup();
        let pool = MutationPool::precompute(&program, &suite, &world, 200, 1, None);
        assert_eq!(pool.len(), 200);
        assert!(pool
            .mutations()
            .iter()
            .all(|m| m.is_safe(world.world_seed, world.safe_rate)));
        // ~30 % of candidates are safe, so 200 safe needs ≥ ~450 tested.
        assert!(pool.candidates_tested() >= 400);
    }

    #[test]
    fn precompute_is_deterministic() {
        let (program, suite, world) = setup();
        let a = MutationPool::precompute(&program, &suite, &world, 100, 7, None);
        let b = MutationPool::precompute(&program, &suite, &world, 100, 7, None);
        assert_eq!(a, b);
        let c = MutationPool::precompute(&program, &suite, &world, 100, 8, None);
        assert_ne!(a, c);
    }

    #[test]
    fn pool_members_are_distinct() {
        let (program, suite, world) = setup();
        let pool = MutationPool::precompute(&program, &suite, &world, 300, 2, None);
        let mut ids: Vec<u64> = pool.mutations().iter().map(|m| m.id().0).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn ledger_charges_candidates_and_critical_path() {
        let (program, suite, world) = setup();
        let ledger = CostLedger::new();
        let pool = MutationPool::precompute(&program, &suite, &world, 50, 3, Some(&ledger));
        assert!(!pool.is_empty());
        assert_eq!(ledger.fitness_evals(), pool.candidates_tested());
        // Parallel critical path: far less than sequential cost.
        assert!(ledger.critical_path_ms() < ledger.simulated_ms());
    }

    #[test]
    fn sample_composition_distinct_members() {
        let (program, suite, world) = setup();
        let pool = MutationPool::precompute(&program, &suite, &world, 100, 4, None);
        let mut rng = SmallRng::seed_from_u64(5);
        for x in [1usize, 10, 50, 100] {
            let comp = pool.sample_composition(x, &mut rng);
            assert_eq!(comp.len(), x);
            let mut ids: Vec<u64> = comp.iter().map(|m| m.id().0).collect();
            ids.sort_unstable();
            let n = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), n, "composition of {x} has duplicates");
        }
    }

    #[test]
    #[should_panic]
    fn oversized_sample_panics() {
        let pool = MutationPool::from_mutations(vec![]);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = pool.sample_composition(1, &mut rng);
    }

    #[test]
    fn revalidate_evicts_a_fraction() {
        let (program, suite, world) = setup();
        let mut pool = MutationPool::precompute(&program, &suite, &world, 400, 6, None);
        let before = pool.len();
        let evicted = pool.revalidate(&world, 1000, 50, 0.10, None);
        assert_eq!(before - pool.len(), evicted);
        let rate = evicted as f64 / before as f64;
        assert!((rate - 0.10).abs() < 0.06, "eviction rate {rate}");
    }

    #[test]
    fn revalidate_is_idempotent_for_same_test() {
        let (program, suite, world) = setup();
        let mut pool = MutationPool::precompute(&program, &suite, &world, 200, 6, None);
        pool.revalidate(&world, 55, 10, 0.2, None);
        let after_first = pool.len();
        let evicted_second = pool.revalidate(&world, 55, 10, 0.2, None);
        assert_eq!(evicted_second, 0, "survivors of test 55 must stay safe");
        assert_eq!(pool.len(), after_first);
    }
}
