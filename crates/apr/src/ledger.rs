//! Cost accounting for the simulated test infrastructure.
//!
//! The paper reports search cost in *fitness (test-suite) evaluations* and
//! *latency* (§IV-G: MWRepair needs ≈52 % of GenProg's fitness evaluations
//! and ≈40× less latency thanks to parallelism). The ledger accumulates
//! both: every simulated suite execution adds one evaluation and its
//! simulated milliseconds; parallel phases report their *critical-path*
//! latency separately from total CPU work.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe accumulator of simulated evaluation costs.
#[derive(Debug, Default)]
pub struct CostLedger {
    fitness_evals: AtomicU64,
    simulated_ms: AtomicU64,
    critical_path_ms: AtomicU64,
}

impl CostLedger {
    /// Fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one test-suite execution of `cost_ms` simulated milliseconds
    /// of sequential work.
    pub fn record_eval(&self, cost_ms: u64) {
        self.fitness_evals.fetch_add(1, Ordering::Relaxed);
        self.simulated_ms.fetch_add(cost_ms, Ordering::Relaxed);
    }

    /// Record the latency of one parallel phase: `max_ms` is the slowest
    /// participant (the critical path — what a wall clock would see).
    pub fn record_parallel_phase(&self, max_ms: u64) {
        self.critical_path_ms.fetch_add(max_ms, Ordering::Relaxed);
    }

    /// Total test-suite executions so far.
    pub fn fitness_evals(&self) -> u64 {
        self.fitness_evals.load(Ordering::Relaxed)
    }

    /// Total sequential simulated work (CPU-milliseconds of testing).
    pub fn simulated_ms(&self) -> u64 {
        self.simulated_ms.load(Ordering::Relaxed)
    }

    /// Accumulated critical-path latency (wall-clock-equivalent
    /// milliseconds under perfect parallelization of each phase).
    pub fn critical_path_ms(&self) -> u64 {
        self.critical_path_ms.load(Ordering::Relaxed)
    }

    /// Snapshot for serialization / reporting.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            fitness_evals: self.fitness_evals(),
            simulated_ms: self.simulated_ms(),
            critical_path_ms: self.critical_path_ms(),
        }
    }

    /// Overwrite all counters from a snapshot (checkpoint resume: the
    /// resumed run's ledger continues from the killed run's totals).
    pub fn restore(&self, snapshot: CostSnapshot) {
        self.fitness_evals
            .store(snapshot.fitness_evals, Ordering::Relaxed);
        self.simulated_ms
            .store(snapshot.simulated_ms, Ordering::Relaxed);
        self.critical_path_ms
            .store(snapshot.critical_path_ms, Ordering::Relaxed);
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.fitness_evals.store(0, Ordering::Relaxed);
        self.simulated_ms.store(0, Ordering::Relaxed);
        self.critical_path_ms.store(0, Ordering::Relaxed);
    }
}

/// Immutable snapshot of a [`CostLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostSnapshot {
    /// Test-suite executions.
    pub fitness_evals: u64,
    /// Sequential simulated milliseconds.
    pub simulated_ms: u64,
    /// Critical-path (parallel wall-clock-equivalent) milliseconds.
    pub critical_path_ms: u64,
}

impl CostSnapshot {
    /// Speedup offered by parallel execution: sequential / critical-path.
    pub fn parallel_speedup(&self) -> f64 {
        if self.critical_path_ms == 0 {
            1.0
        } else {
            self.simulated_ms as f64 / self.critical_path_ms as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let l = CostLedger::new();
        l.record_eval(100);
        l.record_eval(200);
        l.record_parallel_phase(200);
        assert_eq!(l.fitness_evals(), 2);
        assert_eq!(l.simulated_ms(), 300);
        assert_eq!(l.critical_path_ms(), 200);
        let s = l.snapshot();
        assert!((s.parallel_speedup() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes() {
        let l = CostLedger::new();
        l.record_eval(5);
        l.reset();
        assert_eq!(l.snapshot().fitness_evals, 0);
        assert_eq!(l.snapshot().simulated_ms, 0);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let l = Arc::new(CostLedger::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        l.record_eval(3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.fitness_evals(), 8000);
        assert_eq!(l.simulated_ms(), 24_000);
    }

    #[test]
    fn restore_overwrites_counters() {
        let l = CostLedger::new();
        l.record_eval(10);
        l.restore(CostSnapshot {
            fitness_evals: 7,
            simulated_ms: 70,
            critical_path_ms: 35,
        });
        assert_eq!(l.fitness_evals(), 7);
        assert_eq!(l.simulated_ms(), 70);
        assert_eq!(l.critical_path_ms(), 35);
        l.record_eval(30);
        assert_eq!(l.fitness_evals(), 8);
        assert_eq!(l.simulated_ms(), 100);
    }

    #[test]
    fn speedup_with_no_parallel_phase_is_one() {
        let l = CostLedger::new();
        l.record_eval(10);
        assert_eq!(l.snapshot().parallel_speedup(), 1.0);
    }
}
