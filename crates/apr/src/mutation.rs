//! Mutation operators over simulated programs.
//!
//! The operator set is GenProg's (the paper §IV-G: "MWRepair uses the same
//! mutation operators as all four of the algorithms mentioned above"):
//! delete a statement, insert a copy of a donor statement after a site,
//! swap two statements, replace a statement with a donor. Mutations are
//! value types identified by a stable [`MutationId`] so safety and conflict
//! draws can be keyed deterministically.

use crate::program::Program;
use mwu_core::rng::keyed_bernoulli;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The GenProg operator set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MutOp {
    /// Remove the statement at `site`.
    Delete,
    /// Insert a copy of `donor` after `site`.
    Insert,
    /// Exchange the statements at `site` and `donor`.
    Swap,
    /// Overwrite `site` with a copy of `donor`.
    Replace,
}

impl MutOp {
    /// All operators.
    pub const ALL: [MutOp; 4] = [MutOp::Delete, MutOp::Insert, MutOp::Swap, MutOp::Replace];

    /// Stable small integer tag (used in deterministic keying).
    pub fn tag(self) -> u64 {
        match self {
            MutOp::Delete => 0,
            MutOp::Insert => 1,
            MutOp::Swap => 2,
            MutOp::Replace => 3,
        }
    }
}

/// Stable identifier of a mutation within one program world: encodes
/// (operator, site, donor) injectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MutationId(pub u64);

/// One whole-statement mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mutation {
    /// Operator applied.
    pub op: MutOp,
    /// Target statement.
    pub site: usize,
    /// Donor statement (ignored for Delete; equal to `site` then).
    pub donor: usize,
}

impl Mutation {
    /// Stable id: injective over (op, site, donor) for programs below
    /// 2³⁰ statements.
    pub fn id(&self) -> MutationId {
        MutationId(self.op.tag() | ((self.site as u64) << 2) | ((self.donor as u64) << 32))
    }

    /// Draw a uniformly random mutation over the given legal sites.
    ///
    /// `sites` must be the covered statements (the paper restricts
    /// mutations to code executed by the suite); donors are drawn from the
    /// whole program (GenProg inserts code from anywhere in the same
    /// program).
    pub fn random(program: &Program, sites: &[usize], rng: &mut SmallRng) -> Self {
        assert!(!sites.is_empty(), "no covered mutation sites");
        let op = MutOp::ALL[rng.gen_range(0..MutOp::ALL.len())];
        let site = sites[rng.gen_range(0..sites.len())];
        let donor = if op == MutOp::Delete {
            site
        } else {
            rng.gen_range(0..program.len())
        };
        Self { op, site, donor }
    }

    /// Is this mutation *individually safe* — does the mutated program pass
    /// every required test?
    ///
    /// Deterministic per (world, mutation): a fixed ≈`safe_rate` fraction of
    /// the mutation space is safe, exactly as a real test suite would
    /// partition it. Delete of an uncovered statement cannot break covered
    /// behaviour, but sites are pre-restricted to covered code, so all
    /// operators share the base rate, modulated slightly by operator type
    /// (deletes of redundant code are safer in practice; swaps are the most
    /// disruptive — constants chosen to keep the blended rate at
    /// `safe_rate`).
    pub fn is_safe(&self, world_seed: u64, safe_rate: f64) -> bool {
        let op_factor = match self.op {
            MutOp::Delete => 1.15,
            MutOp::Insert => 1.00,
            MutOp::Swap => 0.85,
            MutOp::Replace => 1.00,
        };
        let p = (safe_rate * op_factor).clamp(0.0, 1.0);
        keyed_bernoulli(p, &[world_seed, 0x5AFE, self.id().0])
    }

    /// Is this safe mutation one that *repairs the defect* (passes the
    /// bug-inducing tests as well)? Only meaningful for safe mutations —
    /// "any mutation that constitutes a bug repair must also be safe"
    /// (paper §III).
    ///
    /// Repairs cluster mildly near the defect site: the per-mutation repair
    /// probability is `repair_rate`, doubled within a small neighborhood of
    /// the defect. The boost models fault locality without handing
    /// enumeration-ordered searches an outsized win (GenProg-style repairs
    /// are frequently far from the faulty statement).
    pub fn is_repair(&self, world_seed: u64, defect_site: usize, repair_rate: f64) -> bool {
        let near = self.site.abs_diff(defect_site) <= 5;
        let p = if near {
            (repair_rate * 2.0).min(1.0)
        } else {
            repair_rate
        };
        // Keyed on the defect site as well: a repair fixes *this* bug, so
        // sibling bugs of the same program draw independent repair sets
        // over the shared safe-mutation space.
        keyed_bernoulli(p, &[world_seed, 0xF1F0, defect_site as u64, self.id().0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn program() -> Program {
        Program::synthetic("p", 300, 42)
    }

    #[test]
    fn id_is_injective_over_samples() {
        use std::collections::HashSet;
        let p = program();
        let sites: Vec<usize> = (0..p.len()).collect();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut seen: HashSet<(MutOp, usize, usize)> = HashSet::new();
        let mut ids: HashSet<u64> = HashSet::new();
        for _ in 0..5000 {
            let m = Mutation::random(&p, &sites, &mut rng);
            let fresh_triple = seen.insert((m.op, m.site, m.donor));
            let fresh_id = ids.insert(m.id().0);
            assert_eq!(fresh_triple, fresh_id, "id collision for {m:?}");
        }
    }

    #[test]
    fn safety_is_deterministic() {
        let m = Mutation {
            op: MutOp::Replace,
            site: 10,
            donor: 20,
        };
        assert_eq!(m.is_safe(1, 0.3), m.is_safe(1, 0.3));
        // Different worlds generally disagree somewhere.
        let disagreements = (0..200u64)
            .filter(|&w| m.is_safe(w, 0.3) != m.is_safe(w + 1000, 0.3))
            .count();
        assert!(disagreements > 0);
    }

    #[test]
    fn safe_rate_close_to_nominal() {
        let p = program();
        let sites: Vec<usize> = (0..p.len()).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let safe = (0..n)
            .filter(|_| Mutation::random(&p, &sites, &mut rng).is_safe(7, 0.3))
            .count();
        let rate = safe as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.03,
            "empirical safe rate {rate} far from 0.3"
        );
    }

    #[test]
    fn delete_uses_site_as_donor() {
        let p = program();
        let sites: Vec<usize> = (0..p.len()).collect();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let m = Mutation::random(&p, &sites, &mut rng);
            if m.op == MutOp::Delete {
                assert_eq!(m.site, m.donor);
            }
        }
    }

    #[test]
    fn repairs_are_rare_and_cluster_near_defect() {
        let world = 5;
        let defect = 150;
        let rate = 0.02; // boosted to 0.04 near the defect
        let mut near_hits = 0;
        let mut far_hits = 0;
        let mut near_total = 0u64;
        let mut far_total = 0u64;
        for site in 0..300 {
            for donor in 0..500 {
                let m = Mutation {
                    op: MutOp::Insert,
                    site,
                    donor,
                };
                let near = site.abs_diff(defect) <= 5;
                if m.is_repair(world, defect, rate) {
                    if near {
                        near_hits += 1;
                    } else {
                        far_hits += 1;
                    }
                }
                if near {
                    near_total += 1;
                } else {
                    far_total += 1;
                }
            }
        }
        let near_rate = near_hits as f64 / near_total as f64;
        let far_rate = far_hits as f64 / far_total.max(1) as f64;
        // 2× boost within the neighborhood; wide tolerance for the small
        // near sample (11 sites × 500 donors).
        assert!(
            near_rate > 1.3 * far_rate,
            "near {near_rate} vs far {far_rate}"
        );
        assert!((far_rate - rate).abs() < 0.005, "far rate {far_rate}");
    }

    #[test]
    fn repairs_are_defect_specific() {
        // Different defects draw (mostly) different repair sets over the
        // same mutation space — the amortization setting's premise.
        let world = 5;
        let rate = 0.01;
        let mut shared = 0;
        let mut total_a = 0;
        for site in 0..400 {
            for donor in 0..50 {
                let m = Mutation {
                    op: MutOp::Replace,
                    site,
                    donor,
                };
                let a = m.is_repair(world, 100, rate);
                let b = m.is_repair(world, 300, rate);
                if a {
                    total_a += 1;
                    if b {
                        shared += 1;
                    }
                }
            }
        }
        assert!(total_a > 50, "sample too small: {total_a}");
        // Independent draws: overlap ≈ rate, far below identity.
        assert!(
            (shared as f64) < 0.2 * total_a as f64,
            "{shared}/{total_a} repairs shared between unrelated defects"
        );
    }

    #[test]
    #[should_panic]
    fn random_with_no_sites_panics() {
        let p = program();
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = Mutation::random(&p, &[], &mut rng);
    }
}
