//! Structural application of mutations to program text.
//!
//! The search layers never need the mutated program text — the substrate
//! adjudicates probes statistically — but a real APR deployment must
//! *materialize* the winning patch. This module implements the GenProg
//! operators' structural semantics on the statement vector, so a repair
//! composition can be turned into a concrete mutated program (and so the
//! substrate's operators have real, testable meanings):
//!
//! * `Delete s`      — remove statement `s`.
//! * `Insert s ← d`  — insert a copy of donor `d` after `s`.
//! * `Swap s ↔ d`    — exchange the two statements.
//! * `Replace s ← d` — overwrite `s` with a copy of `d`.
//!
//! Compositions are applied in order. Sites refer to *original* statement
//! ids (APR tools resolve edits against the original AST); edits whose
//! site or donor has been deleted by an earlier edit in the same
//! composition are skipped — the standard "best-effort patch application"
//! semantics.

use crate::mutation::{MutOp, Mutation};
use crate::program::{Program, Statement};
use serde::{Deserialize, Serialize};

/// A materialized mutant: the program text after applying a composition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mutant {
    /// The mutated statement sequence. Each entry keeps the `id` of the
    /// original statement it was copied from (its origin).
    pub statements: Vec<Statement>,
    /// Edits actually applied (an edit is skipped if a prior delete
    /// removed its site or donor).
    pub applied: usize,
    /// Edits skipped.
    pub skipped: usize,
}

impl Mutant {
    /// Number of statements in the mutant.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True when all statements were deleted.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Token sequence (cheap structural fingerprint for equivalence
    /// checks).
    pub fn tokens(&self) -> Vec<u32> {
        self.statements.iter().map(|s| s.token).collect()
    }
}

/// Apply a composition of mutations to `program`, producing the mutant.
pub fn apply_mutations(program: &Program, muts: &[Mutation]) -> Mutant {
    // Working copy; position of each original id (None = deleted).
    let mut stmts: Vec<Statement> = program.statements.clone();
    let mut pos: Vec<Option<usize>> = (0..stmts.len()).map(Some).collect();
    let mut applied = 0;
    let mut skipped = 0;

    let locate =
        |pos: &[Option<usize>], id: usize| -> Option<usize> { pos.get(id).copied().flatten() };

    for m in muts {
        match m.op {
            MutOp::Delete => {
                if let Some(i) = locate(&pos, m.site) {
                    stmts.remove(i);
                    pos[m.site] = None;
                    for p in pos.iter_mut().flatten() {
                        if *p > i {
                            *p -= 1;
                        }
                    }
                    applied += 1;
                } else {
                    skipped += 1;
                }
            }
            MutOp::Insert => match (locate(&pos, m.site), locate(&pos, m.donor)) {
                (Some(i), Some(d)) => {
                    let copy = stmts[d].clone();
                    stmts.insert(i + 1, copy);
                    for p in pos.iter_mut().flatten() {
                        if *p > i {
                            *p += 1;
                        }
                    }
                    applied += 1;
                }
                _ => skipped += 1,
            },
            MutOp::Swap => match (locate(&pos, m.site), locate(&pos, m.donor)) {
                (Some(i), Some(d)) => {
                    stmts.swap(i, d);
                    pos[m.site] = Some(d);
                    pos[m.donor] = Some(i);
                    applied += 1;
                }
                _ => skipped += 1,
            },
            MutOp::Replace => match (locate(&pos, m.site), locate(&pos, m.donor)) {
                (Some(i), Some(d)) => {
                    let copy = stmts[d].clone();
                    stmts[i] = copy;
                    applied += 1;
                }
                _ => skipped += 1,
            },
        }
    }

    Mutant {
        statements: stmts,
        applied,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        Program::synthetic("apply", 20, 123)
    }

    fn m(op: MutOp, site: usize, donor: usize) -> Mutation {
        Mutation { op, site, donor }
    }

    #[test]
    fn empty_composition_is_identity() {
        let p = program();
        let mutant = apply_mutations(&p, &[]);
        assert_eq!(mutant.statements, p.statements);
        assert_eq!(mutant.applied, 0);
        assert_eq!(mutant.skipped, 0);
    }

    #[test]
    fn delete_shrinks_by_one() {
        let p = program();
        let mutant = apply_mutations(&p, &[m(MutOp::Delete, 5, 5)]);
        assert_eq!(mutant.len(), p.len() - 1);
        assert_eq!(mutant.applied, 1);
        // Statement 5's token is gone from position 5; 6 shifted down.
        assert_eq!(mutant.statements[5].id, p.statements[6].id);
    }

    #[test]
    fn insert_grows_by_one_with_donor_copy() {
        let p = program();
        let mutant = apply_mutations(&p, &[m(MutOp::Insert, 3, 10)]);
        assert_eq!(mutant.len(), p.len() + 1);
        assert_eq!(mutant.statements[4].token, p.statements[10].token);
        // Everything after position 4 shifted up.
        assert_eq!(mutant.statements[5].id, p.statements[4].id);
    }

    #[test]
    fn swap_exchanges_positions() {
        let p = program();
        let mutant = apply_mutations(&p, &[m(MutOp::Swap, 2, 7)]);
        assert_eq!(mutant.len(), p.len());
        assert_eq!(mutant.statements[2].id, p.statements[7].id);
        assert_eq!(mutant.statements[7].id, p.statements[2].id);
    }

    #[test]
    fn replace_overwrites_in_place() {
        let p = program();
        let mutant = apply_mutations(&p, &[m(MutOp::Replace, 4, 9)]);
        assert_eq!(mutant.len(), p.len());
        assert_eq!(mutant.statements[4].token, p.statements[9].token);
        assert_eq!(mutant.statements[9].token, p.statements[9].token);
    }

    #[test]
    fn edits_after_delete_of_site_are_skipped() {
        let p = program();
        let mutant = apply_mutations(
            &p,
            &[
                m(MutOp::Delete, 5, 5),
                m(MutOp::Replace, 5, 2), // site 5 deleted — skip
                m(MutOp::Insert, 1, 5),  // donor 5 deleted — skip
            ],
        );
        assert_eq!(mutant.applied, 1);
        assert_eq!(mutant.skipped, 2);
        assert_eq!(mutant.len(), p.len() - 1);
    }

    #[test]
    fn sites_refer_to_original_ids_across_shifts() {
        let p = program();
        // Insert before, then delete an original id after the shift: the
        // delete must still remove the statement originally numbered 10.
        let mutant = apply_mutations(&p, &[m(MutOp::Insert, 0, 1), m(MutOp::Delete, 10, 10)]);
        assert_eq!(mutant.applied, 2);
        assert_eq!(mutant.len(), p.len()); // +1 −1
        assert!(mutant
            .statements
            .iter()
            .all(|s| s.id != 10 || s.token == p.statements[10].token));
        // Original statement 10 no longer present at any position whose
        // origin id is 10... verify via count of id==10 entries (the donor
        // copies keep their origin's id).
        let tens = mutant.statements.iter().filter(|s| s.id == 10).count();
        assert_eq!(tens, 0);
    }

    #[test]
    fn composition_of_inverse_swaps_is_identity() {
        let p = program();
        let mutant = apply_mutations(&p, &[m(MutOp::Swap, 2, 7), m(MutOp::Swap, 2, 7)]);
        assert_eq!(
            mutant.tokens(),
            p.statements.iter().map(|s| s.token).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mass_deletion_can_empty_the_program() {
        let p = program();
        let all_deletes: Vec<Mutation> = (0..p.len()).map(|i| m(MutOp::Delete, i, i)).collect();
        let mutant = apply_mutations(&p, &all_deletes);
        assert!(mutant.is_empty());
        assert_eq!(mutant.applied, p.len());
    }
}
