//! Test prioritization and early-exit evaluation.
//!
//! "Testing the functionality of a large-scale software project can take
//! minutes to hours; this step occurs in the inner loop and is the dominant
//! cost" (paper §I). Real APR tools therefore do not always run the full
//! suite per probe: they order tests and stop at the first failure, which
//! is dramatically cheaper for the ~30–70 % of probes that break the
//! program. This module provides:
//!
//! * [`TestOrder`] — test orderings: suite order, cheapest-first, and
//!   most-discriminating-first (highest historical failure rate per unit
//!   cost, the classic prioritization heuristic);
//! * [`evaluate_early_exit`] — composition evaluation identical in verdict
//!   to [`crate::evaluate_composition`] but charged only for the tests
//!   actually executed (all of them for surviving probes; up to and
//!   including the first failing test otherwise).
//!
//! Which tests a broken composition fails is a fixed property of the
//! composition (keyed draws), so verdicts and costs are deterministic and
//! reproducible like everything else in the substrate.

use crate::evaluate::{evaluate_composition, ProbeOutcome, WorldParams};
use crate::ledger::CostLedger;
use crate::mutation::Mutation;
use crate::suite::TestSuite;
use mwu_core::rng::keyed_uniform;
use serde::{Deserialize, Serialize};

/// A test-execution order for early-exit evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestOrder {
    /// Suite order (ids ascending) — the unprioritized baseline.
    SuiteOrder,
    /// Cheapest test first: minimizes the cost of reaching *a* failure
    /// when failures are spread uniformly.
    CheapestFirst,
    /// Highest failure-probability per unit cost first: the standard
    /// prioritization heuristic. Failure probability per test is estimated
    /// from the composition-failure model (a broken composition fails each
    /// required test with roughly the same marginal probability, so this
    /// reduces to cheapest-first here unless callers supply weights —
    /// retained as a distinct variant because the ordering differs once
    /// historical weights are attached).
    DiscriminatingFirst,
}

impl TestOrder {
    /// The required-test ids in execution order for this strategy.
    pub fn order(&self, suite: &TestSuite) -> Vec<usize> {
        let mut required: Vec<usize> = suite
            .tests()
            .iter()
            .filter(|t| !t.triggers_bug)
            .map(|t| t.id)
            .collect();
        match self {
            TestOrder::SuiteOrder => {}
            TestOrder::CheapestFirst | TestOrder::DiscriminatingFirst => {
                required.sort_by_key(|&id| suite.tests()[id].cost_ms);
            }
        }
        required
    }
}

/// Which required tests a *broken* composition fails — a deterministic
/// keyed draw per (world, composition, test), consistent with the failure
/// count [`crate::evaluate_composition`] reports.
fn fails_test(world: &WorldParams, comp_key: u64, test_id: usize, fail_fraction: f64) -> bool {
    keyed_uniform(&[world.world_seed, 0xFA_11ED, comp_key, test_id as u64]) < fail_fraction
}

fn composition_key(muts: &[Mutation]) -> u64 {
    muts.iter().fold(0u64, |a, m| a ^ m.id().0.rotate_left(13))
}

/// Evaluate `muts` with early exit under `order`.
///
/// The verdict (survived / repaired / fitness) is exactly that of
/// [`crate::evaluate_composition`]; only the charged cost differs:
/// surviving (and repairing) probes still execute the full suite, while
/// broken probes stop at their first failing test in the given order.
pub fn evaluate_early_exit(
    world: &WorldParams,
    suite: &TestSuite,
    order: TestOrder,
    muts: &[Mutation],
    ledger: Option<&CostLedger>,
) -> ProbeOutcome {
    // Adjudicate without charging (the None ledger), then charge for what
    // early exit actually executes.
    let full = evaluate_composition(world, suite, muts, None);
    if full.survived {
        // Full suite runs (every test passes, plus bug tests).
        if let Some(l) = ledger {
            l.record_eval(full.cost_ms);
        }
        return full;
    }

    // Broken probe: walk the order until the first failing test.
    let failed = (suite.baseline_fitness() - full.fitness) as f64;
    let fail_fraction = (failed / suite.n_required().max(1) as f64).clamp(0.0, 1.0);
    let key = composition_key(muts);
    let mut executed_ms: u64 = 0;
    let mut found_failure = false;
    for id in order.order(suite) {
        executed_ms += suite.tests()[id].cost_ms;
        if fails_test(world, key, id, fail_fraction) {
            found_failure = true;
            break;
        }
    }
    // Rounding edge: the keyed draws can miss every test even though the
    // fitness model says ≥1 failed; the full suite then ran.
    if !found_failure {
        executed_ms = suite.full_run_cost_ms();
    }
    if let Some(l) = ledger {
        l.record_eval(executed_ms);
    }
    ProbeOutcome {
        cost_ms: executed_ms,
        ..full
    }
}

/// Mean evaluation cost (simulated ms) of `trials` random x-compositions
/// from `pool` under a strategy — the quantity the `eval_cost` experiment
/// sweeps.
pub fn mean_eval_cost(
    world: &WorldParams,
    suite: &TestSuite,
    pool: &crate::pool::MutationPool,
    order: Option<TestOrder>,
    x: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    use rand::SeedableRng;
    let mut total: u64 = 0;
    for t in 0..trials {
        let mut rng =
            rand::rngs::SmallRng::seed_from_u64(mwu_core::rng::mix(&[seed, x as u64, t as u64]));
        let comp = pool.sample_composition(x.min(pool.len()), &mut rng);
        let out = match order {
            Some(o) => evaluate_early_exit(world, suite, o, &comp, None),
            None => evaluate_composition(world, suite, &comp, None),
        };
        total += out.cost_ms;
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{BugScenario, ScenarioKind};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (BugScenario, crate::pool::MutationPool) {
        let s = BugScenario::custom("prio", ScenarioKind::Synthetic, 80, 15, 400, 25, 0.0, 91);
        let pool = s.build_pool(3, None);
        (s, pool)
    }

    #[test]
    fn orders_cover_all_required_tests() {
        let (s, _) = setup();
        for order in [
            TestOrder::SuiteOrder,
            TestOrder::CheapestFirst,
            TestOrder::DiscriminatingFirst,
        ] {
            let o = order.order(&s.suite);
            assert_eq!(o.len(), s.suite.n_required());
            let mut sorted = o.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), o.len(), "{order:?} has duplicates");
        }
    }

    #[test]
    fn cheapest_first_is_cost_sorted() {
        let (s, _) = setup();
        let o = TestOrder::CheapestFirst.order(&s.suite);
        for w in o.windows(2) {
            assert!(s.suite.tests()[w[0]].cost_ms <= s.suite.tests()[w[1]].cost_ms);
        }
    }

    #[test]
    fn verdicts_match_full_evaluation() {
        let (s, pool) = setup();
        let mut rng = SmallRng::seed_from_u64(4);
        for x in [1usize, 10, 40, 80] {
            let comp = pool.sample_composition(x, &mut rng);
            let full = evaluate_composition(&s.world, &s.suite, &comp, None);
            let early =
                evaluate_early_exit(&s.world, &s.suite, TestOrder::CheapestFirst, &comp, None);
            assert_eq!(full.survived, early.survived, "x={x}");
            assert_eq!(full.repaired, early.repaired, "x={x}");
            assert_eq!(full.fitness, early.fitness, "x={x}");
        }
    }

    #[test]
    fn early_exit_is_cheaper_for_breaking_compositions() {
        let (s, pool) = setup();
        // Large x breaks most compositions; early exit must cut mean cost.
        let full = mean_eval_cost(&s.world, &s.suite, &pool, None, 60, 200, 7);
        let early = mean_eval_cost(
            &s.world,
            &s.suite,
            &pool,
            Some(TestOrder::CheapestFirst),
            60,
            200,
            7,
        );
        assert!(
            early < 0.8 * full,
            "early-exit {early} not well below full {full}"
        );
    }

    #[test]
    fn surviving_probes_pay_full_cost() {
        let (s, pool) = setup();
        // x = 1: always survives (pool members are safe singletons).
        let full = mean_eval_cost(&s.world, &s.suite, &pool, None, 1, 50, 8);
        let early = mean_eval_cost(
            &s.world,
            &s.suite,
            &pool,
            Some(TestOrder::SuiteOrder),
            1,
            50,
            8,
        );
        assert!((full - early).abs() < 1e-9);
    }

    #[test]
    fn early_exit_cost_is_deterministic_and_ledgered() {
        let (s, pool) = setup();
        let mut rng = SmallRng::seed_from_u64(9);
        let comp = pool.sample_composition(50, &mut rng);
        let a = evaluate_early_exit(&s.world, &s.suite, TestOrder::CheapestFirst, &comp, None);
        let b = evaluate_early_exit(&s.world, &s.suite, TestOrder::CheapestFirst, &comp, None);
        assert_eq!(a, b);

        let ledger = CostLedger::new();
        let c = evaluate_early_exit(
            &s.world,
            &s.suite,
            TestOrder::CheapestFirst,
            &comp,
            Some(&ledger),
        );
        assert_eq!(ledger.fitness_evals(), 1);
        assert_eq!(ledger.simulated_ms(), c.cost_ms);
    }
}
