//! The (algorithm × dataset × replicate) experiment grid behind
//! Tables II, III and IV.

use mwu_core::stats::{RunningStats, Summary};
use mwu_core::trace::{
    CellEndEvent, CellStartEvent, NullObserver, Observer, ProgressSink, ReplicateEvent,
};
use mwu_core::{
    run_to_convergence, DistributedConfig, RunConfig, RunOutcome, SlateConfig, StandardConfig,
    ThreadArena, Variant,
};
use mwu_datasets::Dataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Grid configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Replicates per (algorithm, dataset) cell (paper: 100).
    pub replicates: usize,
    /// Update-cycle limit per run (paper: 10,000).
    pub max_iterations: usize,
    /// Base seed; replicate `r` of dataset `d` under algorithm `a` derives
    /// its own stream from (seed, a, d, r).
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            replicates: 100,
            max_iterations: 10_000,
            seed: 0xEED5,
        }
    }
}

/// Aggregated results of one (algorithm, dataset) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Algorithm variant.
    pub algorithm: Variant,
    /// Dataset name.
    pub dataset: String,
    /// Instance size `k`.
    pub size: usize,
    /// `true` when the variant cannot run at this size (Distributed beyond
    /// its population cap) — rendered as `—` like the paper's tables.
    pub intractable: bool,
    /// Update cycles until convergence (non-converged runs contribute the
    /// iteration cap, mirroring the paper's "≥ 10000" entries).
    pub iterations: Summary,
    /// Table III accuracy (percent).
    pub accuracy: Summary,
    /// Table IV CPU-iterations (iterations × CPUs per iteration).
    pub cpu_iterations: Summary,
    /// Replicates that converged within the cap.
    pub converged: u64,
    /// Replicates executed.
    pub replicates: u64,
    /// Mean over replicates of each run's peak single-round congestion.
    pub peak_congestion: Summary,
}

impl CellResult {
    fn intractable_cell(algorithm: Variant, dataset: &Dataset) -> Self {
        let empty = RunningStats::new().summary();
        Self {
            algorithm,
            dataset: dataset.name.clone(),
            size: dataset.size(),
            intractable: true,
            iterations: empty,
            accuracy: empty,
            cpu_iterations: empty,
            converged: 0,
            replicates: 0,
            peak_congestion: empty,
        }
    }
}

/// Run one cell: `config.replicates` independent runs of `algorithm` on
/// `dataset`. Replicates are distributed over rayon workers; each derives a
/// deterministic seed so results are independent of scheduling.
pub fn run_cell(algorithm: Variant, dataset: &Dataset, config: &GridConfig) -> CellResult {
    run_cell_observed(algorithm, dataset, config, &mut NullObserver)
}

/// The seed replicate `r` of `algorithm` on `dataset` runs under — derived
/// exactly as [`run_cell`] derives it, and recorded in each replicate's
/// [`ReplicateEvent`] trace header so the replicate can be re-run alone.
pub fn replicate_seed(algorithm: Variant, dataset: &Dataset, base_seed: u64, r: u64) -> u64 {
    let alg_tag = match algorithm {
        Variant::Standard => 1u64,
        Variant::Slate => 2,
        Variant::Distributed => 3,
    };
    let data_tag = mwu_core::rng::mix(&[dataset.size() as u64, dataset.best_arm() as u64]);
    mwu_core::rng::mix(&[base_seed, alg_tag, data_tag, r])
}

/// [`run_cell`] with telemetry: a [`CellStartEvent`], one [`ReplicateEvent`]
/// per replicate (in replicate order, after the parallel phase joins, so
/// traces are scheduling-independent), and a [`CellEndEvent`].
pub fn run_cell_observed<O: Observer>(
    algorithm: Variant,
    dataset: &Dataset,
    config: &GridConfig,
    observer: &mut O,
) -> CellResult {
    let k = dataset.size();
    if observer.enabled() {
        observer.on_cell_start(CellStartEvent {
            algorithm: algorithm.to_string(),
            dataset: dataset.name.clone(),
            size: k,
            replicates: config.replicates,
        });
    }
    if algorithm == Variant::Distributed && !DistributedConfig::default().is_tractable(k) {
        if observer.enabled() {
            observer.on_cell_end(CellEndEvent {
                algorithm: algorithm.to_string(),
                dataset: dataset.name.clone(),
                converged: 0,
                replicates: 0,
                intractable: true,
            });
        }
        return CellResult::intractable_cell(algorithm, dataset);
    }

    let outcomes: Vec<(u64, u64, RunOutcome)> = (0..config.replicates as u64)
        .into_par_iter()
        .with_cost_hint(REPLICATE_COST_HINT_NS)
        .map(|r| run_replicate(algorithm, dataset, config, r))
        .collect();
    aggregate_and_emit(algorithm, dataset, config, &outcomes, observer)
}

/// Per-item cost hint for grid replicates: a replicate is a full
/// run-to-convergence (milliseconds), so the pool should hand out
/// single-replicate chunks rather than probing with a large first chunk.
/// Scheduling only — results are byte-identical for any value.
const REPLICATE_COST_HINT_NS: u64 = 1_000_000;

/// One replicate of `algorithm` on `dataset`: the unit of parallel work.
///
/// The algorithm instance comes from (and returns to) the executing
/// thread's [`ThreadArena`], so a worker sweeping many replicates reuses
/// one set of kernel buffers instead of reallocating per run; a reset
/// instance's trajectory is bit-identical to a fresh one's, and the RNG
/// stream is derived from the replicate key alone, so arena reuse cannot
/// move a byte of output.
fn run_replicate(
    algorithm: Variant,
    dataset: &Dataset,
    config: &GridConfig,
    r: u64,
) -> (u64, u64, RunOutcome) {
    let k = dataset.size();
    let run_seed = replicate_seed(algorithm, dataset, config.seed, r);
    let mut bandit = dataset.bandit();
    let run_cfg = RunConfig {
        max_iterations: config.max_iterations,
        seed: run_seed,
        run_past_convergence: false,
    };
    let outcome = match algorithm {
        Variant::Standard => {
            let mut alg = ThreadArena::with(|a| a.take_standard(k, StandardConfig::default()));
            let out = run_to_convergence(&mut alg, &mut bandit, &run_cfg);
            ThreadArena::with(move |a| a.give_standard(alg));
            out
        }
        Variant::Slate => {
            let mut alg = ThreadArena::with(|a| a.take_slate(k, SlateConfig::default()));
            let out = run_to_convergence(&mut alg, &mut bandit, &run_cfg);
            ThreadArena::with(move |a| a.give_slate(alg));
            out
        }
        Variant::Distributed => {
            let mut alg =
                ThreadArena::with(|a| a.take_distributed(k, DistributedConfig::default()))
                    .expect("tractability pre-checked");
            let out = run_to_convergence(&mut alg, &mut bandit, &run_cfg);
            ThreadArena::with(move |a| a.give_distributed(alg));
            out
        }
    };
    (r, run_seed, outcome)
}

/// Fold replicate outcomes into a [`CellResult`], emitting the per-replicate
/// and cell-end telemetry in replicate order (scheduling-independent).
fn aggregate_and_emit<O: Observer>(
    algorithm: Variant,
    dataset: &Dataset,
    config: &GridConfig,
    outcomes: &[(u64, u64, RunOutcome)],
    observer: &mut O,
) -> CellResult {
    let mut iterations = RunningStats::new();
    let mut accuracy = RunningStats::new();
    let mut cpu_iterations = RunningStats::new();
    let mut peak_congestion = RunningStats::new();
    let mut converged = 0u64;
    for (r, run_seed, outcome) in outcomes {
        iterations.push(outcome.iterations as f64);
        accuracy.push(dataset.accuracy_of(outcome.leader));
        cpu_iterations.push(outcome.cpu_iterations as f64);
        peak_congestion.push(outcome.comm.peak_congestion as f64);
        if outcome.converged {
            converged += 1;
        }
        if observer.enabled() {
            observer.on_replicate(ReplicateEvent {
                algorithm: algorithm.to_string(),
                dataset: dataset.name.clone(),
                replicate: *r,
                run_seed: *run_seed,
                max_iterations: config.max_iterations,
                outcome: outcome.clone(),
            });
        }
    }

    if observer.enabled() {
        observer.on_cell_end(CellEndEvent {
            algorithm: algorithm.to_string(),
            dataset: dataset.name.clone(),
            converged,
            replicates: config.replicates as u64,
            intractable: false,
        });
    }

    CellResult {
        algorithm,
        dataset: dataset.name.clone(),
        size: dataset.size(),
        intractable: false,
        iterations: iterations.summary(),
        accuracy: accuracy.summary(),
        cpu_iterations: cpu_iterations.summary(),
        converged,
        replicates: config.replicates as u64,
        peak_congestion: peak_congestion.summary(),
    }
}

/// Run the full grid: every algorithm on every dataset, in the paper's
/// column order (Standard, Distributed, Slate), narrating progress to
/// stderr via [`ProgressSink`].
pub fn run_grid(datasets: &[Dataset], config: &GridConfig) -> Vec<CellResult> {
    run_grid_observed(datasets, config, &mut ProgressSink::new())
}

/// [`run_grid`] with telemetry delivered to `observer`. Pass a
/// [`mwu_core::trace::JsonlSink`] to capture a machine-readable trace, a
/// [`ProgressSink`] for stderr narration, or a [`mwu_core::trace::Tee`] of
/// both.
pub fn run_grid_observed<O: Observer>(
    datasets: &[Dataset],
    config: &GridConfig,
    observer: &mut O,
) -> Vec<CellResult> {
    // Coarse-grained scheduling: every (cell, replicate) of the whole grid
    // is flattened into ONE parallel job, so the pool never drains to a
    // per-cell barrier — the tail of one cell overlaps the next cell's
    // replicates. Telemetry is withheld until the join and then emitted in
    // the canonical (cell, replicate) order, so traces stay byte-identical
    // to the per-cell form at every thread count.
    let algs = [Variant::Standard, Variant::Distributed, Variant::Slate];
    let cells: Vec<(&Dataset, Variant, bool)> = datasets
        .iter()
        .flat_map(|d| {
            algs.iter().map(move |&alg| {
                let tractable = alg != Variant::Distributed
                    || DistributedConfig::default().is_tractable(d.size());
                (d, alg, tractable)
            })
        })
        .collect();

    let units: Vec<(usize, u64)> = cells
        .iter()
        .enumerate()
        .filter(|(_, &(_, _, tractable))| tractable)
        .flat_map(|(i, _)| (0..config.replicates as u64).map(move |r| (i, r)))
        .collect();
    let outcomes: Vec<(usize, (u64, u64, RunOutcome))> = units
        .par_iter()
        .with_cost_hint(REPLICATE_COST_HINT_NS)
        .map(|&(i, r)| {
            let (dataset, alg, _) = cells[i];
            (i, run_replicate(alg, dataset, config, r))
        })
        .collect();
    let mut per_cell: Vec<Vec<(u64, u64, RunOutcome)>> = vec![Vec::new(); cells.len()];
    for (i, outcome) in outcomes {
        per_cell[i].push(outcome);
    }

    cells
        .iter()
        .zip(per_cell)
        .map(|(&(dataset, alg, tractable), outs)| {
            if observer.enabled() {
                observer.on_cell_start(CellStartEvent {
                    algorithm: alg.to_string(),
                    dataset: dataset.name.clone(),
                    size: dataset.size(),
                    replicates: config.replicates,
                });
            }
            if !tractable {
                if observer.enabled() {
                    observer.on_cell_end(CellEndEvent {
                        algorithm: alg.to_string(),
                        dataset: dataset.name.clone(),
                        converged: 0,
                        replicates: 0,
                        intractable: true,
                    });
                }
                return CellResult::intractable_cell(alg, dataset);
            }
            aggregate_and_emit(alg, dataset, config, &outs, &mut *observer)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwu_datasets::catalog;

    fn tiny_config() -> GridConfig {
        GridConfig {
            replicates: 5,
            max_iterations: 3_000,
            seed: 1,
        }
    }

    #[test]
    fn standard_cell_on_random64() {
        let d = catalog::by_name("random64").unwrap();
        let c = run_cell(Variant::Standard, &d, &tiny_config());
        assert!(!c.intractable);
        assert_eq!(c.replicates, 5);
        assert!(c.accuracy.mean > 80.0, "accuracy {}", c.accuracy.mean);
        assert!(c.iterations.mean >= 1.0);
        // CPU-iterations = iterations × k for Standard.
        assert!(
            (c.cpu_iterations.mean - c.iterations.mean * 64.0).abs() < 1e-6,
            "cpu {} vs iter {}",
            c.cpu_iterations.mean,
            c.iterations.mean
        );
    }

    #[test]
    fn distributed_intractable_at_16384() {
        let d = catalog::by_name("random16384").unwrap();
        let c = run_cell(Variant::Distributed, &d, &tiny_config());
        assert!(c.intractable);
        assert_eq!(c.replicates, 0);
    }

    #[test]
    fn cells_are_reproducible() {
        let d = catalog::by_name("random64").unwrap();
        let a = run_cell(Variant::Slate, &d, &tiny_config());
        let b = run_cell(Variant::Slate, &d, &tiny_config());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.accuracy, b.accuracy);
    }
}
