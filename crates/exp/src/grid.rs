//! The (algorithm × dataset × replicate) experiment grid behind
//! Tables II, III and IV.

use mwu_core::stats::{RunningStats, Summary};
use mwu_core::{
    run_to_convergence, DistributedConfig, DistributedMwu, RunConfig,
    SlateConfig, SlateMwu, StandardConfig, StandardMwu, Variant,
};
use mwu_datasets::Dataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Grid configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Replicates per (algorithm, dataset) cell (paper: 100).
    pub replicates: usize,
    /// Update-cycle limit per run (paper: 10,000).
    pub max_iterations: usize,
    /// Base seed; replicate `r` of dataset `d` under algorithm `a` derives
    /// its own stream from (seed, a, d, r).
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            replicates: 100,
            max_iterations: 10_000,
            seed: 0xEED5,
        }
    }
}

/// Aggregated results of one (algorithm, dataset) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Algorithm variant.
    pub algorithm: Variant,
    /// Dataset name.
    pub dataset: String,
    /// Instance size `k`.
    pub size: usize,
    /// `true` when the variant cannot run at this size (Distributed beyond
    /// its population cap) — rendered as `—` like the paper's tables.
    pub intractable: bool,
    /// Update cycles until convergence (non-converged runs contribute the
    /// iteration cap, mirroring the paper's "≥ 10000" entries).
    pub iterations: Summary,
    /// Table III accuracy (percent).
    pub accuracy: Summary,
    /// Table IV CPU-iterations (iterations × CPUs per iteration).
    pub cpu_iterations: Summary,
    /// Replicates that converged within the cap.
    pub converged: u64,
    /// Replicates executed.
    pub replicates: u64,
    /// Mean over replicates of each run's peak single-round congestion.
    pub peak_congestion: Summary,
}

impl CellResult {
    fn intractable_cell(algorithm: Variant, dataset: &Dataset) -> Self {
        let empty = RunningStats::new().summary();
        Self {
            algorithm,
            dataset: dataset.name.clone(),
            size: dataset.size(),
            intractable: true,
            iterations: empty,
            accuracy: empty,
            cpu_iterations: empty,
            converged: 0,
            replicates: 0,
            peak_congestion: empty,
        }
    }
}

/// Run one cell: `config.replicates` independent runs of `algorithm` on
/// `dataset`. Replicates are distributed over rayon workers; each derives a
/// deterministic seed so results are independent of scheduling.
pub fn run_cell(algorithm: Variant, dataset: &Dataset, config: &GridConfig) -> CellResult {
    let k = dataset.size();
    if algorithm == Variant::Distributed && !DistributedConfig::default().is_tractable(k) {
        return CellResult::intractable_cell(algorithm, dataset);
    }

    struct Rep {
        iterations: f64,
        accuracy: f64,
        cpu_iterations: f64,
        converged: bool,
        peak_congestion: f64,
    }

    let alg_tag = match algorithm {
        Variant::Standard => 1u64,
        Variant::Slate => 2,
        Variant::Distributed => 3,
    };
    let data_tag = mwu_core::rng::mix(&[dataset.size() as u64, dataset.best_arm() as u64]);

    let reps: Vec<Rep> = (0..config.replicates as u64)
        .into_par_iter()
        .map(|r| {
            let run_seed = mwu_core::rng::mix(&[config.seed, alg_tag, data_tag, r]);
            let mut bandit = dataset.bandit();
            let run_cfg = RunConfig {
                max_iterations: config.max_iterations,
                seed: run_seed,
                run_past_convergence: false,
            };
            let outcome = match algorithm {
                Variant::Standard => {
                    let mut alg = StandardMwu::new(k, StandardConfig::default());
                    run_to_convergence(&mut alg, &mut bandit, &run_cfg)
                }
                Variant::Slate => {
                    let mut alg = SlateMwu::new(k, SlateConfig::default());
                    run_to_convergence(&mut alg, &mut bandit, &run_cfg)
                }
                Variant::Distributed => {
                    let mut alg = DistributedMwu::try_new(k, DistributedConfig::default())
                        .expect("tractability pre-checked");
                    run_to_convergence(&mut alg, &mut bandit, &run_cfg)
                }
            };
            Rep {
                iterations: outcome.iterations as f64,
                accuracy: dataset.accuracy_of(outcome.leader),
                cpu_iterations: outcome.cpu_iterations as f64,
                converged: outcome.converged,
                peak_congestion: outcome.comm.peak_congestion as f64,
            }
        })
        .collect();

    let mut iterations = RunningStats::new();
    let mut accuracy = RunningStats::new();
    let mut cpu_iterations = RunningStats::new();
    let mut peak_congestion = RunningStats::new();
    let mut converged = 0u64;
    for rep in &reps {
        iterations.push(rep.iterations);
        accuracy.push(rep.accuracy);
        cpu_iterations.push(rep.cpu_iterations);
        peak_congestion.push(rep.peak_congestion);
        if rep.converged {
            converged += 1;
        }
    }

    CellResult {
        algorithm,
        dataset: dataset.name.clone(),
        size: k,
        intractable: false,
        iterations: iterations.summary(),
        accuracy: accuracy.summary(),
        cpu_iterations: cpu_iterations.summary(),
        converged,
        replicates: config.replicates as u64,
        peak_congestion: peak_congestion.summary(),
    }
}

/// Run the full grid: every algorithm on every dataset, in the paper's
/// column order (Standard, Distributed, Slate).
pub fn run_grid(datasets: &[Dataset], config: &GridConfig) -> Vec<CellResult> {
    let mut out = Vec::with_capacity(datasets.len() * 3);
    for dataset in datasets {
        for &alg in &[Variant::Standard, Variant::Distributed, Variant::Slate] {
            eprintln!(
                "  running {} on {} ({} reps)...",
                alg,
                dataset.name,
                config.replicates
            );
            out.push(run_cell(alg, dataset, config));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwu_datasets::catalog;

    fn tiny_config() -> GridConfig {
        GridConfig {
            replicates: 5,
            max_iterations: 3_000,
            seed: 1,
        }
    }

    #[test]
    fn standard_cell_on_random64() {
        let d = catalog::by_name("random64").unwrap();
        let c = run_cell(Variant::Standard, &d, &tiny_config());
        assert!(!c.intractable);
        assert_eq!(c.replicates, 5);
        assert!(c.accuracy.mean > 80.0, "accuracy {}", c.accuracy.mean);
        assert!(c.iterations.mean >= 1.0);
        // CPU-iterations = iterations × k for Standard.
        assert!(
            (c.cpu_iterations.mean - c.iterations.mean * 64.0).abs() < 1e-6,
            "cpu {} vs iter {}",
            c.cpu_iterations.mean,
            c.iterations.mean
        );
    }

    #[test]
    fn distributed_intractable_at_16384() {
        let d = catalog::by_name("random16384").unwrap();
        let c = run_cell(Variant::Distributed, &d, &tiny_config());
        assert!(c.intractable);
        assert_eq!(c.replicates, 0);
    }

    #[test]
    fn cells_are_reproducible() {
        let d = catalog::by_name("random64").unwrap();
        let a = run_cell(Variant::Slate, &d, &tiny_config());
        let b = run_cell(Variant::Slate, &d, &tiny_config());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.accuracy, b.accuracy);
    }
}
