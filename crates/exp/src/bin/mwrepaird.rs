//! `mwrepaird` — the multi-tenant repair daemon (crates/service) as a CLI.
//!
//! Drives every job in a work directory to completion in iteration-sliced
//! rounds across the rayon pool, crash-safe at each slice boundary:
//!
//! ```text
//! mwrepaird --work run/ --jobs batch.jsonl            # first run
//! mwrepaird --work run/ --halt-after 5                # cooperative kill
//! mwrepaird --work run/                               # resume from spool
//! ```
//!
//! Jobs arrive as JSONL (see `docs/SERVICE.md`) via `--jobs FILE` or
//! `--jobs -` (stdin); without `--jobs`, the daemon reloads the canonical
//! spool `<work>/jobs.jsonl` written by a previous run. The run summary
//! (the only wall-clock-bearing output) is printed to stdout as JSON.
//!
//! Flags: `--work DIR` (required), `--jobs FILE|-`, `--slice N` (update
//! cycles per session per round, default 16), `--halt-after N` (stop after
//! N rounds, leaving unfinished sessions checkpointed), `--threads N`,
//! `--trace-segment-bytes N` (rotate each session's trace into size-capped
//! `trace.NNN.jsonl` segments; concatenation stays byte-identical to the
//! single-file layout — see `docs/SERVICE.md`), `--profile` (enable the
//! phase profiler; the span report lands in `<work>/metrics.json`),
//! `--eager-sync` (disable the group-commit barrier and fsync every write
//! at the point it happens, the pre-batching durability discipline —
//! bytes are identical either way, see `docs/SERVICE.md`), `--quiet`.
//! Exit codes: 2 usage, 1 protocol/session/I-O failure.
//!
//! Storage-fault injection (docs/FAULTS.md §5): `--fault-rate R` mounts the
//! work directory through a [`FaultVfs`] adversary instead of the real
//! filesystem, `--fault-class eio|mixed|torn|lies` picks the fault mix and
//! `--fault-seed N` keys the deterministic schedule. Sessions that exhaust
//! their retries are quarantined, never fatal: the daemon still exits 0 and
//! reports `sessions_quarantined` in the summary.

use mwrepair_service::{Daemon, DaemonConfig, FaultVfs, StorageFaultConfig, StorageFaultPlan};
use std::io::Read;
use std::path::PathBuf;
use std::sync::Arc;

fn usage(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: mwrepaird --work DIR [--jobs FILE|-] [--slice N] [--halt-after ROUNDS] \
         [--threads N] [--trace-segment-bytes N] [--profile] [--eager-sync] [--quiet] \
         [--fault-rate R] [--fault-class eio|mixed|torn|lies] [--fault-seed N]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse()
        .unwrap_or_else(|_| usage(&format!("{flag} {v:?}: not a valid number")))
}

fn main() {
    let mut work: Option<PathBuf> = None;
    let mut jobs: Option<String> = None;
    let mut slice: usize = 16;
    let mut halt_after: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut quiet = false;
    let mut trace_segment_bytes: Option<u64> = None;
    let mut profile = false;
    let mut eager_sync = false;
    let mut fault_rate: f64 = 0.0;
    let mut fault_class = String::from("mixed");
    let mut fault_seed: u64 = 0;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--work" => work = Some(PathBuf::from(take("--work"))),
            "--jobs" => jobs = Some(take("--jobs")),
            "--slice" => slice = parse_num("--slice", &take("--slice")),
            "--halt-after" => halt_after = Some(parse_num("--halt-after", &take("--halt-after"))),
            "--threads" => threads = Some(parse_num("--threads", &take("--threads"))),
            "--trace-segment-bytes" => {
                trace_segment_bytes = Some(parse_num(
                    "--trace-segment-bytes",
                    &take("--trace-segment-bytes"),
                ))
            }
            "--profile" => profile = true,
            "--eager-sync" => eager_sync = true,
            "--quiet" => quiet = true,
            "--fault-rate" => fault_rate = parse_num("--fault-rate", &take("--fault-rate")),
            "--fault-class" => fault_class = take("--fault-class"),
            "--fault-seed" => fault_seed = parse_num("--fault-seed", &take("--fault-seed")),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    let work = work.unwrap_or_else(|| usage("--work DIR is required"));
    if let Some(n) = threads {
        rayon::set_num_threads(n.max(1));
    }

    if profile {
        mwu_core::prof::set_enabled(true);
    }

    let mut config = DaemonConfig::new(work);
    config.slice_iterations = slice.max(1);
    config.halt_after_rounds = halt_after;
    config.quiet = quiet;
    config.group_commit = !eager_sync;
    if let Some(cap) = trace_segment_bytes {
        if cap == 0 {
            usage("--trace-segment-bytes must be positive");
        }
        config.trace_segment_bytes = Some(cap);
    }
    if !(0.0..=1.0).contains(&fault_rate) {
        usage(&format!("--fault-rate {fault_rate}: must be in [0, 1]"));
    }
    if fault_rate > 0.0 {
        let faults = match fault_class.as_str() {
            "eio" => StorageFaultConfig::eio(fault_rate),
            "mixed" => StorageFaultConfig::mixed(fault_rate),
            "torn" => StorageFaultConfig::torn(fault_rate),
            "lies" => StorageFaultConfig::lies(fault_rate),
            other => usage(&format!(
                "--fault-class must be eio | mixed | torn | lies (got {other:?})"
            )),
        };
        // Rooted at the work directory: the same seed draws the same
        // fault schedule no matter where --work points.
        config.vfs = Arc::new(FaultVfs::rooted(
            StorageFaultPlan::new(fault_seed, faults),
            &config.workdir,
        ));
        if !quiet {
            eprintln!(
                "mwrepaird: injecting {fault_class} storage faults at rate {fault_rate} \
                 (seed {fault_seed})"
            );
        }
    }
    let mut daemon = Daemon::open(config).unwrap_or_else(|e| {
        eprintln!("mwrepaird: {e}");
        std::process::exit(1);
    });
    if let Some(src) = jobs {
        let bytes = if src == "-" {
            let mut buf = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buf)
                .unwrap_or_else(|e| usage(&format!("reading stdin: {e}")));
            buf
        } else {
            std::fs::read(&src).unwrap_or_else(|e| usage(&format!("reading {src:?}: {e}")))
        };
        match daemon.submit_bytes(&bytes) {
            Ok(n) => {
                if !quiet {
                    eprintln!(
                        "mwrepaird: accepted {n} new jobs ({} total)",
                        daemon.sessions().len()
                    );
                }
            }
            Err(e) => {
                eprintln!("mwrepaird: {e}");
                std::process::exit(1);
            }
        }
    }
    match daemon.run() {
        Ok(summary) => {
            if !quiet && summary.sessions_quarantined > 0 {
                eprintln!(
                    "mwrepaird: {} session(s) quarantined; inspect quarantine.json and re-run \
                     to re-arm",
                    summary.sessions_quarantined
                );
            }
            println!("{}", summary.to_json());
        }
        Err(e) => {
            eprintln!("mwrepaird: {e}");
            std::process::exit(1);
        }
    }
}
