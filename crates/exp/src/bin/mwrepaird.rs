//! `mwrepaird` — the multi-tenant repair daemon (crates/service) as a CLI.
//!
//! Drives every job in a work directory to completion in iteration-sliced
//! rounds across the rayon pool, crash-safe at each slice boundary:
//!
//! ```text
//! mwrepaird --work run/ --jobs batch.jsonl            # first run
//! mwrepaird --work run/ --halt-after 5                # cooperative kill
//! mwrepaird --work run/                               # resume from spool
//! ```
//!
//! Jobs arrive as JSONL (see `docs/SERVICE.md`) via `--jobs FILE` or
//! `--jobs -` (stdin); without `--jobs`, the daemon reloads the canonical
//! spool `<work>/jobs.jsonl` written by a previous run. The run summary
//! (the only wall-clock-bearing output) is printed to stdout as JSON.
//!
//! Flags: `--work DIR` (required), `--jobs FILE|-`, `--slice N` (update
//! cycles per session per round, default 16), `--halt-after N` (stop after
//! N rounds, leaving unfinished sessions checkpointed), `--threads N`,
//! `--quiet`. Exit codes: 2 usage, 1 protocol/session/I-O failure.

use mwrepair_service::{Daemon, DaemonConfig};
use std::io::Read;
use std::path::PathBuf;

fn usage(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: mwrepaird --work DIR [--jobs FILE|-] [--slice N] [--halt-after ROUNDS] \
         [--threads N] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse()
        .unwrap_or_else(|_| usage(&format!("{flag} {v:?}: not a valid number")))
}

fn main() {
    let mut work: Option<PathBuf> = None;
    let mut jobs: Option<String> = None;
    let mut slice: usize = 16;
    let mut halt_after: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--work" => work = Some(PathBuf::from(take("--work"))),
            "--jobs" => jobs = Some(take("--jobs")),
            "--slice" => slice = parse_num("--slice", &take("--slice")),
            "--halt-after" => halt_after = Some(parse_num("--halt-after", &take("--halt-after"))),
            "--threads" => threads = Some(parse_num("--threads", &take("--threads"))),
            "--quiet" => quiet = true,
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    let work = work.unwrap_or_else(|| usage("--work DIR is required"));
    if let Some(n) = threads {
        rayon::set_num_threads(n.max(1));
    }

    let mut config = DaemonConfig::new(work);
    config.slice_iterations = slice.max(1);
    config.halt_after_rounds = halt_after;
    config.quiet = quiet;
    let mut daemon = Daemon::open(config).unwrap_or_else(|e| {
        eprintln!("mwrepaird: {e}");
        std::process::exit(1);
    });
    if let Some(src) = jobs {
        let bytes = if src == "-" {
            let mut buf = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buf)
                .unwrap_or_else(|e| usage(&format!("reading stdin: {e}")));
            buf
        } else {
            std::fs::read(&src).unwrap_or_else(|e| usage(&format!("reading {src:?}: {e}")))
        };
        match daemon.submit_bytes(&bytes) {
            Ok(n) => {
                if !quiet {
                    eprintln!(
                        "mwrepaird: accepted {n} new jobs ({} total)",
                        daemon.sessions().len()
                    );
                }
            }
            Err(e) => {
                eprintln!("mwrepaird: {e}");
                std::process::exit(1);
            }
        }
    }
    match daemon.run() {
        Ok(summary) => println!("{}", summary.to_json()),
        Err(e) => {
            eprintln!("mwrepaird: {e}");
            std::process::exit(1);
        }
    }
}
