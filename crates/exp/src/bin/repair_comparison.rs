//! §IV-G — MWRepair vs. GenProg / RSRepair / AE on the ten APR scenarios.
//!
//! Reports, per algorithm: scenarios repaired, fitness evaluations to first
//! repair (the field's standard cost unit), and critical-path latency
//! (wall-clock-equivalent under each algorithm's own parallelism).
//!
//! Paper headline shapes: MWRepair repairs all scenarios while the
//! baselines miss some; MWRepair needs roughly half the fitness
//! evaluations of the GenProg family; and its parallel probes give an
//! order-of-magnitude (≈40×) latency advantage.

use apr_baselines::{AdaptiveSearch, GenProg, GenProgConfig, RandomSearch, SearchBudget};
use apr_sim::{BugScenario, CostLedger};
use mwrepair::{minimize_patch, repair_with_variant, MwRepairConfig, VariantChoice};
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

struct AlgRow {
    name: &'static str,
    repaired: usize,
    total: usize,
    evals_sum: u64,
    latency_sum: u64,
}

fn main() {
    let args = CommonArgs::from_env();
    // Fitness-evaluation budget per scenario. GenProg-scale budgets are a
    // few thousand evaluations; 10,000 gives the single-edit baselines a
    // generous shot while still separating the hard scenarios (whose
    // expected single-edit cost exceeds it).
    let budget_evals: u64 = 10_000;
    let scenarios = BugScenario::catalog_all();
    let reps = args.replicates.clamp(1, 10) as u64; // end-to-end runs are heavy

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut precompute_evals_sum: u64 = 0;
    let mut precompute_latency_sum: u64 = 0;
    let mut patch_sizes: Vec<(usize, usize)> = Vec::new(); // (raw, minimized)
    let mut totals: Vec<AlgRow> = ["mwrepair", "genprog", "rsrepair", "ae"]
        .iter()
        .map(|&name| AlgRow {
            name,
            repaired: 0,
            total: 0,
            evals_sum: 0,
            latency_sum: 0,
        })
        .collect();

    for (sidx, s) in scenarios.iter().enumerate() {
        eprintln!("scenario {} (k = {})...", s.name, s.options);
        // The precompute phase is a one-time, per-program cost amortized
        // over every bug repaired in that program (§III-C); it is built
        // once per scenario here and reported separately from the online
        // search, matching the paper's accounting ("including the overhead
        // of the online learning process").
        let precompute_ledger = CostLedger::new();
        let pool = s.build_pool(args.seed, Some(&precompute_ledger));
        precompute_evals_sum += precompute_ledger.fitness_evals();
        precompute_latency_sum += precompute_ledger.critical_path_ms();

        for rep in 0..reps {
            let seed = mwu_core::rng::mix(&[args.seed, rep, sidx as u64]);

            // MWRepair (Standard variant — the paper's finding: "the
            // algorithm that uses global memory and has high communication
            // cost outperforms the other two" in APR's cheap-communication,
            // expensive-evaluation regime; its wide per-cycle probe fan-out
            // is what buys the latency advantage).
            let ledger = CostLedger::new();
            let out = repair_with_variant(
                s,
                &pool,
                VariantChoice::Standard,
                &MwRepairConfig::seeded(seed),
                Some(&ledger),
            )
            .expect("standard is always tractable");
            if let Some(patch) = &out.repair {
                // MWRepair patches are compositions of many mutations;
                // ddmin reduces them to the 1-minimal repairing core
                // ("most multi-edit repairs ... can be minimized to one or
                // two single-statement edits", §V-B).
                let min = minimize_patch(s, &patch.mutations, None);
                patch_sizes.push((patch.mutations.len(), min.mutations.len()));
            }
            record(
                &mut totals[0],
                out.is_repaired(),
                ledger.fitness_evals(),
                ledger.critical_path_ms(),
            );
            push_row(
                &mut csv,
                &s.name,
                rep,
                "mwrepair",
                out.is_repaired(),
                ledger.fitness_evals(),
                ledger.critical_path_ms(),
            );

            // GenProg.
            let ledger = CostLedger::new();
            let gp = GenProg::new(GenProgConfig::default()).run(
                s,
                &SearchBudget::new(budget_evals, seed),
                Some(&ledger),
            );
            record(
                &mut totals[1],
                gp.is_repaired(),
                gp.evals,
                ledger.critical_path_ms(),
            );
            push_row(
                &mut csv,
                &s.name,
                rep,
                "genprog",
                gp.is_repaired(),
                gp.evals,
                ledger.critical_path_ms(),
            );

            // RSRepair.
            let ledger = CostLedger::new();
            let rs = RandomSearch::default().run(
                s,
                &SearchBudget::new(budget_evals, seed),
                Some(&ledger),
            );
            record(
                &mut totals[2],
                rs.is_repaired(),
                rs.evals,
                ledger.critical_path_ms(),
            );
            push_row(
                &mut csv,
                &s.name,
                rep,
                "rsrepair",
                rs.is_repaired(),
                rs.evals,
                ledger.critical_path_ms(),
            );

            // AE (deterministic; one run is representative, but re-run per
            // rep for uniform accounting — identical outcomes).
            let ledger = CostLedger::new();
            let ae = AdaptiveSearch::default().run(
                s,
                &SearchBudget::new(budget_evals, seed),
                Some(&ledger),
            );
            record(
                &mut totals[3],
                ae.is_repaired(),
                ae.evals,
                ledger.critical_path_ms(),
            );
            push_row(
                &mut csv,
                &s.name,
                rep,
                "ae",
                ae.is_repaired(),
                ae.evals,
                ledger.critical_path_ms(),
            );
        }
    }

    println!(
        "§IV-G — repair effectiveness and cost ({} scenarios × {} repetitions, budget {} evals)\n",
        scenarios.len(),
        reps,
        budget_evals
    );
    for t in &totals {
        rows.push(vec![
            t.name.to_string(),
            format!("{}/{}", t.repaired, t.total),
            format!("{:.0}", t.evals_sum as f64 / t.total as f64),
            format!("{:.0}", t.latency_sum as f64 / t.total as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "algorithm",
                "repaired",
                "mean fitness evals",
                "mean latency (sim ms)"
            ],
            &rows
        )
    );
    println!("\nMWRepair one-time precompute (amortized over all bugs of a program):");
    println!(
        "  {} candidate evaluations total across the {} programs, critical-path {} sim-ms",
        precompute_evals_sum,
        scenarios.len(),
        precompute_latency_sum
    );

    if !patch_sizes.is_empty() {
        let raw_mean =
            patch_sizes.iter().map(|(r, _)| *r as f64).sum::<f64>() / patch_sizes.len() as f64;
        let min_mean =
            patch_sizes.iter().map(|(_, m)| *m as f64).sum::<f64>() / patch_sizes.len() as f64;
        println!(
            "\nMWRepair patch minimization (ddmin): mean raw composition {:.1} mutations\n  -> mean 1-minimal patch {:.1} mutations (paper: repairs minimize to 1-2 edits)",
            raw_mean, min_mean
        );
    }

    let mw = &totals[0];
    let gp = &totals[1];
    if gp.evals_sum > 0 && mw.latency_sum > 0 {
        println!("\nshape checks:");
        println!(
            "  MWRepair fitness evals / GenProg fitness evals = {:.2}  (paper: ≈ 0.52)",
            mw.evals_sum as f64 / gp.evals_sum as f64
        );
        println!(
            "  GenProg latency / MWRepair latency = {:.1}×  (paper: ≈ 40×)",
            gp.latency_sum as f64 / mw.latency_sum as f64
        );
        println!(
            "  repairs: MWRepair {}/{} vs GenProg {}/{} (paper: 10/10 vs 7–8/10 overall)",
            mw.repaired, mw.total, gp.repaired, gp.total
        );
    }

    let path = write_results_csv(
        &args.out_dir,
        "repair_comparison.csv",
        &[
            "scenario",
            "rep",
            "algorithm",
            "repaired",
            "fitness_evals",
            "latency_ms",
        ],
        &csv,
    )
    .expect("write repair_comparison.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}

fn record(t: &mut AlgRow, repaired: bool, evals: u64, latency: u64) {
    t.total += 1;
    if repaired {
        t.repaired += 1;
    }
    t.evals_sum += evals;
    t.latency_sum += latency;
}

fn push_row(
    csv: &mut Vec<Vec<String>>,
    scenario: &str,
    rep: u64,
    alg: &str,
    repaired: bool,
    evals: u64,
    latency: u64,
) {
    csv.push(vec![
        scenario.to_string(),
        rep.to_string(),
        alg.to_string(),
        repaired.to_string(),
        evals.to_string(),
        latency.to_string(),
    ]);
}
