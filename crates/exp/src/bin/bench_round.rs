//! Per-round kernel microbenchmark: times ns/round of `plan` + `update`
//! for each MWU variant across k ∈ {64, 256, 1024, 4096} and writes
//! `BENCH_round.json` (schema `bench_round/v1`, seed artifact committed at
//! the repo root like `BENCH_grid.json`).
//!
//! Unlike `bench_grid`, which measures outer-loop wall clock and thread
//! scaling, this binary isolates the *inner* round kernels: the bandit is
//! noise-free ([`NoiseModel::Exact`] draws no RNG), rewards go into a
//! reused buffer, and each cell is timed as one tight loop, so the number
//! reported is the per-round arithmetic + allocation cost of the algorithm
//! itself. Future PRs read the committed file as the perf trajectory.
//!
//! Flags (hand-rolled parser — this binary's flag set diverges from
//! `CommonArgs`): `--out DIR`, `--seed N`, `--fast` (rounds ÷ 10, CI
//! smoke), `--quiet`, `--only NAME` (one algorithm), and `--check PATH`
//! which exits non-zero if any (algorithm, k) cell regresses to more than
//! 2× the ns/round recorded in the baseline file at PATH.

use mwu_core::bandit::random_values;
use mwu_core::prelude::*;
use mwu_core::slate::SlateSampling;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Arm counts swept per algorithm.
const K_SWEEP: [usize; 4] = [64, 256, 1024, 4096];

/// Benchmarked algorithm labels (also the `--only` vocabulary).
const ALGORITHMS: [&str; 4] = ["standard", "slate", "slate-decomp", "distributed"];

/// Regression gate for `--check`: fail when current ns/round exceeds this
/// multiple of the baseline cell.
const REGRESSION_FACTOR: f64 = 2.0;

#[derive(Serialize, Deserialize)]
struct RoundCell {
    algorithm: String,
    k: usize,
    /// Agents one iteration occupies (k, slate size, or population).
    cpus_per_iteration: usize,
    warmup_rounds: u64,
    rounds: u64,
    wall_ms: f64,
    ns_per_round: f64,
}

#[derive(Serialize, Deserialize)]
struct BenchRound {
    schema: String,
    /// Shared provenance block. `Option` so `--check` still parses
    /// baselines committed before the block existed.
    meta: Option<mwu_experiments::BenchMeta>,
    seed: u64,
    fast: bool,
    cells: Vec<RoundCell>,
}

struct Args {
    out_dir: PathBuf,
    seed: u64,
    quiet: bool,
    fast: bool,
    only: Option<String>,
    check: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out_dir: PathBuf::from("."),
        seed: 1,
        quiet: false,
        fast: false,
        only: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--out" => args.out_dir = PathBuf::from(value("--out")?),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--quiet" => args.quiet = true,
            "--fast" => args.fast = true,
            "--only" => args.only = Some(value("--only")?),
            "--check" => args.check = Some(PathBuf::from(value("--check")?)),
            other => return Err(format!("unknown flag {other} (see bench_round.rs)")),
        }
    }
    if let Some(only) = &args.only {
        if !ALGORITHMS.contains(&only.as_str()) {
            return Err(format!("--only {only}: expected one of {ALGORITHMS:?}"));
        }
    }
    Ok(args)
}

fn make_algorithm(name: &str, k: usize) -> Box<dyn MwuAlgorithm> {
    match name {
        "standard" => Box::new(StandardMwu::new(k, StandardConfig::default())),
        "slate" => Box::new(SlateMwu::new(k, SlateConfig::default())),
        "slate-decomp" => Box::new(SlateMwu::new(
            k,
            SlateConfig {
                sampling: SlateSampling::ConvexDecomposition,
                ..SlateConfig::default()
            },
        )),
        "distributed" => Box::new(DistributedMwu::new(k, DistributedConfig::default())),
        _ => unreachable!("unknown algorithm {name}"),
    }
}

/// Timed rounds per cell, sized so every cell finishes in well under a
/// second even pre-optimization (convex decomposition is O(k²) per round,
/// Distributed rounds are O(k^1.5)).
fn rounds_for(name: &str, k_index: usize, fast: bool) -> u64 {
    let base: u64 = match name {
        "standard" | "slate" => [4000, 2000, 600, 150][k_index],
        "slate-decomp" => [1000, 400, 100, 25][k_index],
        "distributed" => [1000, 300, 60, 15][k_index],
        _ => unreachable!("unknown algorithm {name}"),
    };
    if fast {
        (base / 10).max(10)
    } else {
        base
    }
}

/// One measured cell: construct, warm up (fills caches and steady-state
/// scratch), then time `rounds` full plan → pull → update cycles.
fn bench_cell(name: &str, k: usize, rounds: u64, seed: u64) -> RoundCell {
    let mut alg = make_algorithm(name, k);
    let mut bandit = ValueBandit::exact(random_values(k, 9));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rewards: Vec<f64> = Vec::with_capacity(alg.cpus_per_iteration());
    let warmup = (rounds / 10).max(3);
    for _ in 0..warmup {
        one_round(alg.as_mut(), &mut bandit, &mut rewards, &mut rng);
    }
    let start = Instant::now();
    for _ in 0..rounds {
        one_round(alg.as_mut(), &mut bandit, &mut rewards, &mut rng);
    }
    let elapsed = start.elapsed();
    RoundCell {
        algorithm: name.to_string(),
        k,
        cpus_per_iteration: alg.cpus_per_iteration(),
        warmup_rounds: warmup,
        rounds,
        wall_ms: elapsed.as_secs_f64() * 1e3,
        ns_per_round: elapsed.as_nanos() as f64 / rounds as f64,
    }
}

fn one_round(
    alg: &mut dyn MwuAlgorithm,
    bandit: &mut ValueBandit,
    rewards: &mut Vec<f64>,
    rng: &mut SmallRng,
) {
    rewards.clear();
    let plan = alg.plan(rng);
    for &arm in plan {
        rewards.push(bandit.pull(arm, rng));
    }
    alg.update(rewards, rng);
}

/// Compare against a baseline report; returns human-readable regression
/// descriptions (empty = pass). Cells absent from the baseline are skipped,
/// so the gate stays usable while the sweep grows.
fn regressions(current: &BenchRound, baseline: &BenchRound) -> Vec<String> {
    let mut out = Vec::new();
    for cell in &current.cells {
        let Some(base) = baseline
            .cells
            .iter()
            .find(|b| b.algorithm == cell.algorithm && b.k == cell.k)
        else {
            continue;
        };
        if cell.ns_per_round > REGRESSION_FACTOR * base.ns_per_round {
            out.push(format!(
                "{} k={}: {:.0} ns/round vs baseline {:.0} (> {REGRESSION_FACTOR}x)",
                cell.algorithm, cell.k, cell.ns_per_round, base.ns_per_round
            ));
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_round: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut cells = Vec::new();
    for name in ALGORITHMS {
        if args.only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        for (ki, &k) in K_SWEEP.iter().enumerate() {
            let rounds = rounds_for(name, ki, args.fast);
            let cell = bench_cell(name, k, rounds, args.seed);
            if !args.quiet {
                eprintln!(
                    "  {name:<12} k={k:<5} {:>10.0} ns/round ({} rounds, {:.1} ms)",
                    cell.ns_per_round, cell.rounds, cell.wall_ms
                );
            }
            cells.push(cell);
        }
    }

    let report = BenchRound {
        schema: "bench_round/v1".into(),
        meta: Some(mwu_experiments::BenchMeta::capture()),
        seed: args.seed,
        fast: args.fast,
        cells,
    };
    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let path = args.out_dir.join("BENCH_round.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_round.json");
    if !args.quiet {
        eprintln!("wrote {}", path.display());
    }

    if let Some(check) = &args.check {
        let text = std::fs::read_to_string(check)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", check.display()));
        let baseline: BenchRound = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("parse baseline {}: {e:?}", check.display()));
        assert_eq!(
            baseline.schema, "bench_round/v1",
            "baseline schema mismatch"
        );
        let failures = regressions(&report, &baseline);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("bench_round: REGRESSION {f}");
            }
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!(
                "bench_round: all cells within {REGRESSION_FACTOR}x of {}",
                check.display()
            );
        }
    }
    ExitCode::SUCCESS
}
