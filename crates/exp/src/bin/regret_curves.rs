//! Policy-regret curves for every algorithm (the quantity behind Table I's
//! convergence column: "convergence of Slate is presented in terms of
//! regret", §II-C).
//!
//! Runs each algorithm for a fixed horizon on one random and one unimodal
//! instance and reports the per-cycle policy regret at checkpoints plus
//! the converged (tail) regret level.

use mwu_core::alternatives::{EpsilonGreedy, Exp3, HedgeConfig, HedgeMwu, Ucb1};
use mwu_core::prelude::*;
use mwu_core::regret::{run_with_regret, RegretCurve};
use mwu_core::run::RunConfig;
use mwu_datasets::catalog;
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();
    let horizon = 2_000usize;
    let checkpoints = [1usize, 10, 50, 200, 1000, 1999];
    let datasets = [
        catalog::by_name("random256").unwrap(),
        catalog::by_name("unimodal256").unwrap(),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for d in &datasets {
        let k = d.size();
        for name in [
            "standard",
            "hedge",
            "slate",
            "exp3",
            "distributed",
            "epsilon-greedy",
            "ucb1",
        ] {
            let cfg = RunConfig {
                max_iterations: horizon,
                seed: mwu_core::rng::mix(&[args.seed, k as u64]),
                run_past_convergence: true,
            };
            let mut bandit = d.bandit();
            let curve: RegretCurve = match name {
                "standard" => {
                    let mut a = StandardMwu::new(k, StandardConfig::default());
                    run_with_regret(&mut a, &mut bandit, &cfg)
                }
                "hedge" => {
                    let mut a = HedgeMwu::new(k, HedgeConfig::default());
                    run_with_regret(&mut a, &mut bandit, &cfg)
                }
                "slate" => {
                    let mut a = SlateMwu::new(k, SlateConfig::default());
                    run_with_regret(&mut a, &mut bandit, &cfg)
                }
                "distributed" => {
                    let mut a = DistributedMwu::try_new(k, DistributedConfig::default()).unwrap();
                    run_with_regret(&mut a, &mut bandit, &cfg)
                }
                "exp3" => {
                    let mut a = Exp3::new(k, 0.05);
                    run_with_regret(&mut a, &mut bandit, &cfg)
                }
                "epsilon-greedy" => {
                    let mut a = EpsilonGreedy::new(k, 0.05);
                    run_with_regret(&mut a, &mut bandit, &cfg)
                }
                _ => {
                    let mut a = Ucb1::new(k);
                    run_with_regret(&mut a, &mut bandit, &cfg)
                }
            };
            let mut row = vec![d.name.clone(), name.to_string()];
            for &cp in &checkpoints {
                row.push(format!("{:.3}", curve.per_cycle[cp.min(horizon - 1)]));
            }
            row.push(format!("{:.4}", curve.tail_mean()));
            rows.push(row);
            for (cycle, r) in curve.per_cycle.iter().enumerate().step_by(25) {
                csv.push(vec![
                    d.name.clone(),
                    name.to_string(),
                    cycle.to_string(),
                    format!("{:.6}", r),
                ]);
            }
        }
    }

    println!("policy regret Σ pᵢ(v*−vᵢ) at update-cycle checkpoints (horizon {horizon})\n");
    let header = [
        "dataset",
        "algorithm",
        "t=1",
        "t=10",
        "t=50",
        "t=200",
        "t=1000",
        "t=1999",
        "tail mean",
    ];
    println!("{}", render_table(&header, &rows));
    println!("reading: all learners start at the uniform policy's regret and drive");
    println!("it toward zero; the full-information updates (standard/hedge) descend");
    println!("fastest per cycle, slate pays for partial information, distributed's");
    println!("floor reflects its μ exploration, and the sequential strategies'");
    println!("curves cost one probe per cycle rather than a parallel batch.");

    let path = write_results_csv(
        &args.out_dir,
        "regret_curves.csv",
        &["dataset", "algorithm", "cycle", "policy_regret"],
        &csv,
    )
    .expect("write regret_curves.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
