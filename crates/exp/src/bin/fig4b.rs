//! Fig. 4b — repair density vs. number of combined mutations on the gzip
//! scenario: a unimodal curve whose optimum the paper reports at 48
//! combined mutations.

use apr_sim::fig4::{curve_peak, repair_density_curve};
use apr_sim::BugScenario;
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();
    let trials = args.replicates * 10;
    let scenario = BugScenario::by_name("gzip-2009-08-16").expect("catalog scenario");
    eprintln!("precomputing safe-mutation pool for {} ...", scenario.name);
    let pool = scenario.build_pool(args.seed, None);

    let xs: Vec<usize> = (1..=120).step_by(3).collect();
    eprintln!("estimating repair density ({} trials/point)...", trials);
    let curve = repair_density_curve(&scenario, &pool, &xs, trials, args.seed);

    println!(
        "Fig. 4b — repair density vs. #combined mutations ({} trials/point)\n",
        trials
    );
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| vec![p.x.to_string(), format!("{:.4}", p.value)])
        .collect();
    println!(
        "{}",
        render_table(&["x (mutations)", "repair density"], &rows)
    );

    let peak = curve_peak(&curve).unwrap_or(0);
    let analytic = scenario.density_optimum();
    println!("shape checks:");
    println!("  Monte-Carlo peak: x = {peak}   (paper: 48 for gzip)");
    println!("  analytic optimum: x = {analytic}");
    println!("  unimodal: density({peak}) > density(1) and > density(118)");

    let csv: Vec<Vec<String>> = curve
        .iter()
        .map(|p| vec![p.x.to_string(), format!("{:.6}", p.value)])
        .collect();
    let path = write_results_csv(&args.out_dir, "fig4b.csv", &["x", "repair_density"], &csv)
        .expect("write fig4b.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
