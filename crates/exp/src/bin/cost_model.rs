//! §IV-E — the weighted cost model.
//!
//! Reproduces the section's reasoning numerically:
//! 1. the two-term (communication + convergence) model, which "clearly
//!    favors Distributed";
//! 2. the CPU-weighted model, which flips the recommendation to Standard —
//!    the regime APR inhabits because each occupied CPU runs a test suite
//!    per cycle;
//! 3. a sweep over the β/α (evaluation/communication price) ratio showing
//!    where the recommendation crosses over.
//!
//! Every variant is evaluated at its own default operating point
//! (Standard: n = k agents; Slate: n = γ·k slate; Distributed: n = k^{3/2}
//! population), matching the §IV-B parameter settings.

use mwu_core::cost::{CostWeights, Variant, WeightedCostModel};
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();

    println!("§IV-E — weighted cost model: cost = α·communication + β·convergence (+ γ·cpus)\n");

    // 1 & 2: the paper's regimes at k = 1024.
    let k = 1024;
    let regimes: Vec<(&str, CostWeights)> = vec![
        ("two-term (α=β=1)", CostWeights::two_term(1.0, 1.0)),
        (
            "communication-bound (α≫β)",
            CostWeights::communication_bound(),
        ),
        (
            "APR regime (expensive evaluation, CPU-priced)",
            CostWeights::apr_regime(),
        ),
        ("CPU-constrained", CostWeights::cpu_constrained()),
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, w) in &regimes {
        let m = WeightedCostModel::new(*w);
        let costs: Vec<f64> = [Variant::Standard, Variant::Distributed, Variant::Slate]
            .iter()
            .map(|&v| m.cost_at_default(v, k))
            .collect();
        let rec = m.recommend_for_k(k);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", costs[0]),
            format!("{:.0}", costs[1]),
            format!("{:.0}", costs[2]),
            rec.to_string(),
        ]);
        csv.push(vec![
            name.to_string().replace(',', ";"),
            format!("{:.2}", costs[0]),
            format!("{:.2}", costs[1]),
            format!("{:.2}", costs[2]),
            rec.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "regime (k = 1024)",
                "Standard",
                "Distributed",
                "Slate",
                "recommends"
            ],
            &rows
        )
    );

    // 3: crossover sweep over β/α with CPU price fixed.
    println!(
        "crossover sweep: β/α ratio (evaluation price vs. communication price), γ_cpu = 0.1\n"
    );
    let mut sweep_rows = Vec::new();
    let mut sweep_csv = Vec::new();
    for exp in -3..=3 {
        let ratio = 10f64.powi(exp);
        let w = CostWeights {
            communication: 1.0,
            convergence: ratio,
            cpus: 0.1,
            memory: 0.0,
        };
        let m = WeightedCostModel::new(w);
        let mut row = vec![format!("1e{exp}")];
        let mut crow = vec![format!("1e{exp}")];
        for &k in &[64usize, 1024, 16384] {
            let rec = m.recommend_for_k(k).to_string();
            row.push(rec.clone());
            crow.push(rec);
        }
        sweep_rows.push(row);
        sweep_csv.push(crow);
    }
    println!(
        "{}",
        render_table(&["β/α", "k=64", "k=1024", "k=16384"], &sweep_rows)
    );
    println!("reading: when communication dominates the price (small β/α), the");
    println!("model favors the small-footprint variants; when evaluation dominates");
    println!("and CPUs are priced, Distributed's k^(3/2) agent bill disqualifies it —");
    println!("\"the benefit of Distributed on reducing communication cost is not");
    println!("enough to compensate for its higher CPU demand\" (§IV-E.2).");

    let path = write_results_csv(
        &args.out_dir,
        "cost_model.csv",
        &["regime", "standard", "distributed", "slate", "recommends"],
        &csv,
    )
    .expect("write cost_model.csv");
    let path2 = write_results_csv(
        &args.out_dir,
        "cost_model_sweep.csv",
        &["beta_over_alpha", "k64", "k1024", "k16384"],
        &sweep_csv,
    )
    .expect("write cost_model_sweep.csv");
    eprintln!("wrote {} and {}", path.display(), path2.display());
    args.write_profile();
}
