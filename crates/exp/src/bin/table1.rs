//! Table I — asymptotic complexity of the three MWU variants, evaluated at
//! concrete parameters so the symbolic entries can be compared numerically.
//!
//! Prints the symbolic Table I first, then its numeric evaluation across a
//! range of (k, n) to make the scaling visible.

use mwu_core::cost::{asymptotic_costs, CostParams, Variant};
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();

    println!("Table I — asymptotic properties (symbolic)\n");
    let sym = vec![
        vec![
            "Communication Cost".to_string(),
            "O(n)".to_string(),
            "O(ln n / ln ln n) *".to_string(),
            "O(n)".to_string(),
        ],
        vec![
            "Memory Overhead".to_string(),
            "O(k)".to_string(),
            "O(1)".to_string(),
            "O(k)".to_string(),
        ],
        vec![
            "Convergence Time".to_string(),
            "O(ln k / eps^2)".to_string(),
            "O(ln k / delta)".to_string(),
            "O((k/n) ln k / eps^2)".to_string(),
        ],
        vec![
            "Minimum Agents".to_string(),
            "O(n)".to_string(),
            "O(k^(3/2))".to_string(),
            "O(n)".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["property", "Standard", "Distributed", "Slate"], &sym)
    );
    println!("  * holds with probability at least 1 - 1/n (balls into bins)\n");

    println!("Table I — numeric evaluation (eps = 0.05, beta = 0.9 => delta = ln 9)\n");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &k in &[64usize, 256, 1024, 4096, 16384] {
        // n: Standard uses k agents; Slate its derived slate size; the
        // evaluation below reports each variant at its own operating point.
        for &variant in &[Variant::Standard, Variant::Distributed, Variant::Slate] {
            let n = match variant {
                Variant::Standard => k,
                Variant::Slate => ((0.05 * k as f64).ceil() as usize).clamp(2, k),
                Variant::Distributed => (k as f64).powf(1.5).ceil() as usize,
            };
            let p = CostParams::new(k, n);
            let c = asymptotic_costs(variant, &p);
            rows.push(vec![
                format!("{k}"),
                variant.to_string(),
                format!("{n}"),
                format!("{:.1}", c.communication),
                format!("{:.0}", c.memory),
                format!("{:.0}", c.convergence_time),
                format!("{:.0}", c.min_agents),
            ]);
            csv_rows.push(vec![
                k.to_string(),
                variant.to_string(),
                n.to_string(),
                format!("{:.4}", c.communication),
                format!("{:.4}", c.memory),
                format!("{:.4}", c.convergence_time),
                format!("{:.4}", c.min_agents),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "k",
                "variant",
                "n",
                "comm",
                "memory",
                "convergence",
                "min agents"
            ],
            &rows
        )
    );

    let path = write_results_csv(
        &args.out_dir,
        "table1.csv",
        &[
            "k",
            "variant",
            "n",
            "communication",
            "memory",
            "convergence_time",
            "min_agents",
        ],
        &csv_rows,
    )
    .expect("write table1.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
