//! Evaluation-cost ablation: full-suite vs. early-exit probe evaluation.
//!
//! The test suite is the inner-loop cost (§I); real tools stop at the
//! first failing test. Because the composition-failure rate grows with the
//! number of composed mutations (Fig. 4a), the early-exit saving grows
//! with x — this sweep quantifies it on the gzip scenario.

use apr_sim::prioritize::{mean_eval_cost, TestOrder};
use apr_sim::BugScenario;
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();
    let trials = (args.replicates * 4).clamp(40, 400);
    let scenario = BugScenario::by_name("gzip-2009-08-16").expect("catalog scenario");
    eprintln!("precomputing pool for {} ...", scenario.name);
    let pool = scenario.build_pool(args.seed, None);
    let full_suite_ms = scenario.suite.full_run_cost_ms();

    println!(
        "evaluation cost per probe, full suite vs early exit ({} trials/point; full suite = {} sim-ms)\n",
        trials, full_suite_ms
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &x in &[1usize, 8, 24, 48, 80, 128, 200] {
        let full = mean_eval_cost(
            &scenario.world,
            &scenario.suite,
            &pool,
            None,
            x,
            trials,
            args.seed,
        );
        let suite_order = mean_eval_cost(
            &scenario.world,
            &scenario.suite,
            &pool,
            Some(TestOrder::SuiteOrder),
            x,
            trials,
            args.seed,
        );
        let cheapest = mean_eval_cost(
            &scenario.world,
            &scenario.suite,
            &pool,
            Some(TestOrder::CheapestFirst),
            x,
            trials,
            args.seed,
        );
        let survival = scenario.world.interaction.expected_survival(x);
        rows.push(vec![
            x.to_string(),
            format!("{:.2}", survival),
            format!("{:.0}", full),
            format!("{:.0}", suite_order),
            format!("{:.0}", cheapest),
            format!("{:.2}", cheapest / full),
        ]);
        csv.push(vec![
            x.to_string(),
            format!("{:.4}", survival),
            format!("{:.1}", full),
            format!("{:.1}", suite_order),
            format!("{:.1}", cheapest),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "x (mutations)",
                "P[survive]",
                "full suite",
                "early exit (suite order)",
                "early exit (cheapest first)",
                "cheapest/full"
            ],
            &rows
        )
    );
    println!("\nreading: surviving probes always pay the full suite, so at small x");
    println!("(high survival) early exit saves nothing; as x grows past the");
    println!("interaction scale most probes break and the cheapest-first order");
    println!("finds the failure after a few cheap tests.");

    let path = write_results_csv(
        &args.out_dir,
        "eval_cost.csv",
        &[
            "x",
            "survival",
            "full_ms",
            "early_suite_order_ms",
            "early_cheapest_ms",
        ],
        &csv,
    )
    .expect("write eval_cost.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
