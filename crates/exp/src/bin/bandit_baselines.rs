//! Context ablation (§V-A): the three parallel MWU realizations against
//! the classic bandit strategies they coexist with in the literature —
//! Hedge (the gains-form exponential-weights twin of Standard) and the
//! sequential ε-greedy and UCB1 strategies.
//!
//! Reports update cycles, *total pulls* (the true cost unit for sequential
//! strategies), accuracy, and CPUs — showing what the paper's parallel
//! formulations buy over one-pull-at-a-time learning.

use mwu_core::alternatives::{EpsilonGreedy, Exp3, HedgeConfig, HedgeMwu, Ucb1};
use mwu_core::prelude::*;
use mwu_core::stats::RunningStats;
use mwu_datasets::catalog;
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();
    let reps = args.replicates.clamp(3, 30);
    let datasets = [
        catalog::by_name("random256").unwrap(),
        catalog::by_name("unimodal256").unwrap(),
        catalog::by_name("Chart26").unwrap(),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for d in &datasets {
        let k = d.size();
        for alg_name in [
            "standard",
            "hedge",
            "slate",
            "exp3",
            "distributed",
            "epsilon-greedy",
            "ucb1",
        ] {
            let mut iters = RunningStats::new();
            let mut pulls = RunningStats::new();
            let mut acc = RunningStats::new();
            let mut cpus = 0usize;
            let mut conv = 0usize;
            for rep in 0..reps {
                let seed = mwu_core::rng::mix(&[args.seed, rep as u64, k as u64]);
                let cfg = RunConfig::seeded(seed).with_max_iterations(
                    // Sequential strategies pull once per cycle; give them
                    // a pull budget comparable to the parallel variants.
                    if alg_name == "epsilon-greedy" || alg_name == "ucb1" || alg_name == "exp3" {
                        200_000
                    } else {
                        10_000
                    },
                );
                let mut bandit = d.bandit();
                let out = match alg_name {
                    "standard" => {
                        let mut a = StandardMwu::new(k, StandardConfig::default());
                        cpus = a.cpus_per_iteration();
                        run_to_convergence(&mut a, &mut bandit, &cfg)
                    }
                    "hedge" => {
                        let mut a = HedgeMwu::new(k, HedgeConfig::default());
                        cpus = a.cpus_per_iteration();
                        run_to_convergence(&mut a, &mut bandit, &cfg)
                    }
                    "slate" => {
                        let mut a = SlateMwu::new(k, SlateConfig::default());
                        cpus = a.cpus_per_iteration();
                        run_to_convergence(&mut a, &mut bandit, &cfg)
                    }
                    "distributed" => {
                        let mut a =
                            DistributedMwu::try_new(k, DistributedConfig::default()).unwrap();
                        cpus = a.cpus_per_iteration();
                        run_to_convergence(&mut a, &mut bandit, &cfg)
                    }
                    "exp3" => {
                        let mut a = Exp3::new(k, 0.05);
                        cpus = a.cpus_per_iteration();
                        run_to_convergence(&mut a, &mut bandit, &cfg)
                    }
                    "epsilon-greedy" => {
                        let mut a = EpsilonGreedy::new(k, 0.05);
                        cpus = a.cpus_per_iteration();
                        run_to_convergence(&mut a, &mut bandit, &cfg)
                    }
                    _ => {
                        let mut a = Ucb1::new(k);
                        cpus = a.cpus_per_iteration();
                        run_to_convergence(&mut a, &mut bandit, &cfg)
                    }
                };
                iters.push(out.iterations as f64);
                pulls.push(out.pulls as f64);
                acc.push(out.accuracy(&d.values));
                conv += out.converged as usize;
            }
            rows.push(vec![
                d.name.clone(),
                alg_name.to_string(),
                format!("{:.0}", iters.mean()),
                format!("{:.0}", pulls.mean()),
                format!("{:.1}", acc.mean()),
                cpus.to_string(),
                format!("{}/{}", conv, reps),
            ]);
            csv.push(vec![
                d.name.clone(),
                alg_name.to_string(),
                format!("{:.1}", iters.mean()),
                format!("{:.1}", pulls.mean()),
                format!("{:.2}", acc.mean()),
                cpus.to_string(),
                conv.to_string(),
            ]);
        }
    }

    println!(
        "§V-A context: parallel MWU vs classic bandit strategies ({} replicates)\n",
        reps
    );
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "algorithm",
                "cycles",
                "pulls",
                "accuracy%",
                "cpus/cycle",
                "conv"
            ],
            &rows
        )
    );
    println!("reading: the sequential strategies attain comparable accuracy but");
    println!("their convergence is measured in *pulls*, each a full test-suite run");
    println!("in the APR setting — the parallel MWU variants compress that wall-");
    println!("clock cost into a handful of synchronized cycles.");

    let path = write_results_csv(
        &args.out_dir,
        "bandit_baselines.csv",
        &[
            "dataset",
            "algorithm",
            "cycles",
            "pulls",
            "accuracy",
            "cpus",
            "converged",
        ],
        &csv,
    )
    .expect("write bandit_baselines.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
