//! Wall-clock scaling of the experiment grid: times every `table2` cell at
//! 1/2/4/8 threads inside one process and writes `BENCH_grid.json`.
//!
//! The pool is sized once at the largest measured count and each sweep runs
//! under `rayon::with_max_threads(c, ..)`, so a single invocation yields
//! the whole scaling curve. Every cell's `CellResult` is serialized and
//! compared across thread counts — the run aborts if any cell's output is
//! not byte-identical, so this binary doubles as a determinism check.
//!
//! Flags are the common set (`--replicates`, `--only`, `--fast`, `--out`,
//! `--seed`, `--quiet`); `--threads N` restricts the sweep to counts ≤ N.
//! `--profile PATH` additionally resets the phase profiler around each
//! thread-count sweep and writes a `profile-grid/v1` document with one
//! merged span report per count — the artifact that attributes where the
//! scaling curve flattens (see `docs/PERFORMANCE.md`; the committed
//! `PROFILE_grid.json` at the repo root is produced this way).

use mwu_core::Variant;
use mwu_datasets::full_catalog;
use mwu_experiments::{run_cell, BenchMeta, CommonArgs, GridConfig};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Instant;

/// Speedup-floor gate for `--check`: the widest-thread-count speedup may
/// drop at most this far below the committed baseline's value before the
/// run fails. Absolute wall-clock is never compared — machines differ —
/// the scaling *shape* is this artifact's contract, and the margin
/// absorbs scheduler noise on shared runners.
const SPEEDUP_NOISE_MARGIN: f64 = 0.25;

#[derive(Serialize)]
struct CellTiming {
    dataset: String,
    size: usize,
    algorithm: String,
    threads: usize,
    wall_ms: f64,
    replicates: u64,
    converged: u64,
    intractable: bool,
}

#[derive(Serialize, Deserialize)]
struct TotalTiming {
    threads: usize,
    wall_ms: f64,
    speedup_vs_1: f64,
}

/// The slice of a committed `BENCH_grid.json` the `--check` gate needs.
/// Fields the gate ignores are not declared, so the baseline can grow
/// without breaking older binaries; `meta`/`warmup_passes` are optional
/// because baselines predating them must still parse.
#[derive(Deserialize)]
struct BaselineGrid {
    schema: String,
    meta: Option<BenchMeta>,
    #[allow(dead_code)]
    warmup_passes: Option<usize>,
    totals: Vec<TotalTiming>,
}

/// One thread-count sweep's merged span report.
#[derive(Serialize)]
struct SweepProfile {
    threads: usize,
    profile: mwu_core::prof::ProfileReport,
}

/// The `--profile` artifact: per-thread-count phase attribution.
#[derive(Serialize)]
struct ProfileGrid {
    schema: String,
    meta: BenchMeta,
    replicates: usize,
    datasets: usize,
    sweeps: Vec<SweepProfile>,
}

#[derive(Serialize)]
struct BenchGrid {
    schema: String,
    meta: BenchMeta,
    pool_threads: usize,
    thread_counts: Vec<usize>,
    replicates: usize,
    datasets: usize,
    /// Untimed full passes run before the timed sweeps (cold-process
    /// warmup; see the module docs). Recorded so a baseline says whether
    /// its 1-thread column was measured warm.
    warmup_passes: usize,
    deterministic_across_thread_counts: bool,
    cells: Vec<CellTiming>,
    totals: Vec<TotalTiming>,
}

/// Compare the widest thread count both reports measured; `Some` is the
/// failure description. Build profiles must match — debug numbers gated
/// against a release baseline (or vice versa) are meaningless.
fn speedup_regression(current: &BenchGrid, baseline: &BaselineGrid) -> Option<String> {
    if let Some(meta) = &baseline.meta {
        if meta.build_profile != current.meta.build_profile {
            return Some(format!(
                "refusing to compare {} build against {} baseline",
                current.meta.build_profile, meta.build_profile
            ));
        }
    }
    let (cur, base) = current.totals.iter().rev().find_map(|c| {
        baseline
            .totals
            .iter()
            .find(|b| b.threads == c.threads)
            .map(|b| (c, b))
    })?;
    let floor = base.speedup_vs_1 - SPEEDUP_NOISE_MARGIN;
    if cur.speedup_vs_1 < floor {
        return Some(format!(
            "{}-thread speedup {:.2}x below floor {:.2}x (baseline {:.2}x - {SPEEDUP_NOISE_MARGIN} noise margin)",
            cur.threads, cur.speedup_vs_1, floor, base.speedup_vs_1
        ));
    }
    None
}

fn main() -> ExitCode {
    let args = CommonArgs::from_env();
    // Read the `--check` baseline before producing any output: CI points
    // `--out` at the directory holding the committed baseline, so writing
    // first would gate the run against itself.
    let baseline: Option<BaselineGrid> = args.check.as_deref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        let parsed: BaselineGrid = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("parse baseline {}: {e:?}", path.display()));
        assert_eq!(parsed.schema, "bench_grid/v1", "baseline schema mismatch");
        parsed
    });
    // Sweep counts must not exceed the pool: a cap above the pool size
    // would silently measure the pool size instead.
    if args.threads.is_none() {
        rayon::set_num_threads(8);
    }
    let pool_threads = rayon::current_num_threads();
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&c| c <= pool_threads)
        .collect();

    let datasets: Vec<_> = full_catalog()
        .into_iter()
        .filter(|d| args.selects(&d.name))
        .collect();
    let config = GridConfig {
        replicates: args.replicates,
        max_iterations: 10_000,
        seed: args.seed,
    };
    if !args.quiet {
        eprintln!(
            "bench_grid: {} datasets x 3 algorithms x {} replicates at {:?} threads (pool {})",
            datasets.len(),
            config.replicates,
            thread_counts,
            pool_threads
        );
    }

    // Untimed warmup: without it the first timed sweep runs in a cold
    // process, charging pool spawn, page faults, and lazy-init work to the
    // 1-thread baseline cell and flattering every speedup ratio. One full
    // pass at the unrestricted pool width touches all of that up front.
    let warmup_passes = 1usize;
    for _ in 0..warmup_passes {
        for d in &datasets {
            for &alg in &[Variant::Standard, Variant::Distributed, Variant::Slate] {
                let _ = run_cell(alg, d, &config);
            }
        }
    }

    let profiling = args.profile.is_some();
    let mut cells = Vec::new();
    let mut totals = Vec::new();
    let mut sweep_profiles = Vec::new();
    // Serialized CellResults of the first sweep; later sweeps must match.
    let mut reference: Vec<String> = Vec::new();
    let mut deterministic = true;
    let mut base_ms = None;
    for &threads in &thread_counts {
        if profiling {
            // Each sweep gets its own attribution window so the report
            // shows how phase shares shift as the thread count grows.
            mwu_core::prof::reset();
        }
        let sweep_start = Instant::now();
        let mut sweep_results = Vec::new();
        for d in &datasets {
            for &alg in &[Variant::Standard, Variant::Distributed, Variant::Slate] {
                let start = Instant::now();
                let cell = rayon::with_max_threads(threads, || run_cell(alg, d, &config));
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                cells.push(CellTiming {
                    dataset: d.name.clone(),
                    size: d.size(),
                    algorithm: alg.to_string(),
                    threads,
                    wall_ms,
                    replicates: cell.replicates,
                    converged: cell.converged,
                    intractable: cell.intractable,
                });
                sweep_results.push(serde_json::to_string(&cell).expect("serialize cell"));
            }
        }
        let wall_ms = sweep_start.elapsed().as_secs_f64() * 1e3;
        if profiling {
            sweep_profiles.push(SweepProfile {
                threads,
                profile: mwu_core::prof::snapshot(),
            });
        }
        if reference.is_empty() {
            reference = sweep_results;
        } else if reference != sweep_results {
            deterministic = false;
            eprintln!("error: cell results at {threads} threads differ from the first sweep");
        }
        let base = *base_ms.get_or_insert(wall_ms);
        totals.push(TotalTiming {
            threads,
            wall_ms,
            speedup_vs_1: base / wall_ms,
        });
        if !args.quiet {
            eprintln!("  {threads} threads: {wall_ms:.0} ms");
        }
    }

    let meta = BenchMeta::capture();
    let report = BenchGrid {
        schema: "bench_grid/v1".into(),
        meta: meta.clone(),
        pool_threads,
        thread_counts,
        replicates: config.replicates,
        datasets: datasets.len(),
        warmup_passes,
        deterministic_across_thread_counts: deterministic,
        cells,
        totals,
    };
    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let path = args.out_dir.join("BENCH_grid.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_grid.json");
    if !args.quiet {
        eprintln!("wrote {}", path.display());
    }
    // `--profile` gets the per-sweep attribution document instead of the
    // generic end-of-process report `write_profile` would produce.
    if let Some(profile_path) = &args.profile {
        let doc = ProfileGrid {
            schema: "profile-grid/v1".into(),
            meta,
            replicates: config.replicates,
            datasets: datasets.len(),
            sweeps: sweep_profiles,
        };
        if let Some(parent) = profile_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create profile directory");
            }
        }
        let json = serde_json::to_string_pretty(&doc).expect("serialize profile") + "\n";
        std::fs::write(profile_path, json)
            .unwrap_or_else(|e| panic!("cannot write profile {}: {e}", profile_path.display()));
        if !args.quiet {
            eprintln!("profile grid written to {}", profile_path.display());
        }
    }
    assert!(
        deterministic,
        "grid output must be identical at every thread count"
    );
    if let Some(baseline) = &baseline {
        if let Some(failure) = speedup_regression(&report, baseline) {
            eprintln!("bench_grid: REGRESSION {failure}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!(
                "bench_grid: scaling within {SPEEDUP_NOISE_MARGIN} of {}",
                args.check.as_deref().unwrap().display()
            );
        }
    }
    ExitCode::SUCCESS
}
