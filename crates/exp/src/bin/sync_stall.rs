//! §III-C — the synchronization-stall argument for precomputation.
//!
//! Two parts:
//!
//! 1. **Analytic tail**: with `m` synchronized threads each drawing a
//!    mutation-generation workload uniformly from `n` outcomes, the chance
//!    that some thread lands in the worst `k` outcomes is `1 − ((n−k)/n)^m`
//!    — the paper's example: 64 threads, worst decile, ≈ 99.9 %.
//! 2. **Measured stall**: real threads (`simnet::ThreadPool`) run
//!    heavy-tailed per-round work under a barrier vs. free-running; the
//!    efficiency ratio reproduces "the naive system operates at about half
//!    the efficiency of threads requiring no synchronization blocks."

use mwu_core::cost::prob_worst_case_hit;
use mwu_experiments::{render_table, write_results_csv, CommonArgs};
use simnet::{RoundEvent, RoundObserver, SyncMode, ThreadPool};
use std::time::Duration;

/// Accumulates per-round barrier stall from the executor's telemetry.
#[derive(Default)]
struct StallStats {
    total: Duration,
    worst: Duration,
    rounds: u32,
}

impl RoundObserver for StallStats {
    fn on_round(&mut self, event: RoundEvent) {
        self.total += event.stall;
        self.worst = self.worst.max(event.stall);
        self.rounds += 1;
    }
}

fn main() {
    let args = CommonArgs::from_env();

    println!("§III-C part 1 — probability a synchronized round hits the worst decile\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &m in &[1u64, 4, 16, 64, 256] {
        let p = prob_worst_case_hit(100, 10, m);
        rows.push(vec![m.to_string(), format!("{:.4}", p)]);
        csv.push(vec![m.to_string(), format!("{:.6}", p)]);
    }
    println!(
        "{}",
        render_table(&["threads", "P[worst-decile hit]"], &rows)
    );
    println!("paper example: 64 threads ⇒ ≈ 0.999\n");

    println!("§III-C part 2 — measured barrier stall (real threads)\n");
    // Per-(thread, round) work: mutation generation until a safe one is
    // found is geometric; we model the per-round work as proportional to a
    // draw from 1..=100 candidate mutations (the paper's example range).
    let threads = 8;
    let rounds = 40;
    let pool = ThreadPool::new(threads);
    let work = |tid: usize, round: usize| {
        // Deterministic heavy-tailed work: uniform in [10µs, 1000µs].
        let h = mwu_core::rng::mix(&[tid as u64, round as u64, 77]);
        let micros = 10 + h % 991;
        simnet::executor::spin_for_micros(micros);
    };
    let mut stalls = StallStats::default();
    let barrier = pool.run_rounds_observed(rounds, SyncMode::Barrier, work, &mut stalls);
    let free = pool.run_rounds(rounds, SyncMode::Free, work);
    let eff_barrier = barrier.efficiency(threads);
    let eff_free = free.efficiency(threads);
    let rows = vec![
        vec![
            "barrier (on-the-fly generation)".to_string(),
            format!("{:?}", barrier.wall),
            format!("{:.2}", eff_barrier),
        ],
        vec![
            "free (precomputed pool)".to_string(),
            format!("{:?}", free.wall),
            format!("{:.2}", eff_free),
        ],
    ];
    println!(
        "{}",
        render_table(&["mode", "wall time", "efficiency"], &rows)
    );
    println!(
        "efficiency ratio barrier/free = {:.2}  (paper: ≈ 0.5 — \"about half the efficiency\")",
        eff_barrier / eff_free.max(1e-9)
    );
    if stalls.rounds > 0 {
        println!(
            "barrier stall: mean {:?}/round across {} threads, worst round {:?}",
            stalls.total / stalls.rounds,
            threads,
            stalls.worst
        );
    }
    if std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        < threads
    {
        println!(
            "note: host exposes fewer than {threads} cores; the barrier stall is still
visible but the free-running efficiency is depressed by time-slicing."
        );
    }

    let path = write_results_csv(
        &args.out_dir,
        "sync_stall.csv",
        &["threads", "p_worst_decile"],
        &csv,
    )
    .expect("write sync_stall.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
