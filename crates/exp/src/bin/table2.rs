//! Table II — update cycles until convergence: mean (std) over replicates
//! of each algorithm on each of the twenty catalog datasets.

use mwu_core::Variant;
use mwu_datasets::full_catalog;
use mwu_experiments::{render_table, run_grid_observed, write_results_csv, CommonArgs, GridConfig};

fn main() {
    let args = CommonArgs::from_env();
    let datasets: Vec<_> = full_catalog()
        .into_iter()
        .filter(|d| args.selects(&d.name))
        .collect();
    let config = GridConfig {
        replicates: args.replicates,
        max_iterations: 10_000,
        seed: args.seed,
    };
    if !args.quiet {
        eprintln!(
            "Table II grid: {} datasets x 3 algorithms x {} replicates",
            datasets.len(),
            config.replicates
        );
    }
    let mut observer = args.observer();
    let cells = run_grid_observed(&datasets, &config, &mut observer);
    if let Some(sink) = observer.0.as_mut() {
        sink.flush().expect("flush trace");
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for d in &datasets {
        let mut row = vec![d.name.clone(), d.size().to_string()];
        for &alg in &[Variant::Standard, Variant::Distributed, Variant::Slate] {
            let c = cells
                .iter()
                .find(|c| c.dataset == d.name && c.algorithm == alg)
                .expect("cell present");
            let cell_text = if c.intractable {
                "—".to_string()
            } else if c.converged == 0 {
                "≥ 10000".to_string()
            } else {
                c.iterations.cell(1)
            };
            row.push(cell_text.clone());
            csv.push(vec![
                d.name.clone(),
                d.size().to_string(),
                alg.to_string(),
                if c.intractable {
                    "intractable".into()
                } else {
                    format!("{:.2}", c.iterations.mean)
                },
                format!("{:.2}", c.iterations.std_dev),
                format!("{}", c.converged),
                format!("{}", c.replicates),
            ]);
        }
        rows.push(row);
    }

    println!(
        "Table II — update cycles until convergence (mean (std), {} replicates)\n",
        config.replicates
    );
    println!(
        "{}",
        render_table(
            &["scenario", "size", "Standard", "Distributed", "Slate"],
            &rows
        )
    );
    println!("— : intractable (population exceeds the agent cap)");
    println!("≥ 10000 : no replicate converged within the iteration budget");

    let path = write_results_csv(
        &args.out_dir,
        "table2.csv",
        &[
            "scenario",
            "size",
            "algorithm",
            "iterations_mean",
            "iterations_std",
            "converged",
            "replicates",
        ],
        &csv,
    )
    .expect("write table2.csv");
    if !args.quiet {
        eprintln!("wrote {}", path.display());
    }
    args.write_profile();
}
