//! Chaos harness: convergence-time degradation under injected faults.
//!
//! Sweeps fault rate × MWU algorithm on a unimodal bandit instance and
//! reports how much longer each variant takes to converge as the network
//! degrades, relative to its own fault-free baseline. The fault model is
//! the deterministic [`simnet::FaultPlan`]: per-observation drop / delay /
//! duplication / corruption decisions are pure keyed hashes of
//! `(seed, round, agent)`, so every cell is exactly reproducible.
//!
//! How faults reach each variant:
//!
//! * **Standard / Slate** — a dropped observation reports reward 0 (no
//!   evidence of success); a corrupted one reports the corrupted value,
//!   which the loss-clamping guard (`mwu_core::sanitize_reward`) must
//!   neutralize inside the update.
//! * **Distributed** — observations flow through the degradation-aware
//!   gossip update: drops become missing observations, delays become
//!   staleness (down-weighted), duplicates arrive twice (deduplicated),
//!   corruption is screened or clamped, and a round below quorum is a
//!   no-op.
//!
//! The binary exits non-zero if any weight/share vector leaves the finite
//! simplex — that is the CI chaos-smoke invariant.
//!
//! Extra flags (before the common ones): `--rates LIST` (comma-separated
//! fault rates, default `0,0.05,0.1,0.2`), `--size K` (arms, default 8),
//! `--max-iterations N` (cap per run, default 2000).

use mwu_core::{
    Bandit, DistributedConfig, DistributedMwu, GossipConfig, GossipObservation, MwuAlgorithm,
    SlateConfig, SlateMwu, StandardConfig, StandardMwu, ValueBandit,
};
use mwu_experiments::{render_table, write_results_csv, CommonArgs};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simnet::{FaultConfig, FaultPlan, MessageFate};

/// One (algorithm, rate, replicate) chaos run.
struct ChaosRun {
    converged: bool,
    iterations: usize,
}

/// Abort the process if the weight/share vector left the finite simplex —
/// the invariant the CI chaos-smoke job enforces.
fn check_finite<A: MwuAlgorithm>(alg: &A, t: usize, plan: &FaultPlan) {
    if alg.probabilities().iter().any(|p| !p.is_finite()) {
        eprintln!(
            "FATAL: non-finite probability in {} at iteration {} (fault seed {})",
            alg.name(),
            t + 1,
            plan.seed()
        );
        std::process::exit(1);
    }
}

/// Full-information variants (Standard / Slate): faults corrupt or erase
/// individual reward observations before the ordinary update.
fn run_full_info<A: MwuAlgorithm>(
    alg: &mut A,
    bandit: &mut ValueBandit,
    plan: &FaultPlan,
    max_iterations: usize,
    rng: &mut SmallRng,
) -> ChaosRun {
    for t in 0..max_iterations {
        let planned = alg.plan(rng).to_vec();
        let rewards: Vec<f64> = planned
            .iter()
            .enumerate()
            .map(|(agent, &arm)| {
                let mut reward = bandit.pull(arm, rng);
                if let Some(bad) = plan.corrupt(t, agent) {
                    reward = bad;
                }
                match plan.message_fate(t, agent, 0, agent as u64, 1) {
                    MessageFate::Drop => 0.0,
                    _ => reward,
                }
            })
            .collect();
        alg.update(&rewards, rng);
        check_finite(alg, t, plan);
        if alg.has_converged() {
            return ChaosRun {
                converged: true,
                iterations: t + 1,
            };
        }
    }
    ChaosRun {
        converged: false,
        iterations: max_iterations,
    }
}

/// Distributed variant: message-level faults shape the observation set
/// handed to the degradation-aware gossip update.
fn run_gossip(
    alg: &mut DistributedMwu,
    bandit: &mut ValueBandit,
    plan: &FaultPlan,
    gossip: &GossipConfig,
    max_iterations: usize,
    rng: &mut SmallRng,
) -> ChaosRun {
    let mut obs: Vec<GossipObservation> = Vec::new();
    for t in 0..max_iterations {
        let planned = alg.plan(rng).to_vec();
        obs.clear();
        let encode_span = mwu_core::prof::span(mwu_core::prof::Phase::GossipEncode);
        for (agent, &arm) in planned.iter().enumerate() {
            let mut reward = bandit.pull(arm, rng);
            if let Some(bad) = plan.corrupt(t, agent) {
                reward = bad;
            }
            match plan.message_fate(t, agent, 0, agent as u64, 1) {
                MessageFate::Drop => {}
                MessageFate::Deliver => obs.push(GossipObservation::fresh(agent, reward)),
                MessageFate::Delay(d) => obs.push(GossipObservation {
                    agent,
                    reward,
                    staleness: d,
                }),
                MessageFate::Duplicate => {
                    obs.push(GossipObservation::fresh(agent, reward));
                    obs.push(GossipObservation::fresh(agent, reward));
                }
            }
        }
        drop(encode_span);
        alg.update_gossip(&obs, gossip, rng);
        check_finite(alg, t, plan);
        if alg.has_converged() {
            return ChaosRun {
                converged: true,
                iterations: t + 1,
            };
        }
    }
    ChaosRun {
        converged: false,
        iterations: max_iterations,
    }
}

fn main() {
    // Peel chaos-specific flags before the strict common parser.
    let mut rates: Vec<f64> = vec![0.0, 0.05, 0.1, 0.2];
    let mut size: usize = 8;
    let mut max_iterations: usize = 2000;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    let take = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rates" => {
                rates = take(&mut it, "--rates")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|e| {
                            eprintln!("--rates entry {s:?}: {e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--size" => {
                let v = take(&mut it, "--size");
                size = v.parse().unwrap_or_else(|e| {
                    eprintln!("--size {v:?}: {e}");
                    std::process::exit(2);
                });
            }
            "--max-iterations" => {
                let v = take(&mut it, "--max-iterations");
                max_iterations = v.parse().unwrap_or_else(|e| {
                    eprintln!("--max-iterations {v:?}: {e}");
                    std::process::exit(2);
                });
            }
            other => rest.push(other.to_owned()),
        }
    }
    let args = match CommonArgs::parse(rest) {
        Ok(a) => {
            a.apply_parallelism();
            a.apply_profiling();
            a
        }
        Err(e) => {
            eprintln!("{e}\nchaos extras: --rates LIST | --size K | --max-iterations N");
            std::process::exit(2);
        }
    };
    assert!(size > 0, "--size must be positive");
    assert!(
        !rates.is_empty() && rates.iter().all(|r| (0.0..=1.0).contains(r)),
        "--rates must lie in [0, 1]"
    );

    // One fixed unimodal instance per size: cells differ only in faults.
    let values = mwu_datasets::unimodal::generate(size, args.seed);
    let algorithms = ["standard", "slate", "distributed"];
    let gossip = GossipConfig::default();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();

    println!(
        "chaos sweep: k = {size}, mixed-fault plan, {} replicates, cap {max_iterations}\n",
        args.replicates
    );

    for (alg_idx, alg_name) in algorithms.iter().enumerate() {
        let mut baseline: Option<f64> = None;
        for &rate in &rates {
            let mut iters_sum = 0usize;
            let mut converged = 0usize;
            for rep in 0..args.replicates {
                let seed = mwu_core::rng::mix(&[
                    args.seed,
                    alg_idx as u64 + 1,
                    rate.to_bits(),
                    rep as u64,
                ]);
                let mut bandit = ValueBandit::bernoulli(values.clone());
                let mut rng = SmallRng::seed_from_u64(seed);
                let plan = FaultPlan::new(seed ^ 0xC4A05, FaultConfig::mixed(rate));
                let run = match *alg_name {
                    "standard" => {
                        let mut alg = StandardMwu::new(size, StandardConfig::default());
                        run_full_info(&mut alg, &mut bandit, &plan, max_iterations, &mut rng)
                    }
                    "slate" => {
                        let mut alg = SlateMwu::new(size, SlateConfig::default());
                        run_full_info(&mut alg, &mut bandit, &plan, max_iterations, &mut rng)
                    }
                    _ => {
                        let mut alg = DistributedMwu::try_new(size, DistributedConfig::default())
                            .expect("small-k population is tractable");
                        run_gossip(
                            &mut alg,
                            &mut bandit,
                            &plan,
                            &gossip,
                            max_iterations,
                            &mut rng,
                        )
                    }
                };
                iters_sum += run.iterations;
                converged += run.converged as usize;
            }
            let mean = iters_sum as f64 / args.replicates as f64;
            let inflation = match baseline {
                None => {
                    baseline = Some(mean.max(1.0));
                    1.0
                }
                Some(b) => mean / b,
            };
            if !args.quiet {
                eprintln!(
                    "{alg_name} rate {rate}: mean {mean:.1} cycles, {converged}/{} converged",
                    args.replicates
                );
            }
            rows.push(vec![
                (*alg_name).into(),
                format!("{rate}"),
                format!("{converged}/{}", args.replicates),
                format!("{mean:.1}"),
                format!("{inflation:.2}x"),
            ]);
            csv.push(vec![
                (*alg_name).into(),
                format!("{rate}"),
                format!("{}", args.replicates),
                format!("{converged}"),
                format!("{mean:.3}"),
                format!("{inflation:.4}"),
            ]);
        }
    }

    println!(
        "{}",
        render_table(
            &["algorithm", "rate", "converged", "mean cycles", "inflation"],
            &rows,
        )
    );
    let path = write_results_csv(
        &args.out_dir,
        "chaos.csv",
        &[
            "algorithm",
            "fault_rate",
            "replicates",
            "converged",
            "mean_iterations",
            "inflation_vs_faultfree",
        ],
        &csv,
    )
    .expect("write chaos.csv");
    if !args.quiet {
        eprintln!("wrote {}", path.display());
    }
    args.write_profile();
}
