//! Tables II + III + IV in a single grid pass.
//!
//! The three tables aggregate the *same* 3 × 20 × replicates experiment
//! grid (§IV-B: "Table II and Table III report the mean and standard
//! deviation of these experiments"); running them separately would triple
//! the compute. This binary executes the grid once and emits all three
//! tables and their CSVs. The individual `table2` / `table3` / `table4`
//! binaries remain available for regenerating one table (e.g. with
//! `--only`).

use mwu_core::Variant;
use mwu_datasets::full_catalog;
use mwu_experiments::{
    render_table, run_grid_observed, write_results_csv, CellResult, CommonArgs, GridConfig,
};

fn cell<'a>(cells: &'a [CellResult], dataset: &str, alg: Variant) -> &'a CellResult {
    cells
        .iter()
        .find(|c| c.dataset == dataset && c.algorithm == alg)
        .expect("cell present")
}

fn main() {
    let args = CommonArgs::from_env();
    let datasets: Vec<_> = full_catalog()
        .into_iter()
        .filter(|d| args.selects(&d.name))
        .collect();
    let config = GridConfig {
        replicates: args.replicates,
        max_iterations: 10_000,
        seed: args.seed,
    };
    if !args.quiet {
        eprintln!(
            "grid: {} datasets x 3 algorithms x {} replicates (single pass)",
            datasets.len(),
            config.replicates
        );
    }
    let mut observer = args.observer();
    let cells = run_grid_observed(&datasets, &config, &mut observer);
    if let Some(sink) = observer.0.as_mut() {
        sink.flush().expect("flush trace");
    }
    let algs = [Variant::Standard, Variant::Distributed, Variant::Slate];

    // ---- Table II ----
    let mut rows2 = Vec::new();
    let mut csv2 = Vec::new();
    for d in &datasets {
        let mut row = vec![d.name.clone(), d.size().to_string()];
        for &a in &algs {
            let c = cell(&cells, &d.name, a);
            row.push(if c.intractable {
                "—".into()
            } else if c.converged == 0 {
                "≥ 10000".into()
            } else {
                c.iterations.cell(1)
            });
            csv2.push(vec![
                d.name.clone(),
                d.size().to_string(),
                a.to_string(),
                if c.intractable {
                    "intractable".into()
                } else {
                    format!("{:.2}", c.iterations.mean)
                },
                format!("{:.2}", c.iterations.std_dev),
                c.converged.to_string(),
                c.replicates.to_string(),
            ]);
        }
        rows2.push(row);
    }
    println!(
        "Table II — update cycles until convergence (mean (std), {} replicates)\n",
        config.replicates
    );
    println!(
        "{}",
        render_table(
            &["scenario", "size", "Standard", "Distributed", "Slate"],
            &rows2
        )
    );

    // ---- Table III ----
    let mut rows3 = Vec::new();
    let mut csv3 = Vec::new();
    let mut min_acc = f64::INFINITY;
    for d in &datasets {
        let mut row = vec![d.name.clone(), d.size().to_string()];
        for &a in &algs {
            let c = cell(&cells, &d.name, a);
            row.push(if c.intractable {
                "—".into()
            } else {
                min_acc = min_acc.min(c.accuracy.mean);
                c.accuracy.cell(1)
            });
            csv3.push(vec![
                d.name.clone(),
                d.size().to_string(),
                a.to_string(),
                if c.intractable {
                    "intractable".into()
                } else {
                    format!("{:.2}", c.accuracy.mean)
                },
                format!("{:.2}", c.accuracy.std_dev),
            ]);
        }
        rows3.push(row);
    }
    println!(
        "\nTable III — accuracy, % of best-in-hindsight (mean (std), {} replicates)\n",
        config.replicates
    );
    println!(
        "{}",
        render_table(
            &["scenario", "size", "Standard", "Distributed", "Slate"],
            &rows3
        )
    );
    println!("shape check: minimum cell mean accuracy = {min_acc:.1}%  (paper: ≥ 90%)");

    // ---- Table IV ----
    let mut rows4 = Vec::new();
    let mut csv4 = Vec::new();
    for d in &datasets {
        let mut row = vec![d.name.clone(), d.size().to_string()];
        for &a in &algs {
            let c = cell(&cells, &d.name, a);
            row.push(if c.intractable {
                "—".into()
            } else {
                format!("{:.0}", c.cpu_iterations.mean)
            });
            csv4.push(vec![
                d.name.clone(),
                d.size().to_string(),
                a.to_string(),
                if c.intractable {
                    "intractable".into()
                } else {
                    format!("{:.0}", c.cpu_iterations.mean)
                },
                format!("{:.0}", c.cpu_iterations.std_dev),
            ]);
        }
        rows4.push(row);
    }
    println!(
        "\nTable IV — cost in CPU-iterations (mean over {} replicates)\n",
        config.replicates
    );
    println!(
        "{}",
        render_table(
            &["scenario", "size", "Standard", "Distributed", "Slate"],
            &rows4
        )
    );

    for (name, header, rows) in [
        (
            "table2.csv",
            vec![
                "scenario",
                "size",
                "algorithm",
                "iterations_mean",
                "iterations_std",
                "converged",
                "replicates",
            ],
            csv2,
        ),
        (
            "table3.csv",
            vec![
                "scenario",
                "size",
                "algorithm",
                "accuracy_mean",
                "accuracy_std",
            ],
            csv3,
        ),
        (
            "table4.csv",
            vec![
                "scenario",
                "size",
                "algorithm",
                "cpu_iterations_mean",
                "cpu_iterations_std",
            ],
            csv4,
        ),
    ] {
        let path = write_results_csv(&args.out_dir, name, &header, &rows).expect("write csv");
        if !args.quiet {
            eprintln!("wrote {}", path.display());
        }
    }
    args.write_profile();
}
