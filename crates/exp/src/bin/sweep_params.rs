//! §VI parameter-interaction study (the paper's stated future work):
//! "each algorithm has multiple interacting parameters (e.g., learning
//! rate, iteration limit, and the chance of choosing an option randomly
//! instead of obeying the weight distribution) ... Future research could
//! characterize the interaction between parameters more carefully."
//!
//! Sweeps, per variant, the parameter the paper calls out, on one random
//! and one unimodal instance, reporting convergence iterations and
//! accuracy.

use mwu_core::prelude::*;
use mwu_core::stats::RunningStats;
use mwu_core::LearningRate;
use mwu_datasets::catalog;
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

struct SweepPoint {
    variant: &'static str,
    parameter: &'static str,
    value: f64,
    dataset: String,
    iterations: f64,
    accuracy: f64,
    converged_frac: f64,
}

fn main() {
    let args = CommonArgs::from_env();
    let reps = args.replicates.clamp(3, 20);
    let datasets = [
        catalog::by_name("random256").unwrap(),
        catalog::by_name("unimodal256").unwrap(),
    ];
    let mut points: Vec<SweepPoint> = Vec::new();

    for d in &datasets {
        let k = d.size();

        // Standard: learning rate η.
        for &eta in &[0.05, 0.1, 0.25, 0.5] {
            let mut iters = RunningStats::new();
            let mut acc = RunningStats::new();
            let mut conv = 0usize;
            for rep in 0..reps {
                let mut alg = StandardMwu::new(
                    k,
                    StandardConfig {
                        eta: LearningRate::Constant(eta),
                        ..StandardConfig::default()
                    },
                );
                let mut bandit = d.bandit();
                let out = run_to_convergence(
                    &mut alg,
                    &mut bandit,
                    &RunConfig::seeded(mwu_core::rng::mix(&[args.seed, rep as u64])),
                );
                iters.push(out.iterations as f64);
                acc.push(out.accuracy(&d.values));
                conv += out.converged as usize;
            }
            points.push(SweepPoint {
                variant: "standard",
                parameter: "eta",
                value: eta,
                dataset: d.name.clone(),
                iterations: iters.mean(),
                accuracy: acc.mean(),
                converged_frac: conv as f64 / reps as f64,
            });
        }

        // Slate: exploration rate γ (which also sets the slate size).
        for &gamma in &[0.02, 0.05, 0.1, 0.2] {
            let mut iters = RunningStats::new();
            let mut acc = RunningStats::new();
            let mut conv = 0usize;
            for rep in 0..reps {
                let mut alg = SlateMwu::new(
                    k,
                    SlateConfig {
                        gamma,
                        ..SlateConfig::default()
                    },
                );
                let mut bandit = d.bandit();
                let out = run_to_convergence(
                    &mut alg,
                    &mut bandit,
                    &RunConfig::seeded(mwu_core::rng::mix(&[args.seed, 7, rep as u64])),
                );
                iters.push(out.iterations as f64);
                acc.push(out.accuracy(&d.values));
                conv += out.converged as usize;
            }
            points.push(SweepPoint {
                variant: "slate",
                parameter: "gamma",
                value: gamma,
                dataset: d.name.clone(),
                iterations: iters.mean(),
                accuracy: acc.mean(),
                converged_frac: conv as f64 / reps as f64,
            });
        }

        // Distributed: adoption contrast β (with μ fixed).
        for &beta in &[0.6, 0.75, 0.9, 0.98] {
            let mut iters = RunningStats::new();
            let mut acc = RunningStats::new();
            let mut conv = 0usize;
            for rep in 0..reps {
                let mut alg = DistributedMwu::try_new(
                    k,
                    DistributedConfig {
                        beta,
                        ..DistributedConfig::default()
                    },
                )
                .expect("k=256 tractable");
                let mut bandit = d.bandit();
                let out = run_to_convergence(
                    &mut alg,
                    &mut bandit,
                    &RunConfig::seeded(mwu_core::rng::mix(&[args.seed, 13, rep as u64])),
                );
                iters.push(out.iterations as f64);
                acc.push(out.accuracy(&d.values));
                conv += out.converged as usize;
            }
            points.push(SweepPoint {
                variant: "distributed",
                parameter: "beta",
                value: beta,
                dataset: d.name.clone(),
                iterations: iters.mean(),
                accuracy: acc.mean(),
                converged_frac: conv as f64 / reps as f64,
            });
        }
    }

    println!(
        "§VI parameter sweep ({} replicates per point, k = 256 instances)\n",
        reps
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.variant.to_string(),
                p.parameter.to_string(),
                format!("{:.2}", p.value),
                p.dataset.clone(),
                format!("{:.1}", p.iterations),
                format!("{:.1}", p.accuracy),
                format!("{:.2}", p.converged_frac),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "variant",
                "param",
                "value",
                "dataset",
                "iters",
                "accuracy%",
                "conv frac"
            ],
            &rows
        )
    );
    println!("reading: larger η converges faster at an accuracy price (exploit/");
    println!("explore); γ trades slate width against per-cycle information; larger");
    println!("β sharpens adoption and speeds population consensus.");

    let csv: Vec<Vec<String>> = rows;
    let path = write_results_csv(
        &args.out_dir,
        "sweep_params.csv",
        &[
            "variant",
            "param",
            "value",
            "dataset",
            "iterations",
            "accuracy",
            "converged_frac",
        ],
        &csv,
    )
    .expect("write sweep_params.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
