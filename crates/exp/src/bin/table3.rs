//! Table III — accuracy: absolute percent of the best-in-hindsight value
//! attained by the converged (or time-limited) choice, mean (std) over
//! replicates.

use mwu_core::Variant;
use mwu_datasets::full_catalog;
use mwu_experiments::{render_table, run_grid_observed, write_results_csv, CommonArgs, GridConfig};

fn main() {
    let args = CommonArgs::from_env();
    let datasets: Vec<_> = full_catalog()
        .into_iter()
        .filter(|d| args.selects(&d.name))
        .collect();
    let config = GridConfig {
        replicates: args.replicates,
        max_iterations: 10_000,
        seed: args.seed,
    };
    if !args.quiet {
        eprintln!(
            "Table III grid: {} datasets x 3 algorithms x {} replicates",
            datasets.len(),
            config.replicates
        );
    }
    let mut observer = args.observer();
    let cells = run_grid_observed(&datasets, &config, &mut observer);
    if let Some(sink) = observer.0.as_mut() {
        sink.flush().expect("flush trace");
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut min_accuracy = f64::INFINITY;
    for d in &datasets {
        let mut row = vec![d.name.clone(), d.size().to_string()];
        for &alg in &[Variant::Standard, Variant::Distributed, Variant::Slate] {
            let c = cells
                .iter()
                .find(|c| c.dataset == d.name && c.algorithm == alg)
                .expect("cell present");
            let text = if c.intractable {
                "—".to_string()
            } else {
                min_accuracy = min_accuracy.min(c.accuracy.mean);
                c.accuracy.cell(1)
            };
            row.push(text);
            csv.push(vec![
                d.name.clone(),
                d.size().to_string(),
                alg.to_string(),
                if c.intractable {
                    "intractable".into()
                } else {
                    format!("{:.2}", c.accuracy.mean)
                },
                format!("{:.2}", c.accuracy.std_dev),
            ]);
        }
        rows.push(row);
    }

    println!(
        "Table III — accuracy, % of best-in-hindsight value (mean (std), {} replicates)\n",
        config.replicates
    );
    println!(
        "{}",
        render_table(
            &["scenario", "size", "Standard", "Distributed", "Slate"],
            &rows
        )
    );
    println!(
        "shape check: minimum cell mean accuracy = {:.1}%  (paper: every algorithm ≥ 90%)",
        min_accuracy
    );

    let path = write_results_csv(
        &args.out_dir,
        "table3.csv",
        &[
            "scenario",
            "size",
            "algorithm",
            "accuracy_mean",
            "accuracy_std",
        ],
        &csv,
    )
    .expect("write table3.csv");
    if !args.quiet {
        eprintln!("wrote {}", path.display());
    }
    args.write_profile();
}
