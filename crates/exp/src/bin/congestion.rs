//! §II-C — communication congestion of Distributed MWU.
//!
//! Verifies empirically that the per-round congestion of the
//! random-neighbor observation pattern is the balls-into-bins maximum load,
//! `Θ(ln n / ln ln n)` with high probability — versus the `n − 1` congestion
//! of the Standard/Slate global synchronization.

use mwu_experiments::{render_table, write_results_csv, CommonArgs};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simnet::congestion::{exceedance_rate, expected_max_load, mean_max_load};
use simnet::Topology;

fn main() {
    let args = CommonArgs::from_env();
    let trials = args.replicates;

    println!("§II-C — congestion of the heaviest-hit node per round ({trials} trials)\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &[64usize, 256, 1024, 4096, 16384, 65536] {
        let theory = expected_max_load(n);
        let empirical = mean_max_load(n, trials, args.seed);
        let mut rng = SmallRng::seed_from_u64(args.seed ^ n as u64);
        let star = Topology::Star.congestion(n, &mut rng);
        let exceed = exceedance_rate(n, 3.0 * theory, trials, args.seed ^ 0xE);
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", theory),
            format!("{:.2}", empirical),
            star.to_string(),
            format!("{:.3}", exceed),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{:.4}", theory),
            format!("{:.4}", empirical),
            star.to_string(),
            format!("{:.4}", exceed),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "n (agents)",
                "ln n / ln ln n",
                "Distributed (measured)",
                "Standard/Slate (star)",
                "P[> 3x theory]"
            ],
            &rows
        )
    );
    println!("reading: Distributed's measured congestion tracks the theory column");
    println!("within a small constant and is exceeded (by 3x) with vanishing");
    println!("probability, while global synchronization pays n − 1 every round.");

    let path = write_results_csv(
        &args.out_dir,
        "congestion.csv",
        &[
            "n",
            "theory",
            "distributed_measured",
            "star",
            "exceedance_3x",
        ],
        &csv,
    )
    .expect("write congestion.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
