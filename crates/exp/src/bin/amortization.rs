//! §III-C amortization — the economics of the precomputed pool.
//!
//! The paper's argument for precomputation: the pool is "a one-time cost
//! that is easily run in parallel and can be amortized over the cost of
//! repairing multiple bugs in a given program." This experiment repairs a
//! sequence of sibling bugs in the same program two ways:
//!
//! * **amortized** — build the pool once, reuse it for every bug;
//! * **per-bug** — rebuild the pool for each bug (the cost structure of
//!   generating mutations inside each repair run).
//!
//! and reports cumulative fitness evaluations and latency per bug count.

use apr_sim::{BugScenario, CostLedger};
use mwrepair::{repair_with_variant, MwRepairConfig, VariantChoice};
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();
    let base = BugScenario::by_name("units").expect("catalog scenario");
    let n_bugs = 8usize;
    let bugs: Vec<BugScenario> = (0..n_bugs as u64).map(|i| base.sibling_bug(i)).collect();

    println!(
        "§III-C amortization — {} sibling bugs in {} (pool target {})\n",
        n_bugs, base.name, base.pool_size
    );

    // Amortized: one pool, many bugs.
    let amortized = CostLedger::new();
    let pool = base.build_pool(args.seed, Some(&amortized));
    let mut amortized_cum = Vec::new();
    let mut repaired_amortized = 0;
    for (i, bug) in bugs.iter().enumerate() {
        let out = repair_with_variant(
            bug,
            &pool,
            VariantChoice::Standard,
            &MwRepairConfig::seeded(mwu_core::rng::mix(&[args.seed, 1, i as u64])),
            Some(&amortized),
        )
        .expect("tractable");
        if out.is_repaired() {
            repaired_amortized += 1;
        }
        amortized_cum.push((amortized.fitness_evals(), amortized.critical_path_ms()));
    }

    // Per-bug: rebuild the pool every time.
    let per_bug = CostLedger::new();
    let mut per_bug_cum = Vec::new();
    let mut repaired_per_bug = 0;
    for (i, bug) in bugs.iter().enumerate() {
        let fresh_pool = bug.build_pool(args.seed ^ (i as u64 + 1), Some(&per_bug));
        let out = repair_with_variant(
            bug,
            &fresh_pool,
            VariantChoice::Standard,
            &MwRepairConfig::seeded(mwu_core::rng::mix(&[args.seed, 2, i as u64])),
            Some(&per_bug),
        )
        .expect("tractable");
        if out.is_repaired() {
            repaired_per_bug += 1;
        }
        per_bug_cum.push((per_bug.fitness_evals(), per_bug.critical_path_ms()));
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for i in 0..n_bugs {
        let (ae, al) = amortized_cum[i];
        let (pe, pl) = per_bug_cum[i];
        rows.push(vec![
            (i + 1).to_string(),
            ae.to_string(),
            pe.to_string(),
            format!("{:.2}", pe as f64 / ae.max(1) as f64),
            al.to_string(),
            pl.to_string(),
        ]);
        csv.push(vec![
            (i + 1).to_string(),
            ae.to_string(),
            pe.to_string(),
            al.to_string(),
            pl.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "bugs repaired",
                "cum evals (amortized)",
                "cum evals (per-bug)",
                "ratio",
                "cum latency (amortized)",
                "cum latency (per-bug)",
            ],
            &rows
        )
    );
    println!(
        "\nrepairs: amortized {repaired_amortized}/{n_bugs}, per-bug {repaired_per_bug}/{n_bugs}"
    );
    println!("reading: the amortized curve pays the pool once and then grows only by");
    println!("online probes; the per-bug curve re-pays the dominant precompute cost");
    println!("for every bug — the gap widens linearly in the number of bugs.");

    let path = write_results_csv(
        &args.out_dir,
        "amortization.csv",
        &[
            "bugs",
            "amortized_evals",
            "per_bug_evals",
            "amortized_latency",
            "per_bug_latency",
        ],
        &csv,
    )
    .expect("write amortization.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
