//! Single-scenario MWRepair run with crash-safe checkpoint / resume.
//!
//! Runs the online phase on one catalog bug scenario and prints the
//! outcome. The resumable driver makes the run kill-tolerant:
//!
//! ```text
//! mwrepair_run --scenario Chart --checkpoint run.ckpt      # killed mid-run
//! mwrepair_run --scenario Chart --resume run.ckpt \
//!              --checkpoint run.ckpt                       # continues
//! ```
//!
//! A resumed run finishes with *exactly* the outcome the uninterrupted
//! same-seed run would have produced (same repair, same probe count, same
//! cost) — the checkpoint carries the MWU weights, master-RNG state and
//! absolute counters, and per-probe randomness is keyed by
//! `(seed, iteration, agent)`.
//!
//! Extra flags (before the common ones): `--scenario SUBSTR` (catalog name
//! filter, default: first scenario), `--alg NAME`
//! (standard | slate | distributed, default standard), `--halt-after N`
//! (cooperatively stop after N update cycles — a deterministic stand-in
//! for `kill -9` in demos and CI), `--max-iterations N`.

use apr_sim::BugScenario;
use mwrepair::{
    effective_arms, repair_resumable, Checkpoint, CheckpointPolicy, MwRepairConfig, SessionControl,
    SessionResult, VariantChoice,
};
use mwu_core::trace::Observer;
use mwu_core::{
    DistributedConfig, DistributedMwu, MwuAlgorithm, SlateConfig, SlateMwu, StandardConfig,
    StandardMwu,
};
use mwu_experiments::CommonArgs;
use serde::{Deserialize, Serialize};

#[allow(clippy::too_many_arguments)]
fn run_variant<A, O>(
    scenario: &BugScenario,
    pool: &apr_sim::MutationPool,
    mut alg: A,
    config: &MwRepairConfig,
    observer: &mut O,
    session: &SessionControl,
    resume: Option<&Checkpoint>,
) -> SessionResult
where
    A: MwuAlgorithm + Serialize + Deserialize,
    O: Observer,
{
    repair_resumable(
        scenario, pool, &mut alg, config, None, observer, session, resume,
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn main() {
    // Peel binary-specific flags before the strict common parser.
    let mut scenario_filter: Option<String> = None;
    let mut alg_name = String::from("standard");
    let mut halt_after: Option<usize> = None;
    let mut max_iterations: usize = 10_000;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scenario" => scenario_filter = Some(take("--scenario")),
            "--alg" => alg_name = take("--alg"),
            "--halt-after" => {
                let v = take("--halt-after");
                halt_after = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("--halt-after {v:?}: {e}");
                    std::process::exit(2);
                }));
            }
            "--max-iterations" => {
                let v = take("--max-iterations");
                max_iterations = v.parse().unwrap_or_else(|e| {
                    eprintln!("--max-iterations {v:?}: {e}");
                    std::process::exit(2);
                });
            }
            other => rest.push(other.to_owned()),
        }
    }
    let args = match CommonArgs::parse(rest) {
        Ok(a) => {
            a.apply_parallelism();
            a.apply_profiling();
            a
        }
        Err(e) => {
            eprintln!(
                "{e}\nmwrepair_run extras: --scenario SUBSTR | --alg NAME | --halt-after N | \
                 --max-iterations N"
            );
            std::process::exit(2);
        }
    };
    let variant = VariantChoice::parse(&alg_name).unwrap_or_else(|| {
        eprintln!("--alg must be standard | slate | distributed (got {alg_name:?})");
        std::process::exit(2);
    });

    let scenarios = BugScenario::catalog_all();
    let scenario = match &scenario_filter {
        Some(f) => scenarios
            .iter()
            .find(|s| s.name.contains(f.as_str()))
            .unwrap_or_else(|| {
                eprintln!("no catalog scenario matches {f:?}");
                std::process::exit(2);
            }),
        None => &scenarios[0],
    };

    let mut config = MwRepairConfig::seeded(args.seed);
    config.max_iterations = max_iterations;
    let pool = scenario.build_pool(args.seed, None);
    let arms = effective_arms(pool.len(), &config);

    // Startup sweep: a crash between save_atomic's tmp write and rename
    // strands a torn `<path>.tmp`; remove it before resuming (and before
    // the first save) so it can never shadow the real checkpoint.
    for p in args.resume.iter().chain(args.checkpoint.iter()) {
        match Checkpoint::sweep_orphan_tmp(p) {
            Ok(true) if !args.quiet => {
                eprintln!("removed orphaned {}.tmp from a crashed save", p.display());
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("cannot sweep {}.tmp: {e}", p.display());
                std::process::exit(1);
            }
        }
    }
    let resume = args.resume.as_deref().map(|p| {
        Checkpoint::load(p).unwrap_or_else(|e| {
            eprintln!("cannot resume from {}: {e}", p.display());
            std::process::exit(1);
        })
    });
    let session = SessionControl {
        checkpoint: args
            .checkpoint
            .as_deref()
            .map(|p| CheckpointPolicy::new(p, args.checkpoint_every)),
        halt_after_iterations: halt_after,
    };
    if !args.quiet {
        eprintln!(
            "scenario {} (k = {arms}), {} MWU, seed {}{}",
            scenario.name,
            alg_name,
            args.seed,
            match resume.as_ref() {
                Some(ck) => format!(", resuming at iteration {}", ck.iteration),
                None => String::new(),
            }
        );
    }

    let mut observer = args.observer();
    let result = match variant {
        VariantChoice::Standard => run_variant(
            scenario,
            &pool,
            StandardMwu::new(arms, StandardConfig::default()),
            &config,
            &mut observer,
            &session,
            resume.as_ref(),
        ),
        VariantChoice::Slate => run_variant(
            scenario,
            &pool,
            SlateMwu::new(arms, SlateConfig::default()),
            &config,
            &mut observer,
            &session,
            resume.as_ref(),
        ),
        VariantChoice::Distributed => run_variant(
            scenario,
            &pool,
            DistributedMwu::try_new(arms, DistributedConfig::default()).unwrap_or_else(|e| {
                eprintln!("distributed intractable at k = {arms}: {e:?}");
                std::process::exit(1);
            }),
            &config,
            &mut observer,
            &session,
            resume.as_ref(),
        ),
    };

    match result {
        SessionResult::Complete(outcome) => {
            println!(
                "{}",
                serde_json::to_string(&outcome).expect("outcome serializes")
            );
        }
        SessionResult::Halted { checkpoint } => {
            if let Some(p) = &args.checkpoint {
                println!(
                    "halted at iteration {} ({} probes); resume with --resume {}",
                    checkpoint.iteration,
                    checkpoint.probes,
                    p.display()
                );
            } else {
                println!(
                    "halted at iteration {} ({} probes); no --checkpoint path given, state lost",
                    checkpoint.iteration, checkpoint.probes
                );
            }
        }
    }
    args.write_profile();
}
