//! Service load generator: replays the same many-tenant job mix through
//! `mwrepaird` at 1/2/4/8 threads and writes `BENCH_service.json`.
//!
//! Each sweep builds a fresh work directory, submits an identical
//! generated batch (mixed synthetic scenario families, Standard / Slate /
//! Distributed sessions, one deliberately under-budgeted tenant), runs the
//! daemon under `rayon::with_max_threads`, and then byte-compares every
//! session's trace and report against the first sweep — so one invocation
//! yields the scaling curve *and* re-proves the determinism contract at
//! scale. The run aborts if any byte differs.
//!
//! Flags: `--sessions N` (default 1000), `--tenants N` (default 50),
//! `--seed S`, `--out DIR` (default `results`), `--slice N` (default 8),
//! `--fast` (fewer sessions, same per-session work, so `sessions_per_sec`
//! stays comparable to full runs), `--threads N` (restrict the sweep to
//! counts ≤ N), `--check BASELINE.json` (fail on a >2× regression in peak
//! sessions-per-second, or on a per-cell session-latency regression past
//! an explicit disk-noise margin — see [`LATENCY_NOISE_FACTOR`]),
//! `--max-fsync-share F` (fail if the 1-thread cell spends more than
//! fraction `F` of its wall clock inside fsync + the group-commit
//! barrier), `--eager-sync` (bench the pre-batching per-write fsync
//! discipline), `--quiet`.

use mwrepair::VariantChoice;
use mwrepair_service::{
    encode_line, BudgetSpec, Daemon, DaemonConfig, JobLine, JobSpec, ScenarioSpec,
};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One thread-count cell of the sweep.
#[derive(Serialize, Deserialize)]
struct ServiceCell {
    threads: usize,
    wall_ms: f64,
    sessions_per_sec: f64,
    latency_ms_p50: f64,
    latency_ms_p99: f64,
    completed: usize,
    repaired: usize,
    budget_exhausted: usize,
    rounds: u64,
    /// Thread-time spent inside `fsync` during this cell, attributed by
    /// the phase profiler (sums across workers, so it can exceed
    /// `wall_ms`). `Option` so old baselines still parse.
    fsync_thread_ms: Option<f64>,
    /// `wall_ms` minus the wall-clock share of durability work (fsync
    /// plus barrier thread-time, divided by the cell's thread count) —
    /// the compute-side residual of the cell. `Option` so old baselines
    /// still parse.
    compute_ms: Option<f64>,
    /// Thread-time spent inside the group-commit `sync_barrier` during
    /// this cell, attributed by the phase profiler. `Option` so old
    /// baselines still parse.
    sync_barrier_thread_ms: Option<f64>,
    /// Batched-sync accounting from the daemon summary: staged files
    /// made durable through barriers, and the barrier latency histogram.
    /// `Option` so old baselines still parse.
    io_syncs_batched: Option<u64>,
}

#[derive(Serialize, Deserialize)]
struct BenchService {
    schema: String,
    /// Shared provenance block. `Option` so `--check` still parses
    /// baselines committed before the block existed.
    meta: Option<mwu_experiments::BenchMeta>,
    sessions: usize,
    tenants: usize,
    slice_iterations: usize,
    pool_threads: usize,
    thread_counts: Vec<usize>,
    deterministic_across_thread_counts: bool,
    cells: Vec<ServiceCell>,
}

/// Six small synthetic scenario families; sessions cycle through them, so
/// the daemon's pool cache serves ~`sessions/6` sessions per entry.
fn families(seed: u64) -> Vec<ScenarioSpec> {
    (0..6u64)
        .map(|f| ScenarioSpec::Synthetic {
            name: format!("load-family-{f}"),
            options: 16 + 2 * f as usize,
            x_star: 4 + f as usize,
            statements: 150 + 25 * f as usize,
            tests: 8 + (f as usize % 3),
            // Pools hold ~options mutations, so the repairing families
            // need a rate ≳ 1/options to actually contain a repairer.
            repair_rate: if f % 2 == 0 { 0.0 } else { 0.05 },
            world_seed: seed.wrapping_add(100 + f),
            pool_size: Some(16 + 2 * f as usize),
        })
        .collect()
}

/// The generated batch: `sessions` jobs over `tenants` tenants plus a
/// deliberately tight budget for tenant `t000`, as canonical JSONL bytes.
fn generate_batch(sessions: usize, tenants: usize, seed: u64) -> Vec<u8> {
    let families = families(seed);
    let mut doc = String::new();
    doc.push_str(&encode_line(&JobLine::Budget(BudgetSpec {
        tenant: "t000".into(),
        max_evals: Some(1_500),
        max_ms: None,
    })));
    doc.push('\n');
    for i in 0..sessions {
        let algorithm = match i % 10 {
            3 => VariantChoice::Distributed,
            n if n % 2 == 0 => VariantChoice::Standard,
            _ => VariantChoice::Slate,
        };
        // Distributed probes its whole agent population each cycle, so it
        // gets a lower cycle cap for comparable per-session work.
        let max_iterations = if algorithm == VariantChoice::Distributed {
            6 + i % 5
        } else {
            10 + (i * 11) % 21
        };
        let job = JobSpec {
            id: format!("job-{i:05}"),
            tenant: format!("t{:03}", i % tenants.max(1)),
            scenario: families[i % families.len()].clone(),
            algorithm,
            seed: seed.wrapping_mul(1_000_000_007).wrapping_add(i as u64),
            max_iterations,
        };
        doc.push_str(&encode_line(&JobLine::Job(job)));
        doc.push('\n');
    }
    doc.into_bytes()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Every session's `(trace bytes, report bytes)` in submission order.
fn collect_outputs(daemon: &Daemon) -> Vec<(String, Vec<u8>, Vec<u8>)> {
    daemon
        .sessions()
        .iter()
        .map(|s| {
            let trace = std::fs::read(s.trace_path()).unwrap_or_default();
            let report = std::fs::read(s.report_path()).unwrap_or_default();
            (s.job().id.clone(), trace, report)
        })
        .collect()
}

/// Multiplicative headroom a cell's session latency gets over the
/// baseline before `--check` fails. Low-thread cells are disk-bound:
/// their p50/p99 swing several-fold with host writeback pressure even
/// when the daemon is unchanged, so the latency gate is a coarse
/// catastrophic-regression tripwire, not a precision benchmark — noise
/// belongs in this named margin, never in a silently loose comparison.
const LATENCY_NOISE_FACTOR: f64 = 4.0;

/// Absolute latency slack (milliseconds) added on top of
/// [`LATENCY_NOISE_FACTOR`]: a near-zero baseline cell (sub-millisecond
/// p50 on a fast disk) would otherwise fail on any jitter at all.
const LATENCY_NOISE_FLOOR_MS: f64 = 250.0;

fn check_regression(baseline_path: &Path, report: &BenchService) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline: BenchService =
        serde_json::from_str(text.trim()).map_err(|e| format!("baseline does not parse: {e}"))?;
    if baseline.schema != report.schema {
        return Err(format!(
            "baseline schema {:?} != {:?}",
            baseline.schema, report.schema
        ));
    }
    // Gate on the best cell of each sweep rather than per thread count:
    // low-thread cells are fsync-latency-bound (wall time ≫ CPU time), so
    // their sessions/s swings several-fold with disk writeback pressure,
    // while peak throughput tracks actual daemon capacity.
    let peak = |cells: &[ServiceCell]| {
        cells
            .iter()
            .map(|c| c.sessions_per_sec)
            .fold(0.0f64, f64::max)
    };
    let (base_peak, new_peak) = (peak(&baseline.cells), peak(&report.cells));
    if new_peak > 0.0 && base_peak / new_peak > 2.0 {
        return Err(format!(
            "peak throughput regression: {new_peak:.1} sessions/s vs baseline {base_peak:.1} (>2x)"
        ));
    }
    // Per-cell latency gate, with the disk-noise margin made explicit.
    // Cells are matched by thread count so a partial sweep still checks.
    for cell in &report.cells {
        let Some(base) = baseline.cells.iter().find(|b| b.threads == cell.threads) else {
            continue;
        };
        for (name, got, reference) in [
            ("p50", cell.latency_ms_p50, base.latency_ms_p50),
            ("p99", cell.latency_ms_p99, base.latency_ms_p99),
        ] {
            let allowed = reference * LATENCY_NOISE_FACTOR + LATENCY_NOISE_FLOOR_MS;
            if got > allowed {
                return Err(format!(
                    "session latency regression at {} threads: {name} {got:.0} ms vs \
                     baseline {reference:.0} ms (allowed {allowed:.0} ms = \
                     {reference:.0} x {LATENCY_NOISE_FACTOR} + {LATENCY_NOISE_FLOOR_MS} noise margin)",
                    cell.threads
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    let mut sessions: usize = 1000;
    let mut tenants: usize = 50;
    let mut seed: u64 = 1;
    let mut out_dir = PathBuf::from("results");
    let mut slice: usize = 8;
    let mut fast = false;
    let mut threads: Option<usize> = None;
    let mut check: Option<PathBuf> = None;
    let mut max_fsync_share: Option<f64> = None;
    let mut eager_sync = false;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        let num = |flag: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} {v:?}: not a valid number");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--sessions" => sessions = num("--sessions", take("--sessions")) as usize,
            "--tenants" => tenants = num("--tenants", take("--tenants")) as usize,
            "--seed" => seed = num("--seed", take("--seed")),
            "--out" => out_dir = PathBuf::from(take("--out")),
            "--slice" => slice = (num("--slice", take("--slice")) as usize).max(1),
            "--fast" => fast = true,
            "--threads" => threads = Some(num("--threads", take("--threads")) as usize),
            "--check" => check = Some(PathBuf::from(take("--check"))),
            "--max-fsync-share" => {
                let v = take("--max-fsync-share");
                let share: f64 = v.parse().unwrap_or_else(|_| {
                    eprintln!("--max-fsync-share {v:?}: not a valid number");
                    std::process::exit(2);
                });
                if !(0.0..=1.0).contains(&share) {
                    eprintln!("--max-fsync-share {share}: must be in [0, 1]");
                    std::process::exit(2);
                }
                max_fsync_share = Some(share);
            }
            "--eager-sync" => eager_sync = true,
            "--quiet" => quiet = true,
            other => {
                eprintln!(
                    "unknown flag {other:?}\nusage: loadgen [--sessions N] [--tenants N] \
                     [--seed S] [--out DIR] [--slice N] [--fast] [--threads N] \
                     [--check BASELINE.json] [--max-fsync-share F] [--eager-sync] [--quiet]"
                );
                std::process::exit(2);
            }
        }
    }
    if fast {
        sessions = sessions.min(120);
        tenants = tenants.min(12);
    }
    match threads {
        Some(n) => {
            rayon::set_num_threads(n.max(1));
        }
        None => {
            rayon::set_num_threads(8);
        }
    }
    let pool_threads = rayon::current_num_threads();
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&c| c <= pool_threads)
        .collect();
    if !quiet {
        eprintln!(
            "loadgen: {sessions} sessions over {tenants} tenants, slice {slice}, \
             sweeping {thread_counts:?} threads (pool {pool_threads})"
        );
    }

    // The profiler attributes each cell's fsync cost. Observational only:
    // the byte-compare below re-proves traces and reports are unchanged.
    mwu_core::prof::set_enabled(true);

    let batch = generate_batch(sessions, tenants, seed);
    let work_root = out_dir.join("loadgen_work");
    let mut cells = Vec::new();
    let mut reference: Vec<(String, Vec<u8>, Vec<u8>)> = Vec::new();
    let mut deterministic = true;
    for &count in &thread_counts {
        mwu_core::prof::reset();
        let workdir = work_root.join(format!("t{count}"));
        let _ = std::fs::remove_dir_all(&workdir);
        let mut config = DaemonConfig::new(&workdir);
        config.slice_iterations = slice;
        config.quiet = true;
        config.group_commit = !eager_sync;
        let mut daemon = Daemon::open(config).unwrap_or_else(|e| {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        });
        daemon.submit_bytes(&batch).unwrap_or_else(|e| {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        });
        let start = Instant::now();
        let summary = rayon::with_max_threads(count, || daemon.run()).unwrap_or_else(|e| {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let profile = mwu_core::prof::snapshot();
        let fsync_thread_ms = profile.total_ns(mwu_core::prof::Phase::Fsync) as f64 / 1e6;
        let sync_barrier_thread_ms =
            profile.total_ns(mwu_core::prof::Phase::SyncBarrier) as f64 / 1e6;
        let durability_thread_ms = fsync_thread_ms + sync_barrier_thread_ms;
        let compute_ms = (wall_ms - durability_thread_ms / count as f64).max(0.0);

        let outputs = collect_outputs(&daemon);
        if reference.is_empty() {
            reference = outputs;
        } else if reference != outputs {
            deterministic = false;
            for (i, (id, trace, report)) in outputs.iter().enumerate() {
                let (rid, rtrace, rreport) = &reference[i];
                if id != rid || trace != rtrace || report != rreport {
                    eprintln!(
                        "error: session {id} bytes at {count} threads differ from 1-thread run"
                    );
                    break;
                }
            }
        }
        let _ = std::fs::remove_dir_all(&workdir);

        let mut latencies = summary.session_wall_ms.clone();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let finished = latencies.len();
        cells.push(ServiceCell {
            threads: count,
            wall_ms,
            sessions_per_sec: finished as f64 / (wall_ms / 1e3),
            latency_ms_p50: percentile(&latencies, 0.50),
            latency_ms_p99: percentile(&latencies, 0.99),
            completed: summary.completed,
            repaired: summary.repaired,
            budget_exhausted: summary.budget_exhausted,
            rounds: summary.rounds,
            fsync_thread_ms: Some(fsync_thread_ms),
            compute_ms: Some(compute_ms),
            sync_barrier_thread_ms: Some(sync_barrier_thread_ms),
            io_syncs_batched: Some(summary.io_syncs_batched),
        });
        if !quiet {
            let c = cells.last().expect("cell just pushed");
            eprintln!(
                "  {count} threads: {wall_ms:.0} ms ({compute_ms:.0} compute + \
                 {fsync_thread_ms:.0} fsync + {sync_barrier_thread_ms:.0} barrier thread-ms, \
                 {} files batched), {:.1} sessions/s, p50 {:.0} ms, \
                 p99 {:.0} ms, {} completed / {} budget-exhausted",
                summary.io_syncs_batched,
                c.sessions_per_sec,
                c.latency_ms_p50,
                c.latency_ms_p99,
                c.completed,
                c.budget_exhausted
            );
        }
    }
    let _ = std::fs::remove_dir_all(&work_root);

    let report = BenchService {
        schema: "bench_service/v1".into(),
        meta: Some(mwu_experiments::BenchMeta::capture()),
        sessions,
        tenants,
        slice_iterations: slice,
        pool_threads,
        thread_counts,
        deterministic_across_thread_counts: deterministic,
        cells,
    };
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_service.json");
    std::fs::write(
        &path,
        serde_json::to_string(&report).expect("serialize report"),
    )
    .expect("write BENCH_service.json");
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    if let Some(baseline) = check {
        if let Err(e) = check_regression(&baseline, &report) {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
        if !quiet {
            eprintln!("baseline check passed ({})", baseline.display());
        }
    }
    if let Some(ceiling) = max_fsync_share {
        // The tentpole's headline number: the 1-thread cell's wall-clock
        // fraction spent on durability (per-write fsyncs + the batched
        // barrier). Group commit must keep it under the ceiling.
        let cell = report
            .cells
            .iter()
            .find(|c| c.threads == 1)
            .unwrap_or_else(|| {
                eprintln!("loadgen: --max-fsync-share needs the 1-thread cell in the sweep");
                std::process::exit(2);
            });
        let durability_ms =
            cell.fsync_thread_ms.unwrap_or(0.0) + cell.sync_barrier_thread_ms.unwrap_or(0.0);
        let share = if cell.wall_ms > 0.0 {
            durability_ms / cell.wall_ms
        } else {
            0.0
        };
        if share > ceiling {
            eprintln!(
                "loadgen: 1-thread fsync share {share:.3} exceeds ceiling {ceiling:.3} \
                 ({durability_ms:.0} durability ms of {:.0} wall ms)",
                cell.wall_ms
            );
            std::process::exit(1);
        }
        if !quiet {
            eprintln!("fsync-share check passed: {share:.3} <= {ceiling:.3}");
        }
    }
    assert!(
        deterministic,
        "service outputs must be byte-identical at every thread count"
    );
}
