//! Fig. 4a — fraction of programs passing the test suite vs. the number of
//! mutations applied together, on the gzip scenario.
//!
//! Two series, as in the paper:
//! * safe (pooled) mutations — decays slowly; "even when 80 safe mutations
//!   are applied together, on average, over 50% of the resulting programs
//!   retain their original functionality";
//! * untested random mutations — already two of them break more than half
//!   of programs.
//!
//! Each point averages `--replicates × 10` independent trials (paper: 1,000
//! trials per point; the default 100 × 10 matches it).

use apr_sim::fig4::{survival_curve, untested_survival_curve};
use apr_sim::BugScenario;
use mwu_experiments::{render_table, write_results_csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();
    let trials = args.replicates * 10;
    let scenario = BugScenario::by_name("gzip-2009-08-16").expect("catalog scenario");
    eprintln!("precomputing safe-mutation pool for {} ...", scenario.name);
    let pool = scenario.build_pool(args.seed, None);

    let xs: Vec<usize> = (1..=9).chain((10..=100).step_by(5)).collect();
    eprintln!("estimating survival curves ({} trials/point)...", trials);
    let safe = survival_curve(&scenario, &pool, &xs, trials, args.seed);
    let raw_xs: Vec<usize> = (1..=10).collect();
    let raw = untested_survival_curve(&scenario, &raw_xs, trials, args.seed);

    println!(
        "Fig. 4a — fraction passing vs. #mutations ({} trials/point)\n",
        trials
    );
    let rows: Vec<Vec<String>> = safe
        .iter()
        .map(|p| {
            let raw_v = raw
                .iter()
                .find(|r| r.x == p.x)
                .map(|r| format!("{:.3}", r.value))
                .unwrap_or_else(|| "".to_string());
            vec![p.x.to_string(), format!("{:.3}", p.value), raw_v]
        })
        .collect();
    println!(
        "{}",
        render_table(&["x (mutations)", "safe pool", "untested"], &rows)
    );

    // Paper-shape checks, reported explicitly.
    let at = |x: usize| {
        safe.iter()
            .find(|p| p.x == x)
            .map(|p| p.value)
            .unwrap_or(0.0)
    };
    let raw2 = raw
        .iter()
        .find(|p| p.x == 2)
        .map(|p| p.value)
        .unwrap_or(0.0);
    println!("shape checks:");
    println!(
        "  survival at x=80 (safe): {:.3}  (paper: substantial — ≈0.5; slow decay)",
        at(80)
    );
    println!(
        "  survival at x=2 (untested): {:.3}  (paper: < 0.5 — most programs broken)",
        raw2
    );

    let mut csv = Vec::new();
    for p in &safe {
        csv.push(vec![
            "safe".to_string(),
            p.x.to_string(),
            format!("{:.6}", p.value),
        ]);
    }
    for p in &raw {
        csv.push(vec![
            "untested".to_string(),
            p.x.to_string(),
            format!("{:.6}", p.value),
        ]);
    }
    let path = write_results_csv(
        &args.out_dir,
        "fig4a.csv",
        &["series", "x", "fraction_passing"],
        &csv,
    )
    .expect("write fig4a.csv");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
