//! `torture` — the hostile-disk certification sweep for `mwrepaird`.
//!
//! Sweeps storage-fault rate × fault class × thread count against the
//! multi-tenant daemon, killing and resuming it across *generations* (each
//! generation is one daemon process lifetime with a freshly-seeded
//! [`FaultVfs`], simulating a remount after a crash), and certifies the
//! three hostile-disk guarantees of docs/FAULTS.md:
//!
//! 1. **No corruption** — no fault schedule changes a surviving session's
//!    trace/report bytes: after the final clean-disk resume, every session
//!    is byte-identical to the fault-free reference run.
//! 2. **Quarantine is recoverable** — sessions quarantined mid-sweep
//!    resume to byte-identical completion once the faults clear.
//! 3. **The daemon never aborts** — `Daemon::run` neither panics nor
//!    leaves the process; storage failures surface as quarantines or
//!    graceful `Err` returns.
//!
//! The certificate is written as JSON (schema `torture/v1`) to the path
//! given by `--out` (default `TORTURE.json`) and the process exits
//! non-zero if any guarantee is violated. `--fast` runs the reduced CI
//! sweep (see `.github/workflows/ci.yml`, job `torture-smoke`).
//!
//! The adversary is mounted *rooted* at each cell's work directory, so
//! the fault schedule is keyed by work-directory-relative paths — the
//! committed certificate's per-cell counters reproduce on any machine.

use mwrepair::VariantChoice;
use mwrepair_service::{
    encode_line, Daemon, DaemonConfig, FaultVfs, JobLine, JobSpec, ScenarioSpec,
    StorageFaultConfig, StorageFaultPlan,
};
use serde::Serialize;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Iteration slice per round — small, so every session crosses many
/// durability barriers (more chances for a fault to land mid-protocol).
const SLICE: usize = 2;
/// Faulty daemon lifetimes per cell before the final clean resume.
const GENERATIONS: u64 = 5;

fn scenario() -> ScenarioSpec {
    ScenarioSpec::Synthetic {
        name: "torture".into(),
        options: 16,
        x_star: 4,
        statements: 150,
        tests: 8,
        repair_rate: 0.0,
        world_seed: 11,
        pool_size: Some(16),
    }
}

/// Six budget-free jobs across three tenants. Budget-free is deliberate:
/// a quarantined session perturbs *when* its tenant's budget trips for
/// siblings, so byte-identity certification must not involve budgets
/// (the budget × quarantine interaction is pinned separately in
/// `tests/tests/service_faults.rs`).
fn batch() -> Vec<u8> {
    let mut doc = String::new();
    for (i, (id, tenant)) in [
        ("tj-0", "acme"),
        ("tj-1", "acme"),
        ("tj-2", "globex"),
        ("tj-3", "globex"),
        ("tj-4", "initech"),
        ("tj-5", "initech"),
    ]
    .iter()
    .enumerate()
    {
        let job = JobSpec {
            id: (*id).into(),
            tenant: (*tenant).into(),
            scenario: scenario(),
            algorithm: VariantChoice::Standard,
            seed: 100 + i as u64,
            max_iterations: 10,
        };
        doc.push_str(&encode_line(&JobLine::Job(job)));
        doc.push('\n');
    }
    doc.into_bytes()
}

type SessionBytes = BTreeMap<(String, String), (Vec<u8>, Vec<u8>)>;

fn collect_bytes(workdir: &Path) -> Result<SessionBytes, String> {
    let mut out = BTreeMap::new();
    for (id, tenant) in [
        ("tj-0", "acme"),
        ("tj-1", "acme"),
        ("tj-2", "globex"),
        ("tj-3", "globex"),
        ("tj-4", "initech"),
        ("tj-5", "initech"),
    ] {
        let dir = workdir.join("tenants").join(tenant).join(id);
        let trace = std::fs::read(dir.join("trace.jsonl"))
            .map_err(|e| format!("{tenant}/{id}/trace.jsonl: {e}"))?;
        let report = std::fs::read(dir.join("report.json"))
            .map_err(|e| format!("{tenant}/{id}/report.json: {e}"))?;
        if dir.join("quarantine.json").exists() {
            return Err(format!(
                "{tenant}/{id}: quarantine.json survived a clean run"
            ));
        }
        out.insert((tenant.to_string(), id.to_string()), (trace, report));
    }
    Ok(out)
}

fn fault_config(class: &str, rate: f64) -> StorageFaultConfig {
    match class {
        "eio" => StorageFaultConfig::eio(rate),
        "mixed" => StorageFaultConfig::mixed(rate),
        "torn" => StorageFaultConfig::torn(rate),
        "lies" => StorageFaultConfig::lies(rate),
        other => panic!("unknown fault class {other:?}"),
    }
}

#[derive(Debug, Default, Serialize)]
struct CellReport {
    class: String,
    rate: f64,
    threads: usize,
    generations: u64,
    /// Faulty-generation `Daemon::run` calls that returned `Err` (graceful
    /// daemon-level storage failure; everything persisted stays valid).
    run_errors: u64,
    /// Panics escaping `Daemon::run` — the abort class we certify against.
    daemon_panics: u64,
    quarantines: u64,
    io_retries: u64,
    io_faults_injected: u64,
    byte_identical: bool,
    mismatches: Vec<String>,
}

#[derive(Debug, Serialize)]
struct Certificate {
    schema: &'static str,
    fast: bool,
    jobs: usize,
    slice: usize,
    cells: Vec<CellReport>,
    all_byte_identical: bool,
    daemon_panics: u64,
    total_faults_injected: u64,
    total_quarantines: u64,
}

/// One `Daemon::open` + `submit` + `run` lifetime under the given VFS.
/// Returns (quarantined, retries, faults, run_err, panicked).
fn one_generation(
    workdir: &Path,
    vfs: Arc<dyn mwrepair_service::Vfs>,
    halt_after_rounds: Option<u64>,
    threads: usize,
) -> (u64, u64, u64, bool, bool) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut config = DaemonConfig::new(workdir);
        config.slice_iterations = SLICE;
        config.halt_after_rounds = halt_after_rounds;
        config.quiet = true;
        config.vfs = vfs;
        let mut daemon = match Daemon::open(config) {
            Ok(d) => d,
            Err(_) => return (0, 0, 0, true),
        };
        // Idempotent for byte-equal jobs, so resubmitting every
        // generation is safe and also repairs a lost spool.
        if daemon.submit_bytes(&batch()).is_err() {
            return (0, 0, 0, true);
        }
        match rayon::with_max_threads(threads, || daemon.run()) {
            Ok(summary) => (
                summary.sessions_quarantined as u64,
                summary.io_retries,
                summary.io_faults_injected,
                false,
            ),
            Err(_) => (0, 0, 0, true),
        }
    }));
    match result {
        Ok((q, r, f, e)) => (q, r, f, e, false),
        Err(_) => (0, 0, 0, false, true),
    }
}

fn run_cell(
    root: &Path,
    class: &str,
    rate: f64,
    threads: usize,
    cell_seed: u64,
    reference: &SessionBytes,
) -> CellReport {
    let workdir = root.join(format!("{class}-r{}-t{threads}", (rate * 1000.0) as u64));
    let mut cell = CellReport {
        class: class.into(),
        rate,
        threads,
        generations: GENERATIONS,
        byte_identical: true,
        ..CellReport::default()
    };
    for generation in 0..GENERATIONS {
        // Fresh adversary seed per generation: a crashed-and-remounted
        // disk does not replay the exact fault schedule, and re-seeding
        // prevents a deterministic re-quarantine livelock.
        let plan = StorageFaultPlan::new(
            cell_seed ^ generation.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            fault_config(class, rate),
        );
        // Early generations halt after a couple of rounds (cooperative
        // kill mid-run); later ones run until quarantine-or-done.
        let halt = if generation < 2 {
            Some(1 + generation)
        } else {
            None
        };
        let (q, r, f, run_err, panicked) = one_generation(
            &workdir,
            Arc::new(FaultVfs::rooted(plan, &workdir)),
            halt,
            threads,
        );
        cell.quarantines += q;
        cell.io_retries += r;
        cell.io_faults_injected += f;
        cell.run_errors += u64::from(run_err);
        cell.daemon_panics += u64::from(panicked);
    }
    // The disk heals: one clean-VFS resume must complete every session
    // (re-arming any quarantine) with byte-identical artifacts.
    let (q, _, _, run_err, panicked) =
        one_generation(&workdir, Arc::new(mwrepair_service::RealVfs), None, threads);
    cell.daemon_panics += u64::from(panicked);
    if run_err || panicked || q != 0 {
        cell.byte_identical = false;
        cell.mismatches.push(format!(
            "clean resume failed (err={run_err} panic={panicked} quarantined={q})"
        ));
        return cell;
    }
    match collect_bytes(&workdir) {
        Ok(bytes) => {
            for (key, (trace, report)) in reference {
                match bytes.get(key) {
                    Some((t, r)) if t == trace && r == report => {}
                    Some(_) => {
                        cell.byte_identical = false;
                        cell.mismatches
                            .push(format!("{}/{}: bytes differ from reference", key.0, key.1));
                    }
                    None => {
                        cell.byte_identical = false;
                        cell.mismatches
                            .push(format!("{}/{}: missing after clean resume", key.0, key.1));
                    }
                }
            }
        }
        Err(e) => {
            cell.byte_identical = false;
            cell.mismatches.push(e);
        }
    }
    cell
}

fn main() {
    let mut fast = false;
    let mut out = PathBuf::from("TORTURE.json");
    let mut root: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--work" => root = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    rayon::set_num_threads(8);

    let root = root.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("mwrd-torture-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&root);

    // Fault-free reference at 1 thread. The determinism contract makes
    // session bytes thread-count-invariant, so one reference serves every
    // cell (and any divergence at other thread counts is itself a
    // certification failure).
    let ref_dir = root.join("reference");
    let (q, _, f, run_err, panicked) =
        one_generation(&ref_dir, Arc::new(mwrepair_service::RealVfs), None, 1);
    assert!(
        !run_err && !panicked && q == 0 && f == 0,
        "fault-free reference run must complete cleanly"
    );
    let reference = collect_bytes(&ref_dir).expect("reference artifacts");
    eprintln!("torture: reference built ({} sessions)", reference.len());

    let (classes, rates, thread_counts): (Vec<&str>, Vec<f64>, Vec<usize>) = if fast {
        (vec!["eio", "mixed"], vec![0.15], vec![2])
    } else {
        (
            vec!["eio", "mixed", "torn", "lies"],
            vec![0.05, 0.25],
            vec![1, 4, 8],
        )
    };

    let mut cells = Vec::new();
    for (ci, class) in classes.iter().enumerate() {
        for (ri, &rate) in rates.iter().enumerate() {
            for &threads in &thread_counts {
                let cell_seed =
                    0x70A7_0A7Eu64 ^ ((ci as u64) << 24) ^ ((ri as u64) << 16) ^ (threads as u64);
                let cell = run_cell(&root, class, rate, threads, cell_seed, &reference);
                eprintln!(
                    "torture: {class} rate={rate} threads={threads}: faults={} retries={} \
                     quarantines={} panics={} byte_identical={}",
                    cell.io_faults_injected,
                    cell.io_retries,
                    cell.quarantines,
                    cell.daemon_panics,
                    cell.byte_identical,
                );
                cells.push(cell);
            }
        }
    }

    let certificate = Certificate {
        schema: "torture/v1",
        fast,
        jobs: reference.len(),
        slice: SLICE,
        all_byte_identical: cells.iter().all(|c| c.byte_identical),
        daemon_panics: cells.iter().map(|c| c.daemon_panics).sum(),
        total_faults_injected: cells.iter().map(|c| c.io_faults_injected).sum(),
        total_quarantines: cells.iter().map(|c| c.quarantines).sum(),
        cells,
    };
    let json = serde_json::to_string_pretty(&certificate).expect("certificate serializes");
    std::fs::write(&out, format!("{json}\n")).expect("write certificate");
    let _ = std::fs::remove_dir_all(&root);

    eprintln!(
        "torture: {} cells, {} faults injected, {} quarantines, certificate -> {}",
        certificate.cells.len(),
        certificate.total_faults_injected,
        certificate.total_quarantines,
        out.display()
    );
    if !certificate.all_byte_identical || certificate.daemon_panics != 0 {
        eprintln!("torture: CERTIFICATION FAILED");
        for cell in &certificate.cells {
            for m in &cell.mismatches {
                eprintln!(
                    "  {} rate={} threads={}: {m}",
                    cell.class, cell.rate, cell.threads
                );
            }
        }
        std::process::exit(1);
    }
    eprintln!("torture: certification PASSED");
}

fn usage() -> ! {
    eprintln!("usage: torture [--fast] [--out FILE] [--work DIR]");
    std::process::exit(2);
}
