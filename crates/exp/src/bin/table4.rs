//! Table IV — CPU-iteration cost: update cycles × CPUs occupied per cycle.
//!
//! "While Distributed often requires the fewest iterations to converge, it
//! uses a large number of CPUs. Slate looked prohibitively expensive when
//! considering only iteration cycles, but when viewed by CPU-iteration
//! cost, it is sometimes more cost-efficient than Distributed."

use mwu_core::Variant;
use mwu_datasets::full_catalog;
use mwu_experiments::{render_table, run_grid_observed, write_results_csv, CommonArgs, GridConfig};

fn main() {
    let args = CommonArgs::from_env();
    let datasets: Vec<_> = full_catalog()
        .into_iter()
        .filter(|d| args.selects(&d.name))
        .collect();
    let config = GridConfig {
        replicates: args.replicates,
        max_iterations: 10_000,
        seed: args.seed,
    };
    if !args.quiet {
        eprintln!(
            "Table IV grid: {} datasets x 3 algorithms x {} replicates",
            datasets.len(),
            config.replicates
        );
    }
    let mut observer = args.observer();
    let cells = run_grid_observed(&datasets, &config, &mut observer);
    if let Some(sink) = observer.0.as_mut() {
        sink.flush().expect("flush trace");
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for d in &datasets {
        let mut row = vec![d.name.clone(), d.size().to_string()];
        for &alg in &[Variant::Standard, Variant::Distributed, Variant::Slate] {
            let c = cells
                .iter()
                .find(|c| c.dataset == d.name && c.algorithm == alg)
                .expect("cell present");
            let text = if c.intractable {
                "—".to_string()
            } else {
                format!("{:.0}", c.cpu_iterations.mean)
            };
            row.push(text);
            csv.push(vec![
                d.name.clone(),
                d.size().to_string(),
                alg.to_string(),
                if c.intractable {
                    "intractable".into()
                } else {
                    format!("{:.0}", c.cpu_iterations.mean)
                },
                format!("{:.0}", c.cpu_iterations.std_dev),
            ]);
        }
        rows.push(row);
    }

    println!(
        "Table IV — cost in CPU-iterations (mean over {} replicates)\n",
        config.replicates
    );
    println!(
        "{}",
        render_table(
            &["scenario", "size", "Standard", "Distributed", "Slate"],
            &rows
        )
    );
    println!("reading: Distributed's low iteration counts hide an explosive CPU bill");
    println!("(population ~ k^(3/2) per iteration); Slate's high iteration counts");
    println!("amortize over a small slate; Standard sits between.");

    let path = write_results_csv(
        &args.out_dir,
        "table4.csv",
        &[
            "scenario",
            "size",
            "algorithm",
            "cpu_iterations_mean",
            "cpu_iterations_std",
        ],
        &csv,
    )
    .expect("write table4.csv");
    if !args.quiet {
        eprintln!("wrote {}", path.display());
    }
    args.write_profile();
}
