//! Export the full §IV-A dataset catalog as CSV (one file per dataset plus
//! a summary), so the exact instances behind Tables II–IV can be inspected
//! or replotted without rerunning any generator.

use mwu_datasets::{full_catalog, io};
use mwu_experiments::{render_table, write_results_csv, CommonArgs};
use std::fs;

fn main() {
    let args = CommonArgs::from_env();
    let dir = args.out_dir.join("datasets");
    fs::create_dir_all(&dir).expect("create datasets dir");

    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for d in full_catalog() {
        if !args.selects(&d.name) {
            continue;
        }
        let path = dir.join(format!("{}.csv", d.name));
        fs::write(&path, io::dataset_to_csv(&d)).expect("write dataset csv");
        let mean = d.values.iter().sum::<f64>() / d.values.len() as f64;
        rows.push(vec![
            d.name.clone(),
            d.family.label().to_string(),
            d.size().to_string(),
            format!("{:.4}", d.best_value()),
            (d.best_arm() + 1).to_string(),
            format!("{:.4}", mean),
        ]);
        summary.push(vec![
            d.name.clone(),
            d.family.label().to_string(),
            d.size().to_string(),
            format!("{:.6}", d.best_value()),
            (d.best_arm() + 1).to_string(),
            format!("{:.6}", mean),
        ]);
    }
    println!("exported {} datasets to {}\n", rows.len(), dir.display());
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "family",
                "size",
                "best value",
                "best arm (1-based)",
                "mean value"
            ],
            &rows
        )
    );
    let path = write_results_csv(
        &args.out_dir,
        "datasets_summary.csv",
        &[
            "dataset",
            "family",
            "size",
            "best_value",
            "best_arm",
            "mean_value",
        ],
        &summary,
    )
    .expect("write summary");
    eprintln!("wrote {}", path.display());
    args.write_profile();
}
