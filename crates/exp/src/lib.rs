//! # mwu-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! paper. One binary per artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — asymptotic complexity, evaluated at concrete (k, n, ε, δ) |
//! | `fig4a` | Fig. 4a — fraction passing vs. #applied safe mutations (plus untested-mutation comparison) |
//! | `fig4b` | Fig. 4b — repair density vs. #combined mutations |
//! | `table2` | Table II — update cycles until convergence (mean ± std over replicates) |
//! | `table3` | Table III — accuracy (% of best-in-hindsight value) |
//! | `table4` | Table IV — CPU-iteration cost |
//! | `cost_model` | §IV-E — weighted decision model and recommendations |
//! | `congestion` | §II-C — Distributed congestion vs. balls-into-bins theory |
//! | `sync_stall` | §III-C — synchronization-stall motivation for precomputation |
//! | `repair_comparison` | §IV-G — MWRepair vs. GenProg / RSRepair / AE |
//! | `chaos` | robustness — convergence degradation under injected faults (docs/FAULTS.md) |
//! | `mwrepair_run` | robustness — crash-safe MWRepair with `--checkpoint` / `--resume` / `--halt-after` |
//! | `mwrepaird` | service — multi-tenant repair daemon over a JSONL job spool (docs/SERVICE.md) |
//! | `loadgen` | service — thousand-session load replay at 1/2/4/8 threads, writes `BENCH_service.json` |
//!
//! Every binary prints the paper-shaped table to stdout and writes CSV into
//! `results/`. Common flags: `--replicates N` (default 100, the paper's
//! count), `--seed S`, `--out DIR`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod grid;
pub mod meta;
pub mod social;
pub mod tables;

pub use cli::{install_profile_hooks, CommonArgs};
pub use grid::{
    replicate_seed, run_cell, run_cell_observed, run_grid, run_grid_observed, CellResult,
    GridConfig,
};
pub use meta::BenchMeta;
pub use tables::{render_table, write_results_csv};
