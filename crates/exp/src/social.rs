//! Distributed MWU as *actual* message-passing agents on the `simnet`
//! runtime — a cross-validation harness.
//!
//! [`mwu_core::DistributedMwu`] simulates the Fig. 3 protocol in a tight
//! loop with analytic congestion accounting. This module re-expresses the
//! same protocol as [`simnet::Network`] agents whose neighbor observations
//! are real messages, so the two implementations can be checked against
//! each other: the population dynamics must agree statistically, and the
//! measured per-round congestion must match the balls-into-bins profile
//! the tight loop reports.

use bytes::Bytes;
use mwu_core::rng::mix;
use parking_lot::Mutex;
use rand::Rng;
use simnet::{Context, NetStats, Network};
use std::sync::Arc;

/// Parameters of one simnet-hosted Distributed MWU run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialRunConfig {
    /// Number of agents.
    pub population: usize,
    /// Exploration probability μ.
    pub mu: f64,
    /// Adopt-on-failure probability α.
    pub alpha: f64,
    /// Adopt-on-success probability β.
    pub beta: f64,
    /// Rounds to run.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of a simnet-hosted run.
#[derive(Debug, Clone, PartialEq)]
pub struct SocialRunReport {
    /// Final per-option population counts.
    pub counts: Vec<usize>,
    /// Leader option and its population share.
    pub leader: usize,
    /// Leader share at the end.
    pub leader_share: f64,
    /// Network-measured communication statistics.
    pub net: NetStats,
}

/// Run the Fig. 3 protocol over `values` (true option qualities) as simnet
/// agents. Observation traffic is real messages; adoption uses each
/// agent's deterministic per-round RNG.
pub fn run_distributed_on_simnet(values: &[f64], config: &SocialRunConfig) -> SocialRunReport {
    assert!(!values.is_empty());
    assert!(config.population >= values.len());
    let k = values.len();
    let choices: Arc<Mutex<Vec<usize>>> =
        Arc::new(Mutex::new((0..config.population).map(|j| j % k).collect()));

    let mut net = Network::new(config.population, mix(&[config.seed, 0x0050_C1A1]));
    for _ in 0..config.population {
        let choices = Arc::clone(&choices);
        let values = values.to_vec();
        let cfg = *config;
        net.add_agent(move |ctx: &mut Context<'_>| {
            let me = ctx.id();
            let n = ctx.n_agents();
            let observed = if ctx.rng().gen::<f64>() < cfg.mu {
                ctx.rng().gen_range(0..values.len())
            } else {
                let mut nb = ctx.rng().gen_range(0..n - 1);
                if nb >= me {
                    nb += 1;
                }
                // The observation is one message of traffic to the
                // observed neighbor (what congestion measures).
                ctx.send(nb, Bytes::from_static(b"obs"));
                choices.lock()[nb]
            };
            let success = ctx.rng().gen::<f64>() < values[observed];
            let adopt_p = if success { cfg.beta } else { cfg.alpha };
            if ctx.rng().gen::<f64>() < adopt_p {
                choices.lock()[me] = observed;
            }
        });
    }
    let net_stats = net.run(config.rounds);

    let final_choices = choices.lock().clone();
    let mut counts = vec![0usize; k];
    for c in final_choices {
        counts[c] += 1;
    }
    let (leader, &count) = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("non-empty counts");
    SocialRunReport {
        leader,
        leader_share: count as f64 / config.population as f64,
        counts,
        net: net_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump_values(k: usize, best: usize) -> Vec<f64> {
        (0..k).map(|i| if i == best { 0.9 } else { 0.1 }).collect()
    }

    fn config(population: usize, rounds: usize) -> SocialRunConfig {
        SocialRunConfig {
            population,
            mu: 0.05,
            alpha: 0.02,
            beta: 0.90,
            rounds,
            seed: 42,
        }
    }

    #[test]
    fn population_converges_to_best_option() {
        let values = bump_values(10, 4);
        let report = run_distributed_on_simnet(&values, &config(300, 80));
        assert_eq!(report.leader, 4);
        assert!(
            report.leader_share >= 0.30,
            "share {} below the paper's threshold",
            report.leader_share
        );
        let total: usize = report.counts.iter().sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn congestion_matches_balls_into_bins_like_the_tight_loop() {
        let values = bump_values(8, 2);
        let report = run_distributed_on_simnet(&values, &config(500, 40));
        let theory = simnet::expected_max_load(500);
        assert!(
            report.net.mean_congestion() < 4.0 * theory,
            "mean congestion {} vs theory {theory}",
            report.net.mean_congestion()
        );
        // ~95 % of agents observe a neighbor each round.
        let expected_msgs = (0.95 * 500.0 * 40.0) as u64;
        assert!(
            report.net.messages.abs_diff(expected_msgs) < expected_msgs / 10,
            "messages {} vs expected ≈{expected_msgs}",
            report.net.messages
        );
    }

    #[test]
    fn agrees_with_tight_loop_implementation() {
        // Same protocol, two implementations: both must converge to the
        // same leader with comparable shares on a clear instance.
        use mwu_core::prelude::*;
        let values = bump_values(12, 7);

        let report = run_distributed_on_simnet(&values, &config(432, 100));

        let mut alg = DistributedMwu::try_new(
            12,
            DistributedConfig {
                pop_size: Some(432),
                ..DistributedConfig::default()
            },
        )
        .unwrap();
        let mut bandit = ValueBandit::bernoulli(values);
        let out = run_to_convergence(
            &mut alg,
            &mut bandit,
            &RunConfig::seeded(9).with_max_iterations(100),
        );

        assert_eq!(
            report.leader, out.leader,
            "implementations disagree on the leader"
        );
        // Congestion profiles agree within a small factor.
        let tight = out.comm.mean_congestion();
        let message_based = report.net.mean_congestion();
        assert!(
            (tight - message_based).abs() < 4.0,
            "congestion tight-loop {tight} vs simnet {message_based}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let values = bump_values(6, 1);
        let a = run_distributed_on_simnet(&values, &config(120, 30));
        let b = run_distributed_on_simnet(&values, &config(120, 30));
        assert_eq!(a, b);
    }
}
