//! ASCII table rendering and CSV output for the experiment binaries.

use std::fs;
use std::io;
use std::path::Path;

/// Render an aligned ASCII table: header row plus data rows. Columns are
/// padded to the widest cell; numeric-looking cells are right-aligned.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n_cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let numericish = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_digit() || "().-—≥% ".contains(c))
    };

    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    // Header.
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!(" {:<w$} ", h, w = widths[i]));
        if i + 1 < n_cols {
            out.push('|');
        }
    }
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if numericish(cell) {
                out.push_str(&format!(" {:>w$} ", cell, w = widths[i]));
            } else {
                out.push_str(&format!(" {:<w$} ", cell, w = widths[i]));
            }
            if i + 1 < n_cols {
                out.push('|');
            }
        }
        out.push('\n');
    }
    out
}

/// Write a CSV file into `out_dir`, creating the directory if needed.
pub fn write_results_csv(
    out_dir: &Path,
    filename: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(out_dir)?;
    let path = out_dir.join(filename);
    let mut buf = Vec::new();
    mwu_datasets::io::write_csv(&mut buf, header, rows)?;
    fs::write(&path, buf)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1.0 (0.1)".into()],
                vec!["b".into(), "22.5 (3.0)".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same display width.
        let w = lines[0].len();
        assert!(lines.iter().skip(2).all(|l| l.len() == w), "{t}");
        // Numeric cells right-aligned.
        assert!(lines[2].ends_with(" 1.0 (0.1) "));
    }

    #[test]
    #[should_panic]
    fn mismatched_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_written_to_disk() {
        let dir = std::env::temp_dir().join("mwu_exp_test_csv");
        let p = write_results_csv(&dir, "t.csv", &["x"], &[vec!["1".into()], vec!["2".into()]])
            .unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content, "x\n1\n2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
