//! Minimal hand-rolled CLI argument parsing shared by the experiment
//! binaries (no external CLI dependency).

use std::path::PathBuf;

/// Flags every experiment binary accepts.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Replicates per cell (`--replicates N`, paper default 100).
    pub replicates: usize,
    /// Base seed (`--seed S`).
    pub seed: u64,
    /// Output directory for CSVs (`--out DIR`, default `results/`).
    pub out_dir: PathBuf,
    /// `--fast`: shrink replicates to 25 for a quick single-core pass.
    pub fast: bool,
    /// Restrict to datasets whose name contains this substring
    /// (`--only SUBSTR`).
    pub only: Option<String>,
    /// Write a JSONL run trace to this path (`--trace PATH`). Every grid
    /// replicate's trace header carries its derived seed, so any replicate
    /// can be re-run standalone from the trace alone.
    pub trace: Option<PathBuf>,
    /// Suppress stderr progress narration (`--quiet`).
    pub quiet: bool,
    /// Write crash-safe run checkpoints to this path (`--checkpoint PATH`).
    /// Binaries with a resumable driver persist state there atomically;
    /// see `docs/FAULTS.md` for the file format.
    pub checkpoint: Option<PathBuf>,
    /// Resume a killed run from this checkpoint file (`--resume PATH`).
    pub resume: Option<PathBuf>,
    /// Probes between checkpoint writes (`--checkpoint-every N`,
    /// default 512).
    pub checkpoint_every: u64,
    /// Thread-pool size (`--threads N`). `None` defers to
    /// `RAYON_NUM_THREADS`, then the hardware parallelism. Output is
    /// byte-identical at every setting; see `docs/PARALLELISM.md`.
    pub threads: Option<usize>,
    /// Enable the phase profiler and write a `profile/v1` JSON report to
    /// this path at exit (`--profile PATH`). Profiling is observational
    /// only: every CSV/trace byte is identical with it on or off; see
    /// `docs/TELEMETRY.md`.
    pub profile: Option<PathBuf>,
    /// Committed baseline artifact to gate against (`--check PATH`).
    /// Bench binaries that honor it compare fresh numbers with the
    /// baseline and exit non-zero on regression; the baseline is read
    /// before any output is written, so `--out` may point at the
    /// directory holding the baseline itself.
    pub check: Option<PathBuf>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            replicates: 100,
            seed: 0xEED5,
            out_dir: PathBuf::from("results"),
            fast: false,
            only: None,
            trace: None,
            quiet: false,
            checkpoint: None,
            resume: None,
            checkpoint_every: 512,
            threads: None,
            profile: None,
            check: None,
        }
    }
}

impl CommonArgs {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// Unknown flags produce an error string listing valid flags, so every
    /// binary fails loudly rather than silently ignoring a typo.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--replicates" => {
                    let v = it.next().ok_or("--replicates needs a value")?;
                    out.replicates = v.parse().map_err(|e| format!("--replicates {v:?}: {e}"))?;
                    if out.replicates == 0 {
                        return Err("--replicates must be positive".into());
                    }
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|e| format!("--seed {v:?}: {e}"))?;
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a value")?;
                    out.out_dir = PathBuf::from(v);
                }
                "--fast" => {
                    out.fast = true;
                }
                "--only" => {
                    let v = it.next().ok_or("--only needs a value")?;
                    out.only = Some(v);
                }
                "--trace" => {
                    let v = it.next().ok_or("--trace needs a path")?;
                    out.trace = Some(PathBuf::from(v));
                }
                "--quiet" => {
                    out.quiet = true;
                }
                "--checkpoint" => {
                    let v = it.next().ok_or("--checkpoint needs a path")?;
                    out.checkpoint = Some(PathBuf::from(v));
                }
                "--resume" => {
                    let v = it.next().ok_or("--resume needs a path")?;
                    out.resume = Some(PathBuf::from(v));
                }
                "--checkpoint-every" => {
                    let v = it.next().ok_or("--checkpoint-every needs a value")?;
                    out.checkpoint_every = v
                        .parse()
                        .map_err(|e| format!("--checkpoint-every {v:?}: {e}"))?;
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    let n: usize = v.parse().map_err(|e| format!("--threads {v:?}: {e}"))?;
                    if n == 0 {
                        return Err("--threads must be positive".into());
                    }
                    out.threads = Some(n);
                }
                "--profile" => {
                    let v = it.next().ok_or("--profile needs a path")?;
                    out.profile = Some(PathBuf::from(v));
                }
                "--check" => {
                    let v = it.next().ok_or("--check needs a path")?;
                    out.check = Some(PathBuf::from(v));
                }
                "--help" | "-h" => {
                    return Err("flags: --replicates N | --seed S | --out DIR | --fast | \
                         --only SUBSTR | --trace PATH | --quiet | --checkpoint PATH | \
                         --resume PATH | --checkpoint-every N | --threads N | \
                         --profile PATH | --check PATH"
                        .into())
                }
                other => return Err(format!("unknown flag {other:?} (try --help)")),
            }
        }
        if out.fast {
            out.replicates = out.replicates.min(25);
        }
        Ok(out)
    }

    /// Parse from the process environment, exiting with a message on error.
    /// Applies `--threads` to the global pool before returning.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => {
                a.apply_parallelism();
                a.apply_profiling();
                a
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Arm the phase profiler when `--profile` was given: enable
    /// `mwu_core::prof` and bridge the pool/simnet fn-pointer hooks into
    /// [`mwu_core::prof::record_external`]. Without the flag this is a
    /// no-op and every instrumented site stays one relaxed atomic load.
    pub fn apply_profiling(&self) {
        if self.profile.is_none() {
            return;
        }
        install_profile_hooks();
        mwu_core::prof::set_enabled(true);
    }

    /// Write the merged `profile/v1` report to the `--profile` path, if
    /// one was requested. Call once, after the run's last parallel work.
    pub fn write_profile(&self) {
        let Some(path) = &self.profile else { return };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create profile directory");
            }
        }
        let report = mwu_core::prof::snapshot();
        std::fs::write(path, report.to_json() + "\n")
            .unwrap_or_else(|e| panic!("cannot write profile {}: {e}", path.display()));
        if !self.quiet {
            eprintln!("profile report written to {}", path.display());
        }
    }

    /// Push `--threads` into the global pool. Returns `false` (with a
    /// warning on stderr) when the pool was already initialized at a
    /// different size — thread count must be set before any parallel work.
    pub fn apply_parallelism(&self) -> bool {
        match self.threads {
            Some(n) => {
                let applied = rayon::set_num_threads(n);
                if !applied {
                    eprintln!(
                        "warning: --threads {n} ignored; pool already running \
                         with {} threads",
                        rayon::current_num_threads()
                    );
                }
                applied
            }
            None => true,
        }
    }

    /// Should dataset `name` run under the `--only` filter?
    pub fn selects(&self, name: &str) -> bool {
        match &self.only {
            Some(s) => name.contains(s.as_str()),
            None => true,
        }
    }

    /// Build the observer this invocation asked for — a JSONL trace sink
    /// when `--trace` was given, teed with progress narration unless
    /// `--quiet`. Binaries drive their grid through the returned observer.
    pub fn observer(
        &self,
    ) -> mwu_core::trace::Tee<
        Option<mwu_core::JsonlSink<std::io::BufWriter<std::fs::File>>>,
        mwu_core::ProgressSink,
    > {
        let jsonl = self.trace.as_deref().map(|p| {
            if let Some(parent) = p.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).expect("create trace directory");
                }
            }
            mwu_core::JsonlSink::create(p)
                .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", p.display()))
        });
        mwu_core::trace::Tee(jsonl, mwu_core::ProgressSink::quiet(self.quiet))
    }
}

/// Bridge the pool and simnet fn-pointer profiling hooks into
/// [`mwu_core::prof::record_external`]. Installation is first-wins and
/// does **not** enable the profiler by itself — every instrumented site
/// stays one relaxed atomic load until `prof::set_enabled(true)`. Public
/// so profile-shape tests can install the bridge without a `--profile`
/// flag in play.
pub fn install_profile_hooks() {
    rayon::set_profile_hook(mwu_core::prof::enabled, bridge_pool_event);
    simnet::set_profile_hook(mwu_core::prof::enabled, bridge_sim_event);
}

/// Map a pool event onto its profiler phase. Runs on the observing
/// worker thread, so durations land in that thread's accumulator.
fn bridge_pool_event(event: rayon::PoolEvent, duration_ns: u64) {
    use mwu_core::prof::Phase;
    let phase = match event {
        rayon::PoolEvent::QueueWait => Phase::PoolQueueWait,
        rayon::PoolEvent::Park => Phase::PoolPark,
        rayon::PoolEvent::Chunk => Phase::PoolChunk,
        rayon::PoolEvent::Submit => Phase::PoolSubmit,
    };
    mwu_core::prof::record_external(phase, duration_ns);
}

/// Map a simnet event onto its profiler phase.
fn bridge_sim_event(event: simnet::SimEvent, duration_ns: u64) {
    let phase = match event {
        simnet::SimEvent::RoundBarrier => mwu_core::prof::Phase::SimRoundBarrier,
    };
    mwu_core::prof::record_external(phase, duration_ns);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<CommonArgs, String> {
        CommonArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = p(&[]).unwrap();
        assert_eq!(a.replicates, 100);
        assert!(a.selects("anything"));
    }

    #[test]
    fn parses_all_flags() {
        let a = p(&[
            "--replicates",
            "10",
            "--seed",
            "7",
            "--out",
            "/tmp/r",
            "--only",
            "random",
        ])
        .unwrap();
        assert_eq!(a.replicates, 10);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/r"));
        assert!(a.selects("random64"));
        assert!(!a.selects("Chart26"));
    }

    #[test]
    fn fast_caps_replicates() {
        let a = p(&["--fast"]).unwrap();
        assert_eq!(a.replicates, 25);
        let b = p(&["--replicates", "10", "--fast"]).unwrap();
        assert_eq!(b.replicates, 10);
    }

    #[test]
    fn parses_checkpoint_flags() {
        let a = p(&["--checkpoint", "/tmp/run.ckpt", "--checkpoint-every", "64"]).unwrap();
        assert_eq!(a.checkpoint, Some(PathBuf::from("/tmp/run.ckpt")));
        assert_eq!(a.checkpoint_every, 64);
        assert_eq!(a.resume, None);
        let b = p(&["--resume", "/tmp/run.ckpt"]).unwrap();
        assert_eq!(b.resume, Some(PathBuf::from("/tmp/run.ckpt")));
        assert!(p(&["--checkpoint-every", "many"]).is_err());
        assert!(p(&["--resume"]).is_err());
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(p(&["--frobnicate"]).is_err());
        assert!(p(&["--replicates"]).is_err());
        assert!(p(&["--replicates", "zero"]).is_err());
        assert!(p(&["--replicates", "0"]).is_err());
        assert!(p(&["--help"]).is_err());
    }

    #[test]
    fn parses_profile() {
        assert_eq!(p(&[]).unwrap().profile, None);
        let a = p(&["--profile", "/tmp/prof.json"]).unwrap();
        assert_eq!(a.profile, Some(PathBuf::from("/tmp/prof.json")));
        assert!(p(&["--profile"]).is_err());
        assert!(p(&["--help"]).unwrap_err().contains("--profile"));
    }

    #[test]
    fn parses_check() {
        assert_eq!(p(&[]).unwrap().check, None);
        let a = p(&["--check", "BENCH_grid.json"]).unwrap();
        assert_eq!(a.check, Some(PathBuf::from("BENCH_grid.json")));
        assert!(p(&["--check"]).is_err());
        assert!(p(&["--help"]).unwrap_err().contains("--check"));
    }

    #[test]
    fn parses_threads() {
        assert_eq!(p(&[]).unwrap().threads, None);
        assert_eq!(p(&["--threads", "4"]).unwrap().threads, Some(4));
        assert!(p(&["--threads"]).is_err());
        assert!(p(&["--threads", "0"]).is_err());
        assert!(p(&["--threads", "lots"]).is_err());
        assert!(p(&["--help"]).unwrap_err().contains("--threads"));
    }
}
