//! Shared provenance block for benchmark artifacts.
//!
//! `BENCH_round.json`, `BENCH_grid.json`, `BENCH_service.json`, and the
//! profile reports all embed one [`BenchMeta`] so a perf trajectory can
//! tell at a glance *what* produced each number: how many pool threads
//! were available, whether the binary was a release build (debug numbers
//! are meaningless for regression gating), and which kernel revision ran.
//! The block carries its own schema tag so the shape can evolve without
//! revving every artifact schema in lockstep.

use serde::{Deserialize, Serialize};

/// Schema tag of the [`BenchMeta`] block.
pub const BENCH_META_SCHEMA: &str = "bench-meta/v1";

/// Provenance every benchmark artifact shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMeta {
    /// Schema tag ([`BENCH_META_SCHEMA`]).
    pub schema: String,
    /// Threads in the global pool when the benchmark ran (sweeps may
    /// restrict below this with `with_max_threads`).
    pub threads: usize,
    /// `"release"` or `"debug"`. Regression gates should refuse to
    /// compare across differing build profiles.
    pub build_profile: String,
    /// `mwu-core` kernel version ([`mwu_core::KERNEL_VERSION`]) the
    /// numbers were measured against.
    pub kernel_version: String,
}

impl BenchMeta {
    /// Capture the current process's provenance.
    pub fn capture() -> Self {
        BenchMeta {
            schema: BENCH_META_SCHEMA.into(),
            threads: rayon::current_num_threads(),
            build_profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
            .into(),
            kernel_version: mwu_core::KERNEL_VERSION.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_stamped_and_round_trips() {
        let meta = BenchMeta::capture();
        assert_eq!(meta.schema, BENCH_META_SCHEMA);
        assert!(meta.threads >= 1);
        assert!(meta.build_profile == "release" || meta.build_profile == "debug");
        assert_eq!(meta.kernel_version, mwu_core::KERNEL_VERSION);
        let json = serde_json::to_string(&meta).unwrap();
        let back: BenchMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn meta_is_optional_in_old_artifacts() {
        // Committed baselines predate the meta block; readers declare it
        // as `Option<BenchMeta>` and must tolerate its absence.
        #[derive(Deserialize)]
        struct Artifact {
            schema: String,
            meta: Option<BenchMeta>,
        }
        let old: Artifact = serde_json::from_str(r#"{"schema":"bench_round/v1"}"#).unwrap();
        assert_eq!(old.schema, "bench_round/v1");
        assert!(old.meta.is_none());
    }
}
