//! Patch minimization by delta debugging (ddmin).
//!
//! MWRepair's early-termination patch is a composition of up to hundreds of
//! safe mutations, of which typically only one or two matter: "in practice
//! most multi-edit repairs are redundant and can be minimized to one or two
//! single-statement edits" (paper §V-B, citing the GenProg experience).
//! This module reduces a repairing composition to a **1-minimal** subset —
//! removing any single remaining mutation breaks the repair — using
//! Zeller's ddmin algorithm. Each candidate subset costs one test-suite
//! run, charged to the [`CostLedger`] like any other probe.

use apr_sim::{BugScenario, CostLedger, Mutation};
use serde::{Deserialize, Serialize};

/// Result of minimizing a repairing patch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinimizedPatch {
    /// The 1-minimal repairing subset.
    pub mutations: Vec<Mutation>,
    /// Size of the patch before minimization.
    pub original_size: usize,
    /// Fitness evaluations spent minimizing.
    pub evals_used: u64,
}

impl MinimizedPatch {
    /// Reduction ratio: minimized size / original size.
    pub fn reduction(&self) -> f64 {
        if self.original_size == 0 {
            1.0
        } else {
            self.mutations.len() as f64 / self.original_size as f64
        }
    }
}

/// Minimize `patch` to a 1-minimal repairing subset of its mutations.
///
/// # Panics
/// Panics if `patch` does not actually repair the scenario (minimization of
/// a non-repair is meaningless; verify first).
pub fn minimize_patch(
    scenario: &BugScenario,
    patch: &[Mutation],
    ledger: Option<&CostLedger>,
) -> MinimizedPatch {
    let mut evals: u64 = 0;
    let test = |muts: &[Mutation], evals: &mut u64| -> bool {
        *evals += 1;
        scenario.evaluate(muts, ledger).repaired
    };

    assert!(
        test(patch, &mut evals),
        "minimize_patch requires a repairing patch"
    );

    let original_size = patch.len();
    let mut current: Vec<Mutation> = patch.to_vec();
    let mut n = 2usize; // granularity

    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;

        // Try each chunk alone, then each complement.
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let subset: Vec<Mutation> = current[start..end].to_vec();
            if subset.len() < current.len() && test(&subset, &mut evals) {
                current = subset;
                n = 2;
                reduced = true;
                break;
            }
            let complement: Vec<Mutation> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .copied()
                .collect();
            if !complement.is_empty()
                && complement.len() < current.len()
                && test(&complement, &mut evals)
            {
                current = complement;
                n = (n - 1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }

        if !reduced {
            if n >= current.len() {
                break; // 1-minimal at this granularity
            }
            n = (2 * n).min(current.len());
        }
    }

    MinimizedPatch {
        mutations: current,
        original_size,
        evals_used: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_sim::ScenarioKind;
    use mwu_core::rng::rng_for;

    /// Build a scenario plus a repairing patch of `extra` redundant safe
    /// mutations around one repairer.
    fn patch_scenario(extra: usize) -> (BugScenario, Vec<Mutation>) {
        let s = BugScenario::custom(
            "minimize-test",
            ScenarioKind::Synthetic,
            60,
            20,
            400,
            15,
            0.03,
            77,
        )
        .with_pool_size(400); // enough pool mass to contain repairers
        let pool = s.build_pool(5, None);
        // Find a repairer in the pool.
        let repairer = pool
            .mutations()
            .iter()
            .copied()
            .find(|m| m.is_repair(s.world.world_seed, s.world.defect_site, s.world.repair_rate))
            .expect("pool contains a repairer");
        // Pad with safe non-repairers that do not conflict as a whole.
        let mut rng = rng_for(9, &[1]);
        let mut patch;
        loop {
            patch = vec![repairer];
            for m in pool.sample_composition(extra, &mut rng) {
                if m != repairer && patch.len() < extra + 1 {
                    patch.push(m);
                }
            }
            if s.evaluate(&patch, None).repaired {
                break;
            }
        }
        (s, patch)
    }

    #[test]
    fn minimizes_to_a_single_repairer() {
        let (s, patch) = patch_scenario(15);
        let min = minimize_patch(&s, &patch, None);
        assert!(
            min.mutations.len() <= 2,
            "minimized to {}",
            min.mutations.len()
        );
        assert!(s.evaluate(&min.mutations, None).repaired);
        assert!(min.reduction() < 0.2);
        assert_eq!(min.original_size, patch.len());
        assert!(min.evals_used > 0);
    }

    #[test]
    fn minimal_result_is_1_minimal() {
        let (s, patch) = patch_scenario(10);
        let min = minimize_patch(&s, &patch, None);
        // Removing any single mutation breaks the repair.
        for skip in 0..min.mutations.len() {
            let reduced: Vec<Mutation> = min
                .mutations
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, m)| *m)
                .collect();
            if !reduced.is_empty() {
                assert!(
                    !s.evaluate(&reduced, None).repaired,
                    "dropping index {skip} still repairs — not 1-minimal"
                );
            }
        }
    }

    #[test]
    fn single_mutation_patch_is_already_minimal() {
        let (s, patch) = patch_scenario(0);
        assert_eq!(patch.len(), 1);
        let min = minimize_patch(&s, &patch, None);
        assert_eq!(min.mutations, patch);
        assert_eq!(min.reduction(), 1.0);
    }

    #[test]
    fn ledger_charged_for_minimization_probes() {
        let (s, patch) = patch_scenario(8);
        let ledger = CostLedger::new();
        let min = minimize_patch(&s, &patch, Some(&ledger));
        assert_eq!(ledger.fitness_evals(), min.evals_used);
    }

    #[test]
    #[should_panic]
    fn non_repairing_patch_rejected() {
        let (s, _) = patch_scenario(2);
        let _ = minimize_patch(&s, &[], None);
    }
}
