//! Result types for MWRepair runs.

use apr_sim::ledger::CostSnapshot;
use apr_sim::{apply_mutations, BugScenario, Mutant, Mutation};
use serde::{Deserialize, Serialize};

/// A repair found by the online phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// The mutations whose composition repairs the defect.
    pub mutations: Vec<Mutation>,
    /// The arm played (number of mutations composed).
    pub arm: usize,
    /// Iteration (update cycle) at which the repair was found.
    pub iteration: usize,
    /// Index of the parallel agent whose probe found it.
    pub agent: usize,
}

impl RepairReport {
    /// Materialize the patched program text (the deliverable a human
    /// reviews): applies the composition's structural edits to the
    /// scenario's original program.
    pub fn materialize(&self, scenario: &BugScenario) -> Mutant {
        apply_mutations(&scenario.program, &self.mutations)
    }
}

/// Everything measured about one MWRepair run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairOutcome {
    /// The repair, if one was found within the budget (Fig. 6 returns
    /// `null` otherwise).
    pub repair: Option<RepairReport>,
    /// Update cycles executed.
    pub iterations: usize,
    /// Probes (fitness evaluations) issued by the online phase.
    pub probes: u64,
    /// Simulated cost snapshot (includes precompute if the same ledger was
    /// used for both phases).
    pub cost: CostSnapshot,
    /// The arm the bandit favored when the run ended — should approach the
    /// scenario's repair-density optimum.
    pub leader_arm: usize,
    /// Did the underlying MWU algorithm meet its convergence criterion
    /// before termination?
    pub mwu_converged: bool,
}

impl RepairOutcome {
    /// Convenience: was the defect repaired?
    pub fn is_repaired(&self) -> bool {
        self.repair.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_flags() {
        let o = RepairOutcome {
            repair: None,
            iterations: 3,
            probes: 10,
            cost: CostSnapshot {
                fitness_evals: 10,
                simulated_ms: 100,
                critical_path_ms: 10,
            },
            leader_arm: 5,
            mwu_converged: false,
        };
        assert!(!o.is_repaired());
    }
}
