//! Crash-safe checkpoint / resume for the MWRepair online phase.
//!
//! A [`Checkpoint`] captures everything the driver loop in
//! [`crate::driver::repair_resumable`] needs to continue a killed run
//! *byte-identically*: the full MWU algorithm state (weights / population
//! counts / convergence tracker, via its serde impl), the master RNG state,
//! the absolute iteration and probe counters, and the cost-ledger snapshot.
//! Because per-agent probe RNGs are keyed by `(seed, iteration, agent)` and
//! never carried across iterations, the master RNG state plus the iteration
//! number fully determine every random draw the resumed run will make.
//!
//! ## File format
//!
//! One JSON object (see [`Checkpoint`] for fields), written atomically:
//! the bytes go to `<path>.tmp` which is fsynced and then renamed over
//! `<path>`, so a crash mid-write can never leave a truncated checkpoint —
//! readers observe either the previous complete file or the new one.
//! The leading `version` field gates compatibility: [`load`] rejects files
//! whose version differs from [`CHECKPOINT_VERSION`] rather than
//! misinterpreting them.
//!
//! Floating-point state round-trips bit-exactly: the vendored serde JSON
//! codec prints `f64` via shortest-round-trip formatting and parses with
//! `str::parse`, so `weights -> JSON -> weights` is the identity.

use crate::driver::MwRepairConfig;
use apr_sim::ledger::CostSnapshot;
use mwu_core::MwuAlgorithm;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Current on-disk checkpoint format version. Bump on any incompatible
/// change to [`Checkpoint`] or to the serialized algorithm state.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Serialized state of a paused MWRepair run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`] at write time).
    pub version: u32,
    /// `MwuAlgorithm::name()` of the checkpointed algorithm; resuming with
    /// a different variant is rejected.
    pub algorithm: String,
    /// The run configuration. Resume validates it matches the caller's.
    pub config: MwRepairConfig,
    /// Completed update cycles (absolute, from the start of the run).
    pub iteration: usize,
    /// Total probes issued so far (absolute).
    pub probes: u64,
    /// xoshiro256++ state of the master RNG, captured *after* the last
    /// completed iteration's update step.
    pub rng_state: [u64; 4],
    /// Full algorithm state as a serde value (weights or population counts,
    /// convergence tracker, communication stats, iteration counter).
    pub alg_state: Value,
    /// Cost-ledger totals at checkpoint time.
    pub cost: CostSnapshot,
    /// Whether the convergence telemetry event was already emitted.
    pub convergence_reported: bool,
}

/// Why a checkpoint could not be loaded or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (open / read / write / rename).
    Io(std::io::Error),
    /// File exists but is not a valid checkpoint document.
    Parse(String),
    /// File is a checkpoint, but from an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// Checkpoint was written by a different algorithm variant or with a
    /// different run configuration than the resume attempt supplies.
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse(m) => write!(f, "checkpoint parse error: {m}"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version {found} unsupported (this build reads version {expected})"
            ),
            CheckpointError::Incompatible(m) => write!(f, "checkpoint incompatible: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl Checkpoint {
    /// Capture the live state of a run between iterations.
    pub fn capture<A: MwuAlgorithm + Serialize>(
        alg: &A,
        config: &MwRepairConfig,
        iteration: usize,
        probes: u64,
        rng: &SmallRng,
        cost: CostSnapshot,
        convergence_reported: bool,
    ) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            algorithm: alg.name().to_owned(),
            config: *config,
            iteration,
            probes,
            rng_state: rng.state(),
            alg_state: alg.to_value(),
            cost,
            convergence_reported,
        }
    }

    /// Reconstruct the algorithm this checkpoint was captured from.
    ///
    /// Fails if the serialized state does not deserialize as `A` (wrong
    /// variant, corrupted file).
    pub fn restore_algorithm<A: MwuAlgorithm + Deserialize>(&self) -> Result<A, CheckpointError> {
        let alg = A::from_value(&self.alg_state)
            .map_err(|e| CheckpointError::Parse(format!("algorithm state: {e}")))?;
        if alg.name() != self.algorithm {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint holds algorithm '{}', resume requested '{}'",
                self.algorithm,
                alg.name()
            )));
        }
        Ok(alg)
    }

    /// Reconstruct the master RNG at its checkpointed position.
    pub fn restore_rng(&self) -> SmallRng {
        SmallRng::from_state(self.rng_state)
    }

    /// Verify this checkpoint belongs to a run of `config` with an
    /// algorithm named `alg_name`.
    pub fn validate_against(
        &self,
        alg_name: &str,
        config: &MwRepairConfig,
    ) -> Result<(), CheckpointError> {
        if self.algorithm != alg_name {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint algorithm '{}' != requested '{alg_name}'",
                self.algorithm
            )));
        }
        if self.config != *config {
            return Err(CheckpointError::Incompatible(
                "checkpoint run configuration differs from the resume configuration".into(),
            ));
        }
        Ok(())
    }

    /// Serialize to the canonical single-line JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization is infallible")
    }

    /// Parse and version-check a checkpoint document.
    pub fn from_json(s: &str) -> Result<Self, CheckpointError> {
        // Version-gate before full decoding so a future-format file yields
        // a clear error instead of a field-level parse failure.
        let value =
            serde_json::from_str_value(s).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        let version = u32::from_value(value.field("version"))
            .map_err(|e| CheckpointError::Parse(format!("version field: {e}")))?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: version,
                expected: CHECKPOINT_VERSION,
            });
        }
        Checkpoint::from_value(&value).map_err(|e| CheckpointError::Parse(e.to_string()))
    }

    /// Write atomically and durably: serialize to `<path>.tmp`, fsync,
    /// rename over `path`, then fsync the parent directory. A crash at any
    /// point leaves either the old complete file or the new one, never a
    /// torn write — and once this returns, the rename itself survives a
    /// crash (the directory entry is on disk, not just in the page cache).
    pub fn save_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let _span = mwu_core::prof::span(mwu_core::prof::Phase::CheckpointWrite);
        let tmp = tmp_path(path);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)?;
        Ok(())
    }

    /// Load and version-check a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        Checkpoint::from_json(&text)
    }

    /// Startup sweep: remove an orphaned `<path>.tmp` left by a crash
    /// between [`Checkpoint::save_atomic`]'s tmp write and its rename.
    /// The tmp file is by definition unvouched-for (possibly torn), so it
    /// must never shadow — or be mistaken for — the real checkpoint.
    /// Returns whether an orphan was removed.
    pub fn sweep_orphan_tmp(path: &Path) -> Result<bool, CheckpointError> {
        let tmp = tmp_path(path);
        match std::fs::remove_file(&tmp) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(CheckpointError::Io(e)),
        }
    }
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Fsync the directory containing `path`, making a just-completed rename
/// durable. On POSIX, `rename` updates the directory inode; until that
/// inode is synced, a power loss can roll the directory back to the old
/// entry even though the file data itself was fsynced.
#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

/// Directory handles are not openable/syncable portably off unix; the
/// rename is still atomic, just not guaranteed durable.
#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> std::io::Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwu_core::{SlateConfig, SlateMwu, StandardConfig, StandardMwu};
    use rand::{Rng, SeedableRng};

    fn sample_checkpoint() -> Checkpoint {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut alg = StandardMwu::new(8, StandardConfig::default());
        for _ in 0..5 {
            let n = alg.plan(&mut rng).len();
            let rewards: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            alg.update(&rewards, &mut rng);
        }
        Checkpoint::capture(
            &alg,
            &MwRepairConfig::seeded(7),
            5,
            40,
            &rng,
            CostSnapshot {
                fitness_evals: 40,
                simulated_ms: 4000,
                critical_path_ms: 500,
            },
            false,
        )
    }

    #[test]
    fn json_round_trip_is_identity() {
        let ck = sample_checkpoint();
        let back = Checkpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(ck, back);
    }

    #[test]
    fn restored_algorithm_continues_identically() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut alg = SlateMwu::new(16, SlateConfig::default());
        for _ in 0..10 {
            let n = alg.plan(&mut rng).len();
            let rewards: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            alg.update(&rewards, &mut rng);
        }
        let ck = Checkpoint::capture(
            &alg,
            &MwRepairConfig::seeded(11),
            10,
            0,
            &rng,
            CostSnapshot {
                fitness_evals: 0,
                simulated_ms: 0,
                critical_path_ms: 0,
            },
            false,
        );
        let ck = Checkpoint::from_json(&ck.to_json()).unwrap();
        let mut alg2: SlateMwu = ck.restore_algorithm().unwrap();
        let mut rng2 = ck.restore_rng();

        // Both copies must produce identical plans, updates and shares.
        for _ in 0..10 {
            let p1 = alg.plan(&mut rng).to_vec();
            let p2 = alg2.plan(&mut rng2).to_vec();
            assert_eq!(p1, p2);
            let rewards: Vec<f64> = (0..p1.len()).map(|_| rng.gen::<f64>()).collect();
            let rewards2: Vec<f64> = (0..p2.len()).map(|_| rng2.gen::<f64>()).collect();
            assert_eq!(rewards, rewards2);
            alg.update(&rewards, &mut rng);
            alg2.update(&rewards2, &mut rng2);
            assert_eq!(alg.probabilities(), alg2.probabilities());
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let ck = sample_checkpoint();
        let json = ck.to_json().replace("\"version\":1", "\"version\":999");
        match Checkpoint::from_json(&json) {
            Err(CheckpointError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, CHECKPOINT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_algorithm_is_rejected() {
        let ck = sample_checkpoint(); // standard
        assert!(matches!(
            ck.restore_algorithm::<SlateMwu>(),
            Err(CheckpointError::Parse(_) | CheckpointError::Incompatible(_))
        ));
        assert!(ck
            .validate_against("slate", &MwRepairConfig::seeded(7))
            .is_err());
        assert!(ck
            .validate_against("standard", &MwRepairConfig::seeded(8))
            .is_err());
        assert!(ck
            .validate_against("standard", &MwRepairConfig::seeded(7))
            .is_ok());
    }

    #[test]
    fn save_atomic_writes_complete_file_and_cleans_tmp() {
        let dir = std::env::temp_dir().join(format!("mwr-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ck = sample_checkpoint();
        ck.save_atomic(&path).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp file must be renamed away");
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(ck, loaded);
        // Overwrite with a later checkpoint; reader sees the new state.
        let mut ck2 = ck.clone();
        ck2.iteration = 6;
        ck2.save_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().iteration, 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_atomic_syncs_parent_of_bare_and_nested_paths() {
        // Bare filename: the parent is the empty path; the directory fsync
        // must fall back to "." instead of erroring.
        sync_parent_dir(Path::new("bare.ckpt")).unwrap();

        // Nested directory: fsyncs the deepest parent, not the temp root.
        let dir = std::env::temp_dir().join(format!("mwr-ckpt-nested-{}", std::process::id()));
        let nested = dir.join("a").join("b");
        std::fs::create_dir_all(&nested).unwrap();
        let ck = sample_checkpoint();
        let path = nested.join("run.ckpt");
        ck.save_atomic(&path).unwrap();
        assert!(!tmp_path(&path).exists());
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_tmp_never_shadows_or_corrupts_a_resume() {
        let dir = std::env::temp_dir().join(format!("mwr-ckpt-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ck = sample_checkpoint();
        ck.save_atomic(&path).unwrap();

        // A crash mid-save strands a torn tmp beside the good checkpoint.
        let json = ck.to_json();
        std::fs::write(tmp_path(&path), &json.as_bytes()[..json.len() / 3]).unwrap();

        assert!(
            Checkpoint::sweep_orphan_tmp(&path).unwrap(),
            "orphan missed"
        );
        assert!(!tmp_path(&path).exists());
        assert_eq!(Checkpoint::load(&path).unwrap(), ck, "resume corrupted");

        // Sweeping again is a no-op, and a fresh save still round-trips.
        assert!(!Checkpoint::sweep_orphan_tmp(&path).unwrap());
        let mut ck2 = ck.clone();
        ck2.iteration += 1;
        ck2.save_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_a_parse_error() {
        let ck = sample_checkpoint();
        let json = ck.to_json();
        let truncated = &json[..json.len() / 2];
        assert!(matches!(
            Checkpoint::from_json(truncated),
            Err(CheckpointError::Parse(_))
        ));
    }
}
