//! The MWRepair online phase (paper Fig. 6).
//!
//! Per update cycle:
//!
//! 1. `MWU_Sample` — the MWU algorithm plans which arm (composition size
//!    `x`) each parallel agent probes ([`mwu_core::MwuAlgorithm::plan`]).
//! 2. **Parallel evaluation** — each agent samples `x` distinct pool
//!    mutations, applies them, and runs the suite. Probes run concurrently
//!    on the rayon work-sharing pool; each derives its RNG stream from
//!    `mix(seed, iteration, agent)` and results are collected in agent
//!    order, so outcomes and traces are byte-identical at every thread
//!    count (`docs/PARALLELISM.md`). If a probe reaches maximum fitness,
//!    the repaired program is returned immediately (Fig. 6 line 8,
//!    "Terminate Early").
//! 3. `MWU_Update` — observed rewards update the weights.
//!
//! ## Reward definition
//!
//! Fig. 6 line 9 scores a probe `1` when `f(P') ≥ f(P)` (fitness retained).
//! Used raw, that reward is monotone-decreasing in `x` and drives every
//! bandit to `x = 1`; the paper instead biases the search toward the
//! *repair-density* optimum using "the density of safe mutations, which the
//! search does sample, as a proxy" (§III-B). [`RewardMode::DensityProxy`]
//! implements that proxy — reward `x/x_max` on retained fitness, `0`
//! otherwise, whose expectation `∝ x·survival(x)` is the unimodal density
//! curve of Fig. 4b. [`RewardMode::FitnessRetained`] is the literal Fig. 6
//! rule, kept for ablation.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::report::{RepairOutcome, RepairReport};
use apr_sim::{BugScenario, CostLedger, Mutation, MutationPool};
use mwu_core::rng::mix;
use mwu_core::trace::{
    CommDelta, ConvergenceEvent, IterationEvent, NullObserver, Observer, ProbeEvent, RepairEvent,
    RewardSummary, RunStartEvent,
};
use mwu_core::{
    DistributedConfig, DistributedMwu, MwuAlgorithm, RunOutcome, SlateConfig, SlateMwu,
    StandardConfig, StandardMwu,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// How probe outcomes map to bandit rewards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardMode {
    /// Literal Fig. 6: reward 1 iff the probe retained fitness.
    FitnessRetained,
    /// Repair-density proxy (§III-B): reward `x/x_max` iff the probe
    /// retained fitness. Default.
    DensityProxy,
}

/// Configuration for one MWRepair online run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MwRepairConfig {
    /// Update-cycle limit `T` (Fig. 6). Paper experiments use 10,000; end-
    /// to-end repair runs usually terminate long before.
    pub max_iterations: usize,
    /// RNG seed for the run.
    pub seed: u64,
    /// Reward mapping.
    pub reward: RewardMode,
    /// Largest composition size to expose as an arm. The bandit's arms are
    /// x ∈ 1..=min(pool, max_composition): exposing every pool size as an
    /// arm wastes probes on compositions far beyond the interaction scale
    /// (survival is essentially 0 past a few hundred mutations — Fig. 4a's
    /// x-axis stops at 100). Default 512, comfortably above every
    /// repair-density optimum the paper reports (11–271).
    pub max_composition: usize,
}

impl MwRepairConfig {
    /// Defaults with an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            max_iterations: 10_000,
            seed,
            reward: RewardMode::DensityProxy,
            max_composition: 512,
        }
    }
}

/// Number of bandit arms the online phase uses for a pool of `pool_len`
/// mutations under `config`.
pub fn effective_arms(pool_len: usize, config: &MwRepairConfig) -> usize {
    pool_len.min(config.max_composition.max(1))
}

impl Default for MwRepairConfig {
    fn default() -> Self {
        Self::seeded(0)
    }
}

/// Run the MWRepair online phase with a caller-supplied MWU algorithm.
///
/// The algorithm must have been constructed over `pool.len()` arms (arm
/// index `i` = compose `i + 1` mutations). A `ledger` may be shared with
/// the precompute phase to account total cost.
pub fn repair<A: MwuAlgorithm>(
    scenario: &BugScenario,
    pool: &MutationPool,
    alg: &mut A,
    config: &MwRepairConfig,
) -> RepairOutcome {
    repair_with_ledger(scenario, pool, alg, config, None)
}

/// [`repair`] with explicit cost accounting.
pub fn repair_with_ledger<A: MwuAlgorithm>(
    scenario: &BugScenario,
    pool: &MutationPool,
    alg: &mut A,
    config: &MwRepairConfig,
    ledger: Option<&CostLedger>,
) -> RepairOutcome {
    repair_observed(scenario, pool, alg, config, ledger, &mut NullObserver)
}

/// [`repair_with_ledger`] with run telemetry delivered to `observer`:
/// one [`ProbeEvent`] per agent probe (composition size, pool hit, reward),
/// a [`RepairEvent`] when a probe repairs, per-cycle [`IterationEvent`]s,
/// and a run footer. Event construction is gated on `observer.enabled()`,
/// so the [`NullObserver`] path is the pre-telemetry loop.
pub fn repair_observed<A: MwuAlgorithm, O: Observer>(
    scenario: &BugScenario,
    pool: &MutationPool,
    alg: &mut A,
    config: &MwRepairConfig,
    ledger: Option<&CostLedger>,
    observer: &mut O,
) -> RepairOutcome {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let (outcome, _halted) = run_loop(
        scenario,
        pool,
        alg,
        config,
        ledger,
        observer,
        &mut rng,
        0,
        0,
        false,
        None,
        |_: CheckpointArgs<'_, A>| Ok(()),
    )
    .expect("no-op checkpoint hook cannot fail");
    outcome
}

/// State handed to the checkpoint hook after each completed update cycle.
struct CheckpointArgs<'a, A> {
    alg: &'a A,
    /// Completed update cycles (absolute).
    iteration: usize,
    /// Probes issued so far (absolute).
    probes: u64,
    rng: &'a SmallRng,
    convergence_reported: bool,
    /// True when the session is about to halt: the hook must persist state
    /// now regardless of its cadence policy.
    force: bool,
}

/// The Fig. 6 update-cycle loop, shared by [`repair_observed`] (hook is a
/// no-op) and [`repair_resumable`] (hook writes checkpoints). Starts at
/// absolute iteration `start_iteration` with `init_probes` probes already
/// accounted; `halt_after` bounds the number of cycles executed *in this
/// call* (cooperative kill). Returns the outcome plus whether the session
/// halted early.
#[allow(clippy::too_many_arguments)]
fn run_loop<A, O, F>(
    scenario: &BugScenario,
    pool: &MutationPool,
    alg: &mut A,
    config: &MwRepairConfig,
    ledger: Option<&CostLedger>,
    observer: &mut O,
    rng: &mut SmallRng,
    start_iteration: usize,
    init_probes: u64,
    init_convergence_reported: bool,
    halt_after: Option<usize>,
    mut checkpoint_hook: F,
) -> Result<(RepairOutcome, bool), CheckpointError>
where
    A: MwuAlgorithm,
    O: Observer,
    F: FnMut(CheckpointArgs<'_, A>) -> Result<(), CheckpointError>,
{
    assert!(!pool.is_empty(), "online phase needs a non-empty pool");
    let arms = effective_arms(pool.len(), config);
    assert_eq!(
        alg.num_arms(),
        arms,
        "algorithm arms must match effective_arms(pool, config) (arm i = compose i+1 mutations)"
    );
    let x_max = arms as f64;
    let mut probes_total: u64 = init_probes;
    let mut found: Option<RepairReport> = None;
    let mut iterations = start_iteration;
    let mut convergence_reported = init_convergence_reported;
    let mut halted = false;
    // Reused probability snapshot for the observer's entropy figure.
    let mut probs: Vec<f64> = Vec::new();
    // Per-probe cost estimate (EWMA over completed cycles, ns) fed to the
    // pool as a chunk-sizing hint. Cycle 1 passes 0 (unknown → the pool
    // measures its first chunk); every later cycle sizes chunks up front
    // and keeps rounds too small to amortize a pool submission inline —
    // the coarse-graining that removes the per-round park/wake storm.
    // Purely a scheduling hint: outcomes are byte-identical for any value.
    let mut probe_cost_hint: u64 = 0;

    if observer.enabled() {
        observer.on_run_start(RunStartEvent {
            algorithm: alg.name(),
            num_arms: arms,
            cpus_per_iteration: alg.cpus_per_iteration(),
            seed: config.seed,
            max_iterations: config.max_iterations,
        });
    }

    'outer: for t in start_iteration..config.max_iterations {
        if halt_after == Some(t - start_iteration) {
            halted = true;
            checkpoint_hook(CheckpointArgs {
                alg,
                iteration: iterations,
                probes: probes_total,
                rng,
                convergence_reported,
                force: true,
            })?;
            break 'outer;
        }
        let comm_before = if observer.enabled() {
            alg.comm_stats()
        } else {
            mwu_core::CommStats::default()
        };
        let plan = alg.plan(rng);
        iterations = t + 1;
        probes_total += plan.len() as u64;

        // Parallel evaluation (Fig. 6 lines 4–14). Each agent gets a
        // deterministic RNG stream keyed by (run seed, iteration, agent) so
        // the outcome is independent of rayon's scheduling.
        struct ProbeResult {
            reward: f64,
            survived: bool,
            repair: Option<Vec<Mutation>>,
            cost_ms: u64,
            arm: usize,
        }
        let seed = config.seed;
        let probe_span = mwu_core::prof::span(mwu_core::prof::Phase::ProbeLoop);
        let probe_t0 = std::time::Instant::now();
        let results: Vec<ProbeResult> = plan
            .par_iter()
            .with_cost_hint(probe_cost_hint)
            .enumerate()
            .map(|(agent, &arm)| {
                let x = arm + 1;
                let mut agent_rng = SmallRng::seed_from_u64(mix(&[seed, t as u64, agent as u64]));
                // The O(pool) sampling permutation lives in this worker's
                // persistent arena instead of being reallocated per probe.
                let mut idx = mwu_core::ThreadArena::with(|a| a.take_usize());
                let mut comp = Vec::new();
                pool.sample_composition_into(
                    x.min(pool.len()),
                    &mut agent_rng,
                    &mut idx,
                    &mut comp,
                );
                mwu_core::ThreadArena::with(move |a| a.give_usize(idx));
                let out = scenario.evaluate(&comp, ledger);
                let reward = match config.reward {
                    RewardMode::FitnessRetained => {
                        if out.survived {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    RewardMode::DensityProxy => {
                        if out.survived {
                            x as f64 / x_max
                        } else {
                            0.0
                        }
                    }
                };
                ProbeResult {
                    reward,
                    survived: out.survived,
                    repair: if out.repaired { Some(comp) } else { None },
                    cost_ms: out.cost_ms,
                    arm,
                }
            })
            .collect();
        drop(probe_span);
        let cycle_ns = probe_t0.elapsed().as_nanos() as u64;
        let per_probe = cycle_ns / plan.len().max(1) as u64;
        probe_cost_hint = if probe_cost_hint == 0 {
            per_probe
        } else {
            // EWMA (α = 1/4) smooths one-off stalls without going stale.
            (3 * probe_cost_hint + per_probe) / 4
        };

        // The parallel phase's critical path is its slowest probe.
        if let Some(l) = ledger {
            let max_ms = results.iter().map(|r| r.cost_ms).max().unwrap_or(0);
            l.record_parallel_phase(max_ms);
        }

        // Probes report in agent order, regardless of parallel scheduling.
        if observer.enabled() {
            for (agent, r) in results.iter().enumerate() {
                observer.on_probe(ProbeEvent {
                    iteration: t + 1,
                    agent,
                    composition_size: r.arm + 1,
                    survived: r.survived,
                    reward: r.reward,
                });
            }
        }

        // Early termination: first (lowest agent index) repairing probe.
        for (agent, r) in results.iter().enumerate() {
            if let Some(muts) = &r.repair {
                found = Some(RepairReport {
                    mutations: muts.clone(),
                    arm: r.arm + 1,
                    iteration: t + 1,
                    agent,
                });
                if observer.enabled() {
                    observer.on_repair(RepairEvent {
                        iteration: t + 1,
                        agent,
                        composition_size: r.arm + 1,
                    });
                }
                break 'outer;
            }
        }

        let rewards: Vec<f64> = results.iter().map(|r| r.reward).collect();
        alg.update(&rewards, rng);

        if observer.enabled() {
            alg.probabilities_into(&mut probs);
            observer.on_iteration(IterationEvent {
                iteration: t + 1,
                leader: alg.leader(),
                leader_share: alg.leader_share(),
                entropy: mwu_core::trace::entropy(&probs),
                comm: CommDelta::between(&comm_before, &alg.comm_stats()),
                reward: RewardSummary::of(&rewards),
            });
            if alg.has_converged() && !convergence_reported {
                convergence_reported = true;
                observer.on_convergence(ConvergenceEvent {
                    iteration: t + 1,
                    leader: alg.leader(),
                    leader_share: alg.leader_share(),
                });
            }
        }

        checkpoint_hook(CheckpointArgs {
            alg,
            iteration: t + 1,
            probes: probes_total,
            rng,
            convergence_reported,
            force: false,
        })?;
    }

    if observer.enabled() && !halted {
        observer.on_run_end(RunOutcome {
            algorithm: alg.name(),
            iterations,
            converged: alg.has_converged(),
            leader: alg.leader(),
            leader_share: alg.leader_share(),
            cpu_iterations: iterations as u64 * alg.cpus_per_iteration() as u64,
            pulls: probes_total,
            comm: alg.comm_stats(),
            cpus_per_iteration: alg.cpus_per_iteration(),
        });
    }

    let outcome = RepairOutcome {
        repair: found,
        iterations,
        probes: probes_total,
        cost: match ledger {
            Some(l) => l.snapshot(),
            None => fallback_cost(scenario, probes_total, iterations),
        },
        leader_arm: alg.leader() + 1,
        mwu_converged: alg.has_converged(),
    };
    Ok((outcome, halted))
}

/// Cost attribution when no ledger is shared: every probe costs one full
/// suite run, and each iteration's parallel phase contributes one full run
/// to the critical path. Uses *absolute* totals so a resumed run reports
/// the same cost as an uninterrupted one.
fn fallback_cost(
    scenario: &BugScenario,
    probes_total: u64,
    iterations: usize,
) -> apr_sim::ledger::CostSnapshot {
    apr_sim::ledger::CostSnapshot {
        fitness_evals: probes_total,
        simulated_ms: probes_total * scenario.suite.full_run_cost_ms(),
        critical_path_ms: iterations as u64 * scenario.suite.full_run_cost_ms(),
    }
}

/// When and where [`repair_resumable`] persists checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Destination file (written atomically via tmp + rename).
    pub path: PathBuf,
    /// Write a checkpoint once at least this many probes have been issued
    /// since the last one. `0` checkpoints after every update cycle.
    pub every_probes: u64,
}

impl CheckpointPolicy {
    /// Checkpoint to `path` every `every_probes` probes.
    pub fn new(path: impl Into<PathBuf>, every_probes: u64) -> Self {
        Self {
            path: path.into(),
            every_probes,
        }
    }
}

/// Session controls for [`repair_resumable`]: checkpoint cadence and an
/// optional cooperative halt (used by tests and the chaos harness to model
/// a kill at a known point).
#[derive(Debug, Clone, Default)]
pub struct SessionControl {
    /// Persist checkpoints per this policy. `None`: never write to disk
    /// (halting still returns an in-memory [`Checkpoint`]).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Stop after this many update cycles *in this session* and return
    /// [`SessionResult::Halted`]. `None`: run to completion.
    pub halt_after_iterations: Option<usize>,
}

/// How a [`repair_resumable`] session ended.
#[derive(Debug, Clone)]
pub enum SessionResult {
    /// The run finished: a repair was found or `max_iterations` elapsed.
    Complete(RepairOutcome),
    /// The session halted cooperatively; `checkpoint` resumes it.
    Halted {
        /// State at the halt point (also written to the policy path, if any).
        checkpoint: Box<Checkpoint>,
    },
}

impl SessionResult {
    /// The outcome, if the run completed.
    pub fn outcome(self) -> Option<RepairOutcome> {
        match self {
            SessionResult::Complete(o) => Some(o),
            SessionResult::Halted { .. } => None,
        }
    }
}

/// [`repair_observed`] with crash-safe checkpoint / resume.
///
/// Starting fresh: pass `resume: None`; `alg` is used as constructed.
/// Resuming: pass the loaded [`Checkpoint`]; `alg`'s state is *overwritten*
/// from it (the caller constructs any instance of the right variant and
/// arm count), the master RNG continues from its saved position, and the
/// absolute iteration / probe counters carry over, so the completed run's
/// [`RepairOutcome`] is identical to an uninterrupted same-seed run. If a
/// `ledger` is shared, its totals are restored from the checkpoint too.
///
/// Checkpoints are written per `session.checkpoint` after completed update
/// cycles; a cooperative halt (`session.halt_after_iterations`) always
/// writes a final checkpoint before returning [`SessionResult::Halted`].
#[allow(clippy::too_many_arguments)]
pub fn repair_resumable<A, O>(
    scenario: &BugScenario,
    pool: &MutationPool,
    alg: &mut A,
    config: &MwRepairConfig,
    ledger: Option<&CostLedger>,
    observer: &mut O,
    session: &SessionControl,
    resume: Option<&Checkpoint>,
) -> Result<SessionResult, CheckpointError>
where
    A: MwuAlgorithm + serde::Serialize + serde::Deserialize,
    O: Observer,
{
    let (start_iteration, init_probes, init_convergence_reported, mut rng) = match resume {
        Some(ck) => {
            ck.validate_against(alg.name(), config)?;
            *alg = ck.restore_algorithm()?;
            if let Some(l) = ledger {
                l.restore(ck.cost);
            }
            (
                ck.iteration,
                ck.probes,
                ck.convergence_reported,
                ck.restore_rng(),
            )
        }
        None => (0, 0, false, SmallRng::seed_from_u64(config.seed)),
    };

    let mut last_saved: Option<Checkpoint> = None;
    let mut probes_at_last_save = init_probes;
    let policy = session.checkpoint.as_ref();
    let (outcome, halted) = {
        let last_saved = &mut last_saved;
        let probes_at_last_save = &mut probes_at_last_save;
        run_loop(
            scenario,
            pool,
            alg,
            config,
            ledger,
            observer,
            &mut rng,
            start_iteration,
            init_probes,
            init_convergence_reported,
            session.halt_after_iterations,
            |args: CheckpointArgs<'_, A>| {
                let due = match policy {
                    Some(p) => args.probes - *probes_at_last_save >= p.every_probes,
                    None => false,
                };
                if !(due || args.force) {
                    return Ok(());
                }
                let cost = match ledger {
                    Some(l) => l.snapshot(),
                    None => fallback_cost(scenario, args.probes, args.iteration),
                };
                let ck = Checkpoint::capture(
                    args.alg,
                    config,
                    args.iteration,
                    args.probes,
                    args.rng,
                    cost,
                    args.convergence_reported,
                );
                if let Some(p) = policy {
                    ck.save_atomic(&p.path)?;
                }
                *probes_at_last_save = args.probes;
                *last_saved = Some(ck);
                Ok(())
            },
        )?
    };

    if halted {
        let checkpoint = last_saved.expect("halt always captures a checkpoint");
        Ok(SessionResult::Halted {
            checkpoint: Box::new(checkpoint),
        })
    } else {
        Ok(SessionResult::Complete(outcome))
    }
}

/// Which MWU variant drives the online phase (convenience for binaries and
/// examples that pick a variant by name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VariantChoice {
    /// Standard MWU (one agent per arm).
    Standard,
    /// Slate MWU (slate-sized agent team).
    Slate,
    /// Distributed MWU (population of agents).
    Distributed,
}

impl VariantChoice {
    /// Parse from a CLI-style name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "standard" => Some(VariantChoice::Standard),
            "slate" => Some(VariantChoice::Slate),
            "distributed" => Some(VariantChoice::Distributed),
            _ => None,
        }
    }
}

/// Build the chosen variant over `k` arms with paper-default parameters and
/// run the online phase. Returns `Err` if the variant is intractable at
/// this size (Distributed beyond its population cap).
pub fn repair_with_variant(
    scenario: &BugScenario,
    pool: &MutationPool,
    variant: VariantChoice,
    config: &MwRepairConfig,
    ledger: Option<&CostLedger>,
) -> Result<RepairOutcome, mwu_core::distributed::Intractable> {
    let k = effective_arms(pool.len(), config);
    Ok(match variant {
        VariantChoice::Standard => {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            repair_with_ledger(scenario, pool, &mut alg, config, ledger)
        }
        VariantChoice::Slate => {
            let mut alg = SlateMwu::new(k, SlateConfig::default());
            repair_with_ledger(scenario, pool, &mut alg, config, ledger)
        }
        VariantChoice::Distributed => {
            let mut alg = DistributedMwu::try_new(k, DistributedConfig::default())?;
            repair_with_ledger(scenario, pool, &mut alg, config, ledger)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_sim::ScenarioKind;
    use mwu_core::{SlateConfig, SlateMwu};

    fn small_scenario() -> (BugScenario, MutationPool) {
        let s = BugScenario::custom(
            "driver-test",
            ScenarioKind::Synthetic,
            60,
            12,
            400,
            15,
            0.06,
            21,
        );
        let pool = s.build_pool(1, None);
        (s, pool)
    }

    #[test]
    fn finds_repair_and_terminates_early() {
        let (s, pool) = small_scenario();
        let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
        let out = repair(&s, &pool, &mut alg, &MwRepairConfig::seeded(3));
        assert!(
            out.is_repaired(),
            "no repair in {} iterations",
            out.iterations
        );
        let rep = out.repair.unwrap();
        assert_eq!(rep.mutations.len(), rep.arm);
        // The reported composition really does repair.
        let verify = s.evaluate(&rep.mutations, None);
        assert!(verify.repaired, "reported repair does not reproduce");
        assert!(out.iterations < 10_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, pool) = small_scenario();
        let run = |seed| {
            let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
            repair(&s, &pool, &mut alg, &MwRepairConfig::seeded(seed))
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.repair, b.repair);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.probes, b.probes);
    }

    #[test]
    fn density_proxy_biases_leader_toward_optimum() {
        // Run without repairs (repair_rate 0) so the bandit runs long
        // enough to learn; the leader arm should approach the scenario's
        // density optimum rather than x=1.
        let s = BugScenario::custom(
            "no-repair",
            ScenarioKind::Synthetic,
            80,
            16,
            400,
            15,
            0.0,
            22,
        );
        let pool = s.build_pool(1, None);
        let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
        let cfg = MwRepairConfig {
            max_iterations: 3000,
            seed: 9,
            reward: RewardMode::DensityProxy,
            max_composition: 512,
        };
        let out = repair(&s, &pool, &mut alg, &cfg);
        assert!(out.repair.is_none());
        let opt = s.density_optimum();
        assert!(
            out.leader_arm >= opt / 3 && out.leader_arm <= opt * 3,
            "leader {} vs optimum {opt}",
            out.leader_arm
        );
    }

    #[test]
    fn fitness_retained_reward_drives_leader_small() {
        let s = BugScenario::custom("ablate", ScenarioKind::Synthetic, 80, 16, 400, 15, 0.0, 23);
        let pool = s.build_pool(1, None);
        let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
        let cfg = MwRepairConfig {
            max_iterations: 3000,
            seed: 9,
            reward: RewardMode::FitnessRetained,
            max_composition: 512,
        };
        let out = repair(&s, &pool, &mut alg, &cfg);
        // Monotone reward ⇒ small compositions dominate.
        assert!(
            out.leader_arm < s.density_optimum(),
            "leader {} not below optimum {}",
            out.leader_arm,
            s.density_optimum()
        );
    }

    #[test]
    fn variant_choice_parses() {
        assert_eq!(
            VariantChoice::parse("Standard"),
            Some(VariantChoice::Standard)
        );
        assert_eq!(VariantChoice::parse("slate"), Some(VariantChoice::Slate));
        assert_eq!(
            VariantChoice::parse("DISTRIBUTED"),
            Some(VariantChoice::Distributed)
        );
        assert_eq!(VariantChoice::parse("genprog"), None);
    }

    #[test]
    fn all_variants_can_repair_small_scenario() {
        let (s, pool) = small_scenario();
        for v in [
            VariantChoice::Standard,
            VariantChoice::Slate,
            VariantChoice::Distributed,
        ] {
            let out = repair_with_variant(&s, &pool, v, &MwRepairConfig::seeded(4), None).unwrap();
            assert!(out.is_repaired(), "{v:?} failed to repair");
        }
    }

    #[test]
    fn ledger_accounts_probes() {
        let (s, pool) = small_scenario();
        let ledger = CostLedger::new();
        let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
        let out = repair_with_ledger(
            &s,
            &pool,
            &mut alg,
            &MwRepairConfig::seeded(3),
            Some(&ledger),
        );
        assert_eq!(ledger.fitness_evals(), out.probes);
        assert!(ledger.critical_path_ms() <= ledger.simulated_ms());
    }

    #[test]
    fn halted_and_resumed_run_matches_uninterrupted() {
        // A scenario with repair_rate 0 runs the full horizon, so the
        // comparison exercises every iteration including convergence.
        let s = BugScenario::custom("resume", ScenarioKind::Synthetic, 60, 12, 300, 15, 0.0, 31);
        let pool = s.build_pool(1, None);
        let cfg = MwRepairConfig {
            max_iterations: 120,
            seed: 17,
            reward: RewardMode::DensityProxy,
            max_composition: 512,
        };
        let arms = effective_arms(pool.len(), &cfg);

        let mut alg = SlateMwu::new(arms, SlateConfig::default());
        let uninterrupted = repair(&s, &pool, &mut alg, &cfg);

        // Kill after 40 iterations, then resume from the in-memory
        // checkpoint with a *fresh* algorithm instance.
        let mut alg1 = SlateMwu::new(arms, SlateConfig::default());
        let session = SessionControl {
            checkpoint: None,
            halt_after_iterations: Some(40),
        };
        let halted = repair_resumable(
            &s,
            &pool,
            &mut alg1,
            &cfg,
            None,
            &mut NullObserver,
            &session,
            None,
        )
        .unwrap();
        let ck = match halted {
            SessionResult::Halted { checkpoint } => checkpoint,
            SessionResult::Complete(_) => panic!("expected halt at 40 iterations"),
        };
        assert_eq!(ck.iteration, 40);

        let mut alg2 = SlateMwu::new(arms, SlateConfig::default());
        let resumed = repair_resumable(
            &s,
            &pool,
            &mut alg2,
            &cfg,
            None,
            &mut NullObserver,
            &SessionControl::default(),
            Some(&ck),
        )
        .unwrap()
        .outcome()
        .expect("resumed run should complete");

        assert_eq!(resumed, uninterrupted);
    }

    #[test]
    fn resume_via_checkpoint_file_round_trip() {
        // Repair-free scenario so the halt point is always reached.
        let s = BugScenario::custom(
            "resume-io",
            ScenarioKind::Synthetic,
            60,
            12,
            300,
            15,
            0.0,
            33,
        );
        let pool = s.build_pool(1, None);
        let cfg = MwRepairConfig {
            max_iterations: 30,
            seed: 3,
            reward: RewardMode::DensityProxy,
            max_composition: 512,
        };
        let arms = effective_arms(pool.len(), &cfg);

        let mut alg = SlateMwu::new(arms, SlateConfig::default());
        let uninterrupted = repair(&s, &pool, &mut alg, &cfg);

        let dir = std::env::temp_dir().join(format!("mwr-resume-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.ckpt");

        // Checkpoint to disk every 8 probes; halt after 2 iterations.
        let mut alg1 = SlateMwu::new(arms, SlateConfig::default());
        let session = SessionControl {
            checkpoint: Some(CheckpointPolicy::new(&path, 8)),
            halt_after_iterations: Some(2),
        };
        let halted = repair_resumable(
            &s,
            &pool,
            &mut alg1,
            &cfg,
            None,
            &mut NullObserver,
            &session,
            None,
        )
        .unwrap();
        assert!(matches!(halted, SessionResult::Halted { .. }));

        // Resume purely from the file, as the binaries do.
        let ck = crate::checkpoint::Checkpoint::load(&path).unwrap();
        let mut alg2 = SlateMwu::new(arms, SlateConfig::default());
        let resumed = repair_resumable(
            &s,
            &pool,
            &mut alg2,
            &cfg,
            None,
            &mut NullObserver,
            &SessionControl::default(),
            Some(&ck),
        )
        .unwrap()
        .outcome()
        .unwrap();

        assert_eq!(resumed, uninterrupted);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let (s, pool) = small_scenario();
        let cfg = MwRepairConfig::seeded(3);
        let arms = effective_arms(pool.len(), &cfg);
        let mut alg = SlateMwu::new(arms, SlateConfig::default());
        let session = SessionControl {
            checkpoint: None,
            // Halt before the first iteration: always reachable, even when
            // the scenario repairs immediately.
            halt_after_iterations: Some(0),
        };
        let SessionResult::Halted { checkpoint } = repair_resumable(
            &s,
            &pool,
            &mut alg,
            &cfg,
            None,
            &mut NullObserver,
            &session,
            None,
        )
        .unwrap() else {
            panic!("expected halt");
        };
        let other_cfg = MwRepairConfig::seeded(4);
        let mut alg2 = SlateMwu::new(arms, SlateConfig::default());
        assert!(repair_resumable(
            &s,
            &pool,
            &mut alg2,
            &other_cfg,
            None,
            &mut NullObserver,
            &SessionControl::default(),
            Some(&checkpoint),
        )
        .is_err());
    }

    #[test]
    #[should_panic]
    fn arm_mismatch_panics() {
        let (s, pool) = small_scenario();
        let mut alg = SlateMwu::new(pool.len() + 1, SlateConfig::default());
        let _ = repair(&s, &pool, &mut alg, &MwRepairConfig::seeded(0));
    }
}
