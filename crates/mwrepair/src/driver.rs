//! The MWRepair online phase (paper Fig. 6).
//!
//! Per update cycle:
//!
//! 1. `MWU_Sample` — the MWU algorithm plans which arm (composition size
//!    `x`) each parallel agent probes ([`mwu_core::MwuAlgorithm::plan`]).
//! 2. **Parallel evaluation** — each agent samples `x` distinct pool
//!    mutations, applies them, and runs the suite (rayon; deterministic
//!    per-(iteration, agent) RNG streams so parallel scheduling cannot
//!    change results). If a probe reaches maximum fitness, the repaired
//!    program is returned immediately (Fig. 6 line 8, "Terminate Early").
//! 3. `MWU_Update` — observed rewards update the weights.
//!
//! ## Reward definition
//!
//! Fig. 6 line 9 scores a probe `1` when `f(P') ≥ f(P)` (fitness retained).
//! Used raw, that reward is monotone-decreasing in `x` and drives every
//! bandit to `x = 1`; the paper instead biases the search toward the
//! *repair-density* optimum using "the density of safe mutations, which the
//! search does sample, as a proxy" (§III-B). [`RewardMode::DensityProxy`]
//! implements that proxy — reward `x/x_max` on retained fitness, `0`
//! otherwise, whose expectation `∝ x·survival(x)` is the unimodal density
//! curve of Fig. 4b. [`RewardMode::FitnessRetained`] is the literal Fig. 6
//! rule, kept for ablation.

use crate::report::{RepairOutcome, RepairReport};
use apr_sim::{BugScenario, CostLedger, Mutation, MutationPool};
use mwu_core::rng::mix;
use mwu_core::trace::{
    CommDelta, ConvergenceEvent, IterationEvent, NullObserver, Observer, ProbeEvent, RepairEvent,
    RewardSummary, RunStartEvent,
};
use mwu_core::{
    DistributedConfig, DistributedMwu, MwuAlgorithm, RunOutcome, SlateConfig, SlateMwu,
    StandardConfig, StandardMwu,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How probe outcomes map to bandit rewards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardMode {
    /// Literal Fig. 6: reward 1 iff the probe retained fitness.
    FitnessRetained,
    /// Repair-density proxy (§III-B): reward `x/x_max` iff the probe
    /// retained fitness. Default.
    DensityProxy,
}

/// Configuration for one MWRepair online run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MwRepairConfig {
    /// Update-cycle limit `T` (Fig. 6). Paper experiments use 10,000; end-
    /// to-end repair runs usually terminate long before.
    pub max_iterations: usize,
    /// RNG seed for the run.
    pub seed: u64,
    /// Reward mapping.
    pub reward: RewardMode,
    /// Largest composition size to expose as an arm. The bandit's arms are
    /// x ∈ 1..=min(pool, max_composition): exposing every pool size as an
    /// arm wastes probes on compositions far beyond the interaction scale
    /// (survival is essentially 0 past a few hundred mutations — Fig. 4a's
    /// x-axis stops at 100). Default 512, comfortably above every
    /// repair-density optimum the paper reports (11–271).
    pub max_composition: usize,
}

impl MwRepairConfig {
    /// Defaults with an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            max_iterations: 10_000,
            seed,
            reward: RewardMode::DensityProxy,
            max_composition: 512,
        }
    }
}

/// Number of bandit arms the online phase uses for a pool of `pool_len`
/// mutations under `config`.
pub fn effective_arms(pool_len: usize, config: &MwRepairConfig) -> usize {
    pool_len.min(config.max_composition.max(1))
}

impl Default for MwRepairConfig {
    fn default() -> Self {
        Self::seeded(0)
    }
}

/// Run the MWRepair online phase with a caller-supplied MWU algorithm.
///
/// The algorithm must have been constructed over `pool.len()` arms (arm
/// index `i` = compose `i + 1` mutations). A `ledger` may be shared with
/// the precompute phase to account total cost.
pub fn repair<A: MwuAlgorithm>(
    scenario: &BugScenario,
    pool: &MutationPool,
    alg: &mut A,
    config: &MwRepairConfig,
) -> RepairOutcome {
    repair_with_ledger(scenario, pool, alg, config, None)
}

/// [`repair`] with explicit cost accounting.
pub fn repair_with_ledger<A: MwuAlgorithm>(
    scenario: &BugScenario,
    pool: &MutationPool,
    alg: &mut A,
    config: &MwRepairConfig,
    ledger: Option<&CostLedger>,
) -> RepairOutcome {
    repair_observed(scenario, pool, alg, config, ledger, &mut NullObserver)
}

/// [`repair_with_ledger`] with run telemetry delivered to `observer`:
/// one [`ProbeEvent`] per agent probe (composition size, pool hit, reward),
/// a [`RepairEvent`] when a probe repairs, per-cycle [`IterationEvent`]s,
/// and a run footer. Event construction is gated on `observer.enabled()`,
/// so the [`NullObserver`] path is the pre-telemetry loop.
pub fn repair_observed<A: MwuAlgorithm, O: Observer>(
    scenario: &BugScenario,
    pool: &MutationPool,
    alg: &mut A,
    config: &MwRepairConfig,
    ledger: Option<&CostLedger>,
    observer: &mut O,
) -> RepairOutcome {
    assert!(!pool.is_empty(), "online phase needs a non-empty pool");
    let arms = effective_arms(pool.len(), config);
    assert_eq!(
        alg.num_arms(),
        arms,
        "algorithm arms must match effective_arms(pool, config) (arm i = compose i+1 mutations)"
    );
    let x_max = arms as f64;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut probes_total: u64 = 0;
    let mut found: Option<RepairReport> = None;
    let mut iterations = 0;
    let mut convergence_reported = false;

    if observer.enabled() {
        observer.on_run_start(RunStartEvent {
            algorithm: alg.name(),
            num_arms: arms,
            cpus_per_iteration: alg.cpus_per_iteration(),
            seed: config.seed,
            max_iterations: config.max_iterations,
        });
    }

    'outer: for t in 0..config.max_iterations {
        let comm_before = if observer.enabled() {
            alg.comm_stats()
        } else {
            mwu_core::CommStats::default()
        };
        let plan = alg.plan(&mut rng);
        iterations = t + 1;
        probes_total += plan.len() as u64;

        // Parallel evaluation (Fig. 6 lines 4–14). Each agent gets a
        // deterministic RNG stream keyed by (run seed, iteration, agent) so
        // the outcome is independent of rayon's scheduling.
        struct ProbeResult {
            reward: f64,
            survived: bool,
            repair: Option<Vec<Mutation>>,
            cost_ms: u64,
            arm: usize,
        }
        let seed = config.seed;
        let results: Vec<ProbeResult> = plan
            .par_iter()
            .enumerate()
            .map(|(agent, &arm)| {
                let x = arm + 1;
                let mut agent_rng = SmallRng::seed_from_u64(mix(&[seed, t as u64, agent as u64]));
                let comp = pool.sample_composition(x.min(pool.len()), &mut agent_rng);
                let out = scenario.evaluate(&comp, ledger);
                let reward = match config.reward {
                    RewardMode::FitnessRetained => {
                        if out.survived {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    RewardMode::DensityProxy => {
                        if out.survived {
                            x as f64 / x_max
                        } else {
                            0.0
                        }
                    }
                };
                ProbeResult {
                    reward,
                    survived: out.survived,
                    repair: if out.repaired { Some(comp) } else { None },
                    cost_ms: out.cost_ms,
                    arm,
                }
            })
            .collect();

        // The parallel phase's critical path is its slowest probe.
        if let Some(l) = ledger {
            let max_ms = results.iter().map(|r| r.cost_ms).max().unwrap_or(0);
            l.record_parallel_phase(max_ms);
        }

        // Probes report in agent order, regardless of parallel scheduling.
        if observer.enabled() {
            for (agent, r) in results.iter().enumerate() {
                observer.on_probe(ProbeEvent {
                    iteration: t + 1,
                    agent,
                    composition_size: r.arm + 1,
                    survived: r.survived,
                    reward: r.reward,
                });
            }
        }

        // Early termination: first (lowest agent index) repairing probe.
        for (agent, r) in results.iter().enumerate() {
            if let Some(muts) = &r.repair {
                found = Some(RepairReport {
                    mutations: muts.clone(),
                    arm: r.arm + 1,
                    iteration: t + 1,
                    agent,
                });
                if observer.enabled() {
                    observer.on_repair(RepairEvent {
                        iteration: t + 1,
                        agent,
                        composition_size: r.arm + 1,
                    });
                }
                break 'outer;
            }
        }

        let rewards: Vec<f64> = results.iter().map(|r| r.reward).collect();
        alg.update(&rewards, &mut rng);

        if observer.enabled() {
            observer.on_iteration(IterationEvent {
                iteration: t + 1,
                leader: alg.leader(),
                leader_share: alg.leader_share(),
                entropy: mwu_core::trace::entropy(&alg.probabilities()),
                comm: CommDelta::between(&comm_before, &alg.comm_stats()),
                reward: RewardSummary::of(&rewards),
            });
            if alg.has_converged() && !convergence_reported {
                convergence_reported = true;
                observer.on_convergence(ConvergenceEvent {
                    iteration: t + 1,
                    leader: alg.leader(),
                    leader_share: alg.leader_share(),
                });
            }
        }
    }

    if observer.enabled() {
        observer.on_run_end(RunOutcome {
            algorithm: alg.name(),
            iterations,
            converged: alg.has_converged(),
            leader: alg.leader(),
            leader_share: alg.leader_share(),
            cpu_iterations: iterations as u64 * alg.cpus_per_iteration() as u64,
            pulls: probes_total,
            comm: alg.comm_stats(),
            cpus_per_iteration: alg.cpus_per_iteration(),
        });
    }

    RepairOutcome {
        repair: found,
        iterations,
        probes: probes_total,
        cost: match ledger {
            Some(l) => l.snapshot(),
            None => apr_sim::ledger::CostSnapshot {
                fitness_evals: probes_total,
                simulated_ms: probes_total * scenario.suite.full_run_cost_ms(),
                critical_path_ms: iterations as u64 * scenario.suite.full_run_cost_ms(),
            },
        },
        leader_arm: alg.leader() + 1,
        mwu_converged: alg.has_converged(),
    }
}

/// Which MWU variant drives the online phase (convenience for binaries and
/// examples that pick a variant by name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VariantChoice {
    /// Standard MWU (one agent per arm).
    Standard,
    /// Slate MWU (slate-sized agent team).
    Slate,
    /// Distributed MWU (population of agents).
    Distributed,
}

impl VariantChoice {
    /// Parse from a CLI-style name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "standard" => Some(VariantChoice::Standard),
            "slate" => Some(VariantChoice::Slate),
            "distributed" => Some(VariantChoice::Distributed),
            _ => None,
        }
    }
}

/// Build the chosen variant over `k` arms with paper-default parameters and
/// run the online phase. Returns `Err` if the variant is intractable at
/// this size (Distributed beyond its population cap).
pub fn repair_with_variant(
    scenario: &BugScenario,
    pool: &MutationPool,
    variant: VariantChoice,
    config: &MwRepairConfig,
    ledger: Option<&CostLedger>,
) -> Result<RepairOutcome, mwu_core::distributed::Intractable> {
    let k = effective_arms(pool.len(), config);
    Ok(match variant {
        VariantChoice::Standard => {
            let mut alg = StandardMwu::new(k, StandardConfig::default());
            repair_with_ledger(scenario, pool, &mut alg, config, ledger)
        }
        VariantChoice::Slate => {
            let mut alg = SlateMwu::new(k, SlateConfig::default());
            repair_with_ledger(scenario, pool, &mut alg, config, ledger)
        }
        VariantChoice::Distributed => {
            let mut alg = DistributedMwu::try_new(k, DistributedConfig::default())?;
            repair_with_ledger(scenario, pool, &mut alg, config, ledger)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_sim::ScenarioKind;
    use mwu_core::{SlateConfig, SlateMwu};

    fn small_scenario() -> (BugScenario, MutationPool) {
        let s = BugScenario::custom(
            "driver-test",
            ScenarioKind::Synthetic,
            60,
            12,
            400,
            15,
            0.06,
            21,
        );
        let pool = s.build_pool(1, None);
        (s, pool)
    }

    #[test]
    fn finds_repair_and_terminates_early() {
        let (s, pool) = small_scenario();
        let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
        let out = repair(&s, &pool, &mut alg, &MwRepairConfig::seeded(3));
        assert!(
            out.is_repaired(),
            "no repair in {} iterations",
            out.iterations
        );
        let rep = out.repair.unwrap();
        assert_eq!(rep.mutations.len(), rep.arm);
        // The reported composition really does repair.
        let verify = s.evaluate(&rep.mutations, None);
        assert!(verify.repaired, "reported repair does not reproduce");
        assert!(out.iterations < 10_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, pool) = small_scenario();
        let run = |seed| {
            let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
            repair(&s, &pool, &mut alg, &MwRepairConfig::seeded(seed))
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.repair, b.repair);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.probes, b.probes);
    }

    #[test]
    fn density_proxy_biases_leader_toward_optimum() {
        // Run without repairs (repair_rate 0) so the bandit runs long
        // enough to learn; the leader arm should approach the scenario's
        // density optimum rather than x=1.
        let s = BugScenario::custom(
            "no-repair",
            ScenarioKind::Synthetic,
            80,
            16,
            400,
            15,
            0.0,
            22,
        );
        let pool = s.build_pool(1, None);
        let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
        let cfg = MwRepairConfig {
            max_iterations: 3000,
            seed: 9,
            reward: RewardMode::DensityProxy,
            max_composition: 512,
        };
        let out = repair(&s, &pool, &mut alg, &cfg);
        assert!(out.repair.is_none());
        let opt = s.density_optimum();
        assert!(
            out.leader_arm >= opt / 3 && out.leader_arm <= opt * 3,
            "leader {} vs optimum {opt}",
            out.leader_arm
        );
    }

    #[test]
    fn fitness_retained_reward_drives_leader_small() {
        let s = BugScenario::custom("ablate", ScenarioKind::Synthetic, 80, 16, 400, 15, 0.0, 23);
        let pool = s.build_pool(1, None);
        let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
        let cfg = MwRepairConfig {
            max_iterations: 3000,
            seed: 9,
            reward: RewardMode::FitnessRetained,
            max_composition: 512,
        };
        let out = repair(&s, &pool, &mut alg, &cfg);
        // Monotone reward ⇒ small compositions dominate.
        assert!(
            out.leader_arm < s.density_optimum(),
            "leader {} not below optimum {}",
            out.leader_arm,
            s.density_optimum()
        );
    }

    #[test]
    fn variant_choice_parses() {
        assert_eq!(
            VariantChoice::parse("Standard"),
            Some(VariantChoice::Standard)
        );
        assert_eq!(VariantChoice::parse("slate"), Some(VariantChoice::Slate));
        assert_eq!(
            VariantChoice::parse("DISTRIBUTED"),
            Some(VariantChoice::Distributed)
        );
        assert_eq!(VariantChoice::parse("genprog"), None);
    }

    #[test]
    fn all_variants_can_repair_small_scenario() {
        let (s, pool) = small_scenario();
        for v in [
            VariantChoice::Standard,
            VariantChoice::Slate,
            VariantChoice::Distributed,
        ] {
            let out = repair_with_variant(&s, &pool, v, &MwRepairConfig::seeded(4), None).unwrap();
            assert!(out.is_repaired(), "{v:?} failed to repair");
        }
    }

    #[test]
    fn ledger_accounts_probes() {
        let (s, pool) = small_scenario();
        let ledger = CostLedger::new();
        let mut alg = SlateMwu::new(pool.len(), SlateConfig::default());
        let out = repair_with_ledger(
            &s,
            &pool,
            &mut alg,
            &MwRepairConfig::seeded(3),
            Some(&ledger),
        );
        assert_eq!(ledger.fitness_evals(), out.probes);
        assert!(ledger.critical_path_ms() <= ledger.simulated_ms());
    }

    #[test]
    #[should_panic]
    fn arm_mismatch_panics() {
        let (s, pool) = small_scenario();
        let mut alg = SlateMwu::new(pool.len() + 1, SlateConfig::default());
        let _ = repair(&s, &pool, &mut alg, &MwRepairConfig::seeded(0));
    }
}
