//! # mwrepair
//!
//! The MWRepair algorithm (paper Fig. 5 / Fig. 6): parallel, online-learning
//! automated program repair.
//!
//! MWRepair recasts search-based APR as a two-phase process:
//!
//! 1. **Precompute** (embarrassingly parallel, amortizable): build a pool
//!    of individually-safe mutations for the program —
//!    [`apr_sim::MutationPool::precompute`].
//! 2. **Online** (a multi-armed bandit): each arm is "compose `x` pooled
//!    mutations into one probe"; an MWU algorithm learns which `x`
//!    maximizes the repair-density proxy while, in parallel, every probe is
//!    also a chance to stumble on the repair and terminate early.
//!
//! The online phase is generic over [`mwu_core::MwuAlgorithm`], so any of
//! the three variants (Standard / Slate / Distributed) can drive it — that
//! is exactly the comparison of the paper's §IV.
//!
//! ```
//! use mwrepair::{effective_arms, repair, MwRepairConfig};
//! use apr_sim::{BugScenario, ScenarioKind};
//! use mwu_core::{SlateMwu, SlateConfig};
//!
//! let scenario =
//!     BugScenario::custom("demo", ScenarioKind::Synthetic, 60, 12, 400, 20, 0.06, 11)
//!         .with_pool_size(300);
//! let pool = scenario.build_pool(1, None);
//! // The bandit's arms are composition sizes 1..=effective_arms(...).
//! let config = MwRepairConfig::seeded(7);
//! let arms = effective_arms(pool.len(), &config);
//! let mut alg = SlateMwu::new(arms, SlateConfig::default());
//! let result = repair(&scenario, &pool, &mut alg, &config);
//! assert!(result.repair.is_some(), "demo scenario should be repairable");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod driver;
pub mod minimize;
pub mod report;

pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_VERSION};
pub use driver::{
    effective_arms, repair, repair_observed, repair_resumable, repair_with_ledger,
    repair_with_variant, CheckpointPolicy, MwRepairConfig, RewardMode, SessionControl,
    SessionResult, VariantChoice,
};
pub use minimize::{minimize_patch, MinimizedPatch};
pub use report::{RepairOutcome, RepairReport};
