//! One daemon-managed repair session: sliced execution, durable
//! checkpointing, and a byte-deterministic trace + report.
//!
//! The daemon drives every session in fixed-size iteration slices. Each
//! slice constructs a fresh algorithm instance of the job's variant, hands
//! it to [`mwrepair::repair_resumable`] with the previous slice's
//! [`Checkpoint`] (the checkpoint *is* the carried state — there is no
//! in-memory algorithm between slices), buffers the slice's trace events
//! in memory, and then persists in a crash-ordered sequence:
//!
//! 1. append the slice's trace bytes to `trace.jsonl` and fsync;
//! 2. atomically replace `session.json` (recorded trace length + the new
//!    checkpoint) — or, on completion, atomically write `report.json`.
//!
//! A crash between (1) and (2) leaves trace bytes past the recorded
//! length; [`SessionRunner::open`] truncates the trace back to the length
//! `session.json` vouches for and re-runs the slice, which re-appends the
//! identical bytes. That is what makes the kill/resume half of the
//! determinism contract hold byte-for-byte.
//!
//! `RunStart` is emitted by the driver at every `repair_resumable` call;
//! the per-slice observer suppresses it on every slice but the first, so
//! a sliced (and resumed) trace is byte-identical to an uninterrupted
//! `repair_observed` trace of the same job.

use crate::protocol::JobSpec;
use apr_sim::ledger::CostSnapshot;
use apr_sim::{BugScenario, CostLedger, MutationPool};
use mwrepair::{
    effective_arms, repair_resumable, Checkpoint, CheckpointError, MwRepairConfig, RepairOutcome,
    SessionControl, SessionResult, VariantChoice,
};
use mwu_core::trace::{JsonlSink, Observer, RunStartEvent, TraceEvent};
use mwu_core::{
    DistributedConfig, DistributedMwu, MwuAlgorithm, SlateConfig, SlateMwu, StandardConfig,
    StandardMwu,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// `session.json` format version.
const META_VERSION: u32 = 1;

/// `report.json` schema tag.
pub const REPORT_SCHEMA: &str = "mwrepaird/v1";

/// A scenario plus its precomputed mutation pool, shared (immutably) by
/// every session that references the same [`crate::ScenarioSpec`].
#[derive(Debug)]
pub struct ScenarioData {
    /// The bug scenario.
    pub scenario: BugScenario,
    /// Its precomputed safe-mutation pool.
    pub pool: MutationPool,
}

/// Why a session could not run or persist.
#[derive(Debug)]
pub enum SessionError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Checkpoint capture / restore failure.
    Checkpoint(CheckpointError),
    /// On-disk session state contradicts itself.
    Corrupt(String),
    /// The job's variant cannot run at this arm count.
    Intractable(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "session I/O error: {e}"),
            SessionError::Checkpoint(e) => write!(f, "session checkpoint error: {e}"),
            SessionError::Corrupt(m) => write!(f, "session state corrupt: {m}"),
            SessionError::Intractable(m) => write!(f, "session intractable: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl From<CheckpointError> for SessionError {
    fn from(e: CheckpointError) -> Self {
        SessionError::Checkpoint(e)
    }
}

/// How a finished session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionStatus {
    /// Ran to a repair or to its iteration cap.
    Completed,
    /// Halted at a round barrier because its tenant's budget ran out; the
    /// checkpoint in `session.json` is retained for a later resume.
    BudgetExhausted,
}

/// The durable per-session result (`report.json`). Contains no wall-clock
/// fields, so it is byte-deterministic like the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Schema tag ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Job id.
    pub job_id: String,
    /// Owning tenant.
    pub tenant: String,
    /// How the session ended.
    pub status: SessionStatus,
    /// Update cycles executed (absolute).
    pub iterations: usize,
    /// Probes issued (absolute).
    pub probes: u64,
    /// Session cost at the end.
    pub cost: CostSnapshot,
    /// Convenience flag: was a repair found?
    pub repaired: bool,
    /// Full outcome for completed sessions (`None` when budget-exhausted).
    pub outcome: Option<RepairOutcome>,
}

impl SessionReport {
    fn completed(job: &JobSpec, outcome: RepairOutcome) -> Self {
        SessionReport {
            schema: REPORT_SCHEMA.into(),
            job_id: job.id.clone(),
            tenant: job.tenant.clone(),
            status: SessionStatus::Completed,
            iterations: outcome.iterations,
            probes: outcome.probes,
            cost: outcome.cost,
            repaired: outcome.is_repaired(),
            outcome: Some(outcome),
        }
    }

    fn budget_exhausted(job: &JobSpec, ck: &Checkpoint) -> Self {
        SessionReport {
            schema: REPORT_SCHEMA.into(),
            job_id: job.id.clone(),
            tenant: job.tenant.clone(),
            status: SessionStatus::BudgetExhausted,
            iterations: ck.iteration,
            probes: ck.probes,
            cost: ck.cost,
            repaired: false,
            outcome: None,
        }
    }

    /// Canonical single-line JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Parse a report document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Durable between-slice state (`session.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SessionMeta {
    version: u32,
    job_id: String,
    /// Bytes of `trace.jsonl` this checkpoint vouches for.
    trace_len: u64,
    checkpoint: Checkpoint,
}

/// One session under daemon management.
#[derive(Debug)]
pub struct SessionRunner {
    job: JobSpec,
    dir: PathBuf,
    data: Arc<ScenarioData>,
    config: MwRepairConfig,
    checkpoint: Option<Checkpoint>,
    trace_len: u64,
    report: Option<SessionReport>,
    /// Report was already on disk when the session was opened (a previous
    /// daemon run finished it) — excluded from this run's latency stats.
    preexisting: bool,
    error: Option<SessionError>,
    /// Wall-clock from daemon start to the completion barrier, filled in
    /// by the daemon. Summary-only: never written into the work dir.
    pub(crate) wall_ms: Option<f64>,
}

impl SessionRunner {
    /// Open (or re-open) the session rooted at
    /// `workdir/tenants/<tenant>/<job-id>/`, reconciling any on-disk state
    /// from a previous daemon run: a report means the session is done; a
    /// `session.json` resumes from its checkpoint after truncating the
    /// trace to the recorded length; otherwise the session starts fresh.
    pub fn open(
        job: JobSpec,
        data: Arc<ScenarioData>,
        workdir: &Path,
    ) -> Result<Self, SessionError> {
        let dir = workdir.join("tenants").join(&job.tenant).join(&job.id);
        std::fs::create_dir_all(&dir)?;
        let mut config = MwRepairConfig::seeded(job.seed);
        config.max_iterations = job.max_iterations;
        let mut runner = SessionRunner {
            job,
            dir,
            data,
            config,
            checkpoint: None,
            trace_len: 0,
            report: None,
            preexisting: false,
            error: None,
            wall_ms: None,
        };

        if runner.report_path().exists() {
            let text = std::fs::read_to_string(runner.report_path())?;
            let report = SessionReport::from_json(text.trim())
                .map_err(|e| SessionError::Corrupt(format!("report.json: {e}")))?;
            if report.job_id != runner.job.id {
                return Err(SessionError::Corrupt(format!(
                    "report.json belongs to job {:?}, expected {:?}",
                    report.job_id, runner.job.id
                )));
            }
            runner.report = Some(report);
            runner.preexisting = true;
            return Ok(runner);
        }

        let trace = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(runner.trace_path())?;
        if runner.meta_path().exists() {
            let text = std::fs::read_to_string(runner.meta_path())?;
            let meta: SessionMeta = serde_json::from_str(text.trim())
                .map_err(|e| SessionError::Corrupt(format!("session.json: {e}")))?;
            if meta.version != META_VERSION {
                return Err(SessionError::Corrupt(format!(
                    "session.json version {} (this build writes {META_VERSION})",
                    meta.version
                )));
            }
            if meta.job_id != runner.job.id {
                return Err(SessionError::Corrupt(format!(
                    "session.json belongs to job {:?}, expected {:?}",
                    meta.job_id, runner.job.id
                )));
            }
            let on_disk = trace.metadata()?.len();
            if on_disk < meta.trace_len {
                return Err(SessionError::Corrupt(format!(
                    "trace.jsonl is {on_disk} bytes but session.json recorded {}",
                    meta.trace_len
                )));
            }
            // Drop any bytes a torn slice appended after the last durable
            // meta write; the re-run slice re-appends them identically.
            trace.set_len(meta.trace_len)?;
            trace.sync_all()?;
            runner.trace_len = meta.trace_len;
            runner.checkpoint = Some(meta.checkpoint);
        } else {
            // Fresh session (or a crash before the first meta write):
            // the trace restarts from byte zero.
            trace.set_len(0)?;
            trace.sync_all()?;
        }
        Ok(runner)
    }

    /// The job this session runs.
    pub fn job(&self) -> &JobSpec {
        &self.job
    }

    /// Session directory (`tenants/<tenant>/<job-id>/`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Still has work to do (no report, no error)?
    pub fn is_active(&self) -> bool {
        self.report.is_none() && self.error.is_none()
    }

    /// The durable report, once the session finished.
    pub fn report(&self) -> Option<&SessionReport> {
        self.report.as_ref()
    }

    /// Did this daemon run finish the session (vs. a previous one)?
    pub fn completed_this_run(&self) -> bool {
        self.report.is_some() && !self.preexisting
    }

    /// Completion latency recorded by the daemon, if it finished this run.
    pub fn wall_ms(&self) -> Option<f64> {
        self.wall_ms
    }

    /// Take the first error this session hit, if any.
    pub fn take_error(&mut self) -> Option<SessionError> {
        self.error.take()
    }

    /// The session's cost so far: the report's total when finished, else
    /// the last checkpoint's snapshot, else zero. Deterministic — this is
    /// the quantity tenant budgets sum at round barriers.
    pub fn cost(&self) -> CostSnapshot {
        if let Some(r) = &self.report {
            return r.cost;
        }
        if let Some(ck) = &self.checkpoint {
            return ck.cost;
        }
        CostSnapshot {
            fitness_evals: 0,
            simulated_ms: 0,
            critical_path_ms: 0,
        }
    }

    /// Run one slice of at most `slice_iterations` update cycles. Errors
    /// are latched into the runner (this is called inside a parallel
    /// region); the daemon surfaces them at the next barrier.
    pub fn run_slice(&mut self, slice_iterations: usize) {
        if !self.is_active() {
            return;
        }
        if let Err(e) = self.try_slice(slice_iterations.max(1)) {
            self.error = Some(e);
        }
    }

    fn try_slice(&mut self, slice: usize) -> Result<(), SessionError> {
        let arms = effective_arms(self.data.pool.len(), &self.config);
        match self.job.algorithm {
            VariantChoice::Standard => {
                self.drive(StandardMwu::new(arms, StandardConfig::default()), slice)
            }
            VariantChoice::Slate => self.drive(SlateMwu::new(arms, SlateConfig::default()), slice),
            VariantChoice::Distributed => {
                let alg = DistributedMwu::try_new(arms, DistributedConfig::default())
                    .map_err(|e| SessionError::Intractable(e.to_string()))?;
                self.drive(alg, slice)
            }
        }
    }

    fn drive<A>(&mut self, mut alg: A, slice: usize) -> Result<(), SessionError>
    where
        A: MwuAlgorithm + Serialize + Deserialize,
    {
        // Fresh per-slice ledger; repair_resumable restores it from the
        // checkpoint when resuming, so totals stay absolute.
        let ledger = CostLedger::new();
        let mut sink = SuppressRunStart {
            inner: JsonlSink::new(Vec::new()),
            suppress: self.checkpoint.is_some(),
        };
        let control = SessionControl {
            checkpoint: None,
            halt_after_iterations: Some(slice),
        };
        let result = repair_resumable(
            &self.data.scenario,
            &self.data.pool,
            &mut alg,
            &self.config,
            Some(&ledger),
            &mut sink,
            &control,
            self.checkpoint.as_ref(),
        )?;
        self.append_trace(&sink.inner.into_inner())?;
        match result {
            SessionResult::Halted { checkpoint } => {
                let meta = SessionMeta {
                    version: META_VERSION,
                    job_id: self.job.id.clone(),
                    trace_len: self.trace_len,
                    checkpoint: *checkpoint,
                };
                let mut doc = serde_json::to_string(&meta).expect("meta serializes");
                doc.push('\n');
                write_atomic(&self.meta_path(), doc.as_bytes())?;
                self.checkpoint = Some(meta.checkpoint);
            }
            SessionResult::Complete(outcome) => {
                let report = SessionReport::completed(&self.job, outcome);
                let mut doc = report.to_json();
                doc.push('\n');
                write_atomic(&self.report_path(), doc.as_bytes())?;
                // The checkpoint is spent; its absence (with a report
                // present) is unambiguous on reload.
                let _ = std::fs::remove_file(self.meta_path());
                self.report = Some(report);
            }
        }
        Ok(())
    }

    /// Finish the session as budget-exhausted: write the durable report
    /// from the last checkpoint, which stays on disk so the session can be
    /// resumed after a budget raise (delete `report.json` to re-arm it).
    pub fn finish_budget_exhausted(&mut self) -> Result<(), SessionError> {
        if self.report.is_some() {
            return Ok(());
        }
        let ck = self.checkpoint.as_ref().ok_or_else(|| {
            SessionError::Corrupt("budget halt before any slice completed".into())
        })?;
        let report = SessionReport::budget_exhausted(&self.job, ck);
        let mut doc = report.to_json();
        doc.push('\n');
        write_atomic(&self.report_path(), doc.as_bytes())?;
        self.report = Some(report);
        Ok(())
    }

    /// Path of the session's JSONL trace.
    pub fn trace_path(&self) -> PathBuf {
        self.dir.join("trace.jsonl")
    }

    /// Path of the session's durable report.
    pub fn report_path(&self) -> PathBuf {
        self.dir.join("report.json")
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join("session.json")
    }

    fn append_trace(&mut self, bytes: &[u8]) -> Result<(), SessionError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.trace_path())?;
        f.write_all(bytes)?;
        f.sync_all()?;
        self.trace_len += bytes.len() as u64;
        Ok(())
    }
}

/// Per-slice observer: forwards everything to the inner sink except the
/// `RunStart` the driver re-emits at every resumed `repair_resumable`
/// call, so the concatenated slice traces equal one uninterrupted trace.
struct SuppressRunStart<O> {
    inner: O,
    suppress: bool,
}

impl<O: Observer> Observer for SuppressRunStart<O> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn on_event(&mut self, event: &TraceEvent) {
        self.inner.on_event(event);
    }

    fn on_run_start(&mut self, e: RunStartEvent) {
        if !self.suppress {
            self.inner.on_run_start(e);
        }
    }
}

/// Write `contents` to `path` atomically and durably: tmp file, fsync,
/// rename, fsync the parent directory (same discipline as
/// `mwrepair::Checkpoint::save_atomic`).
pub(crate) fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let mut tmp_os = path.as_os_str().to_owned();
    tmp_os.push(".tmp");
    let tmp = PathBuf::from(tmp_os);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> std::io::Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ScenarioSpec;

    fn test_job(id: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            tenant: "t0".into(),
            scenario: ScenarioSpec::Synthetic {
                name: "session-test".into(),
                options: 24,
                x_star: 6,
                statements: 200,
                tests: 10,
                repair_rate: 0.0,
                world_seed: 5,
                pool_size: None,
            },
            algorithm: VariantChoice::Standard,
            seed: 11,
            max_iterations: 9,
        }
    }

    fn data_for(job: &JobSpec) -> Arc<ScenarioData> {
        let scenario = match &job.scenario {
            ScenarioSpec::Synthetic { .. } | ScenarioSpec::Catalog { .. } => {
                job.scenario.build().unwrap()
            }
        };
        let pool = scenario.build_pool(1, None);
        Arc::new(ScenarioData { scenario, pool })
    }

    fn tmp_workdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mwrd-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_to_completion(workdir: &Path, job: &JobSpec, slice: usize) -> (Vec<u8>, String) {
        let data = data_for(job);
        let mut s = SessionRunner::open(job.clone(), data, workdir).unwrap();
        for _ in 0..1000 {
            if !s.is_active() {
                break;
            }
            s.run_slice(slice);
            if let Some(e) = s.take_error() {
                panic!("slice error: {e}");
            }
        }
        assert!(s.report().is_some(), "session did not finish");
        let trace = std::fs::read(s.trace_path()).unwrap();
        let report = std::fs::read_to_string(s.report_path()).unwrap();
        (trace, report)
    }

    #[test]
    fn sliced_trace_matches_uninterrupted_repair_observed() {
        let job = test_job("slice-eq");
        let data = data_for(&job);
        // Uninterrupted library-level run with a plain JSONL sink.
        let mut config = MwRepairConfig::seeded(job.seed);
        config.max_iterations = job.max_iterations;
        let arms = effective_arms(data.pool.len(), &config);
        let mut alg = StandardMwu::new(arms, StandardConfig::default());
        let mut sink = JsonlSink::new(Vec::new());
        mwrepair::repair_observed(
            &data.scenario,
            &data.pool,
            &mut alg,
            &config,
            None,
            &mut sink,
        );
        let reference = sink.into_inner();

        let workdir = tmp_workdir("slice-eq");
        let (trace, _) = run_to_completion(&workdir, &job, 2);
        assert_eq!(
            trace, reference,
            "sliced daemon trace differs from the uninterrupted library trace"
        );
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn slice_size_does_not_change_trace_bytes() {
        let job = test_job("slice-size");
        let wa = tmp_workdir("slice-a");
        let wb = tmp_workdir("slice-b");
        let (ta, ra) = run_to_completion(&wa, &job, 2);
        let (tb, rb) = run_to_completion(&wb, &job, 7);
        assert_eq!(ta, tb);
        assert_eq!(ra, rb);
        std::fs::remove_dir_all(&wa).unwrap();
        std::fs::remove_dir_all(&wb).unwrap();
    }

    #[test]
    fn reopen_mid_flight_resumes_byte_identically() {
        let job = test_job("reopen");
        let reference_dir = tmp_workdir("reopen-ref");
        let (reference_trace, reference_report) = run_to_completion(&reference_dir, &job, 3);

        let workdir = tmp_workdir("reopen");
        let data = data_for(&job);
        // Two slices, then drop the runner (simulated daemon death).
        {
            let mut s = SessionRunner::open(job.clone(), Arc::clone(&data), &workdir).unwrap();
            s.run_slice(3);
            s.run_slice(3);
            assert!(s.is_active());
        }
        // Re-open and also simulate a torn post-meta append.
        {
            let trace_path = workdir
                .join("tenants")
                .join(&job.tenant)
                .join(&job.id)
                .join("trace.jsonl");
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&trace_path)
                .unwrap();
            f.write_all(b"{\"torn\":").unwrap();
        }
        let mut s = SessionRunner::open(job.clone(), data, &workdir).unwrap();
        while s.is_active() {
            s.run_slice(3);
            assert!(s.take_error().is_none());
        }
        let trace = std::fs::read(s.trace_path()).unwrap();
        let report = std::fs::read_to_string(s.report_path()).unwrap();
        assert_eq!(trace, reference_trace, "resume changed the trace bytes");
        assert_eq!(report, reference_report);
        std::fs::remove_dir_all(&workdir).unwrap();
        std::fs::remove_dir_all(&reference_dir).unwrap();
    }

    #[test]
    fn reopen_after_completion_is_terminal() {
        let job = test_job("done");
        let workdir = tmp_workdir("done");
        let (_, report) = run_to_completion(&workdir, &job, 4);
        let data = data_for(&job);
        let s = SessionRunner::open(job.clone(), data, &workdir).unwrap();
        assert!(!s.is_active());
        assert!(!s.completed_this_run());
        assert_eq!(s.report().unwrap().to_json() + "\n", report);
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_and_cleans_tmp() {
        let dir = tmp_workdir("atomic");
        let p = dir.join("doc.json");
        write_atomic(&p, b"one").unwrap();
        write_atomic(&p, b"two").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"two");
        assert!(!dir.join("doc.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
