//! One daemon-managed repair session: sliced execution, durable
//! checkpointing, and a byte-deterministic trace + report.
//!
//! The daemon drives every session in fixed-size iteration slices. Each
//! slice constructs a fresh algorithm instance of the job's variant, hands
//! it to [`mwrepair::repair_resumable`] with the previous slice's
//! [`Checkpoint`] (the checkpoint *is* the carried state — there is no
//! in-memory algorithm between slices), buffers the slice's trace events
//! in memory, and then persists in a crash-ordered sequence:
//!
//! 1. append the slice's trace bytes to `trace.jsonl` and fsync;
//! 2. atomically replace `session.json` (recorded trace length + the new
//!    checkpoint) — or, on completion, atomically write `report.json`.
//!
//! A crash between (1) and (2) leaves trace bytes past the recorded
//! length; [`SessionRunner::open`] truncates the trace back to the length
//! `session.json` vouches for and re-runs the slice, which re-appends the
//! identical bytes. That is what makes the kill/resume half of the
//! determinism contract hold byte-for-byte.
//!
//! `RunStart` is emitted by the driver at every `repair_resumable` call;
//! the per-slice observer suppresses it on every slice but the first, so
//! a sliced (and resumed) trace is byte-identical to an uninterrupted
//! `repair_observed` trace of the same job.
//!
//! ## Hostile disks and quarantine
//!
//! Every byte goes through the session's [`Vfs`]. Transient I/O failures
//! retry with bounded exponential backoff ([`crate::vfs::with_retries`]);
//! a failure that survives every retry — or a panic caught by the daemon
//! inside the parallel shard — **quarantines** the session: the error is
//! latched, the daemon calls [`SessionRunner::quarantine_if_failed`] at
//! the next round barrier, and a durable [`QuarantineRecord`] post-mortem
//! (`quarantine.json`) is written beside the retained checkpoint. The
//! checkpoint only advances after a durable `session.json` write, so a
//! failed slice is never charged to the tenant's budget and a re-opened
//! session resumes from the last durable state to byte-identical
//! completion. Re-opening a quarantined session under a working disk
//! clears the post-mortem automatically (re-arm).

use crate::protocol::JobSpec;
use crate::vfs::{tmp_path, with_retries, RealVfs, StorageOp, Vfs};
use apr_sim::ledger::CostSnapshot;
use apr_sim::{BugScenario, CostLedger, MutationPool};
use mwrepair::{
    effective_arms, repair_resumable, Checkpoint, CheckpointError, MwRepairConfig, RepairOutcome,
    SessionControl, SessionResult, VariantChoice,
};
use mwu_core::trace::{JsonlSink, Observer, RunStartEvent, TraceEvent};
use mwu_core::{
    DistributedConfig, DistributedMwu, MwuAlgorithm, SlateConfig, SlateMwu, StandardConfig,
    StandardMwu,
};
use serde::{Deserialize, Serialize};
use simnet::faults::RetryPolicy;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// `session.json` format version.
const META_VERSION: u32 = 1;

/// `report.json` schema tag.
pub const REPORT_SCHEMA: &str = "mwrepaird/v1";

/// `quarantine.json` schema tag.
pub const QUARANTINE_SCHEMA: &str = "mwrepaird-quarantine/v1";

/// A scenario plus its precomputed mutation pool, shared (immutably) by
/// every session that references the same [`crate::ScenarioSpec`].
#[derive(Debug)]
pub struct ScenarioData {
    /// The bug scenario.
    pub scenario: BugScenario,
    /// Its precomputed safe-mutation pool.
    pub pool: MutationPool,
}

/// Why a session could not run or persist.
#[derive(Debug)]
pub enum SessionError {
    /// Filesystem failure (unretried — raised outside the vfs path).
    Io(std::io::Error),
    /// A storage operation failed through every retry.
    Storage(crate::vfs::StorageFailure),
    /// The session panicked inside the parallel shard.
    Panicked(String),
    /// Checkpoint capture / restore failure.
    Checkpoint(CheckpointError),
    /// On-disk session state contradicts itself.
    Corrupt(String),
    /// The job's variant cannot run at this arm count.
    Intractable(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "session I/O error: {e}"),
            SessionError::Storage(e) => write!(f, "session storage failure: {e}"),
            SessionError::Panicked(m) => write!(f, "session panicked: {m}"),
            SessionError::Checkpoint(e) => write!(f, "session checkpoint error: {e}"),
            SessionError::Corrupt(m) => write!(f, "session state corrupt: {m}"),
            SessionError::Intractable(m) => write!(f, "session intractable: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl From<crate::vfs::StorageFailure> for SessionError {
    fn from(e: crate::vfs::StorageFailure) -> Self {
        SessionError::Storage(e)
    }
}

impl From<CheckpointError> for SessionError {
    fn from(e: CheckpointError) -> Self {
        SessionError::Checkpoint(e)
    }
}

/// How a finished session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionStatus {
    /// Ran to a repair or to its iteration cap.
    Completed,
    /// Halted at a round barrier because its tenant's budget ran out; the
    /// checkpoint in `session.json` is retained for a later resume.
    BudgetExhausted,
}

/// The durable per-session result (`report.json`). Contains no wall-clock
/// fields, so it is byte-deterministic like the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Schema tag ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Job id.
    pub job_id: String,
    /// Owning tenant.
    pub tenant: String,
    /// How the session ended.
    pub status: SessionStatus,
    /// Update cycles executed (absolute).
    pub iterations: usize,
    /// Probes issued (absolute).
    pub probes: u64,
    /// Session cost at the end.
    pub cost: CostSnapshot,
    /// Convenience flag: was a repair found?
    pub repaired: bool,
    /// Full outcome for completed sessions (`None` when budget-exhausted).
    pub outcome: Option<RepairOutcome>,
}

impl SessionReport {
    fn completed(job: &JobSpec, outcome: RepairOutcome) -> Self {
        SessionReport {
            schema: REPORT_SCHEMA.into(),
            job_id: job.id.clone(),
            tenant: job.tenant.clone(),
            status: SessionStatus::Completed,
            iterations: outcome.iterations,
            probes: outcome.probes,
            cost: outcome.cost,
            repaired: outcome.is_repaired(),
            outcome: Some(outcome),
        }
    }

    fn budget_exhausted(job: &JobSpec, ck: &Checkpoint) -> Self {
        SessionReport {
            schema: REPORT_SCHEMA.into(),
            job_id: job.id.clone(),
            tenant: job.tenant.clone(),
            status: SessionStatus::BudgetExhausted,
            iterations: ck.iteration,
            probes: ck.probes,
            cost: ck.cost,
            repaired: false,
            outcome: None,
        }
    }

    /// Canonical single-line JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Parse a report document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Durable post-mortem of a quarantined session (`quarantine.json`).
///
/// Written atomically beside the retained checkpoint when a session is
/// quarantined; contains no wall-clock fields. A later
/// [`SessionRunner::open`] under a working disk removes it and resumes
/// the session from its last durable checkpoint (re-arm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Schema tag ([`QUARANTINE_SCHEMA`]).
    pub schema: String,
    /// Job id.
    pub job_id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Failure class: `storage`, `panic`, `io`, `checkpoint`, `corrupt`,
    /// or `intractable`.
    pub kind: String,
    /// The storage operation that failed, for `storage` failures.
    pub op: Option<String>,
    /// The path it failed on, for `storage` failures.
    pub path: Option<String>,
    /// Attempts made (original + retries; 1 for non-storage failures).
    pub attempts: u32,
    /// The error chain, first attempt to last.
    pub errors: Vec<String>,
    /// Update cycles in the last checkpoint the session believed durable.
    pub last_checkpoint_iteration: Option<usize>,
    /// `trace.jsonl` bytes the last durable `session.json` vouches for —
    /// exactly where a re-armed resume restarts from.
    pub last_durable_trace_len: u64,
}

impl QuarantineRecord {
    /// Canonical single-line JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("quarantine record serializes")
    }

    /// Parse a quarantine document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Durable between-slice state (`session.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SessionMeta {
    version: u32,
    job_id: String,
    /// Logical trace bytes (sum over segments) this checkpoint vouches for.
    trace_len: u64,
    /// Per-segment durable lengths (segment index — `trace.jsonl`,
    /// `trace.001.jsonl`, …), present when the session has ever rotated.
    /// Omitted for single-segment sessions, whose metas stay byte-identical
    /// to the pre-rotation format; readers then treat `trace_len` as the
    /// length of segment 0.
    segments: Option<Vec<u64>>,
    checkpoint: Checkpoint,
}

impl SessionMeta {
    /// The durable per-segment lengths this meta vouches for.
    fn segment_lens(&self) -> Vec<u64> {
        match &self.segments {
            Some(s) => s.clone(),
            None if self.trace_len > 0 => vec![self.trace_len],
            None => Vec::new(),
        }
    }
}

/// One session under daemon management.
#[derive(Debug)]
pub struct SessionRunner {
    job: JobSpec,
    dir: PathBuf,
    data: Arc<ScenarioData>,
    config: MwRepairConfig,
    vfs: Arc<dyn Vfs>,
    retry: RetryPolicy,
    checkpoint: Option<Checkpoint>,
    /// Rotate the trace into a new segment once the current one reaches
    /// this many bytes (`None`: one unbounded `trace.jsonl`, the
    /// pre-rotation behaviour).
    segment_cap: Option<u64>,
    /// Current on-disk length of every trace segment, in segment order.
    /// The logical trace is their in-order concatenation.
    segments: Vec<u64>,
    /// Logical trace bytes (sum of `segments`).
    trace_len: u64,
    /// Trace bytes the last durable `session.json` / `report.json` write
    /// vouches for (`trace_len` may run ahead when a later write failed).
    durable_trace_len: u64,
    report: Option<SessionReport>,
    /// Report was already on disk when the session was opened (a previous
    /// daemon run finished it) — excluded from this run's latency stats.
    preexisting: bool,
    error: Option<SessionError>,
    quarantine: Option<QuarantineRecord>,
    /// Storage retries performed on this session's behalf.
    io_retries: u64,
    /// Deferred-durability mode: slice artifacts are staged and only made
    /// durable (and vouched for) at the daemon's group-commit barrier.
    group_commit: bool,
    /// Artifacts staged in the current durability epoch.
    staged: EpochStage,
    /// Wall-clock from daemon start to the completion barrier, filled in
    /// by the daemon. Summary-only: never written into the work dir.
    pub(crate) wall_ms: Option<f64>,
}

/// Slice artifacts staged during one durability epoch (group-commit
/// mode): bytes written since the last round barrier that are not yet
/// durable and not yet vouched for. The barrier makes `appends` and the
/// `<doc>.tmp` files durable in one batched pass; `commit_epoch` then
/// publishes the staged replaces and promotes checkpoint/report state.
#[derive(Debug, Default)]
struct EpochStage {
    /// Trace segments this epoch appended to (barrier sync targets).
    appends: Vec<PathBuf>,
    /// Final paths of staged atomic replaces, in commit order; each has
    /// a written-but-unsynced `<path>.tmp` until the barrier.
    docs: Vec<PathBuf>,
    /// Files to remove once the staged replaces have committed (the
    /// spent `session.json` after a completion).
    removals: Vec<PathBuf>,
    /// Staged `session.json` vouch: `(trace_len, checkpoint)` to promote
    /// into `durable_trace_len` / `checkpoint` at commit.
    meta: Option<(u64, Checkpoint)>,
    /// Staged completion report, promoted at commit.
    report: Option<SessionReport>,
}

impl EpochStage {
    fn is_empty(&self) -> bool {
        self.appends.is_empty() && self.docs.is_empty() && self.removals.is_empty()
    }
}

impl SessionRunner {
    /// Open (or re-open) the session on the real filesystem with the
    /// default retry policy. See [`SessionRunner::open_on`].
    pub fn open(
        job: JobSpec,
        data: Arc<ScenarioData>,
        workdir: &Path,
    ) -> Result<Self, SessionError> {
        Self::open_on(
            job,
            data,
            workdir,
            Arc::new(RealVfs),
            RetryPolicy::default(),
        )
    }

    /// [`SessionRunner::open_on`] with trace rotation: once the current
    /// trace segment reaches `segment_cap` bytes, the next slice's events
    /// append to a fresh `trace.NNN.jsonl` segment. The in-order
    /// concatenation of all segments is byte-identical to the single
    /// `trace.jsonl` an uncapped session writes.
    pub fn open_with(
        job: JobSpec,
        data: Arc<ScenarioData>,
        workdir: &Path,
        vfs: Arc<dyn Vfs>,
        retry: RetryPolicy,
        segment_cap: Option<u64>,
    ) -> Result<Self, SessionError> {
        let mut runner = Self::open_on(job, data, workdir, vfs, retry)?;
        runner.segment_cap = segment_cap.map(|c| c.max(1));
        Ok(runner)
    }

    /// Open (or re-open) the session rooted at
    /// `workdir/tenants/<tenant>/<job-id>/` through `vfs`, reconciling any
    /// on-disk state from a previous daemon run: a report means the
    /// session is done; a `session.json` resumes from its checkpoint
    /// after truncating the trace to the recorded length; a
    /// `quarantine.json` without a report is cleared (re-arm); orphaned
    /// `*.tmp` staging files from crashed atomic writes are swept.
    ///
    /// Always returns `Ok`: reconciliation failures are latched into the
    /// runner (the disk may be mid-tantrum), so the daemon quarantines
    /// the one affected session at its first barrier instead of refusing
    /// the whole batch.
    pub fn open_on(
        job: JobSpec,
        data: Arc<ScenarioData>,
        workdir: &Path,
        vfs: Arc<dyn Vfs>,
        retry: RetryPolicy,
    ) -> Result<Self, SessionError> {
        let dir = workdir.join("tenants").join(&job.tenant).join(&job.id);
        let mut config = MwRepairConfig::seeded(job.seed);
        config.max_iterations = job.max_iterations;
        let mut runner = SessionRunner {
            job,
            dir,
            data,
            config,
            vfs,
            retry,
            checkpoint: None,
            segment_cap: None,
            segments: Vec::new(),
            trace_len: 0,
            durable_trace_len: 0,
            report: None,
            preexisting: false,
            error: None,
            quarantine: None,
            io_retries: 0,
            group_commit: false,
            staged: EpochStage::default(),
            wall_ms: None,
        };
        if let Err(e) = runner.reconcile_disk() {
            runner.error = Some(e);
        }
        Ok(runner)
    }

    /// Bring in-memory state in line with whatever a previous run (or
    /// crash) left on disk.
    fn reconcile_disk(&mut self) -> Result<(), SessionError> {
        let dir = self.dir.clone();
        self.retrying(StorageOp::CreateDir, &dir, |vfs| vfs.create_dir_all(&dir))?;

        // Startup sweep: a crash between "write <doc>.tmp" and "rename"
        // strands a partial tmp file; remove them so a poisoned tmp can
        // never shadow (or be mistaken for) the real document.
        for doc in [self.meta_path(), self.report_path(), self.quarantine_path()] {
            let tmp = tmp_path(&doc);
            if self.vfs.exists(&tmp) {
                self.retrying(StorageOp::Remove, &tmp, |vfs| vfs.remove_file(&tmp))?;
            }
        }

        if self.vfs.exists(&self.report_path()) {
            let path = self.report_path();
            let bytes = self.retrying(StorageOp::Read, &path, |vfs| vfs.read(&path))?;
            let text = String::from_utf8_lossy(&bytes);
            let report = SessionReport::from_json(text.trim())
                .map_err(|e| SessionError::Corrupt(format!("report.json: {e}")))?;
            if report.job_id != self.job.id {
                return Err(SessionError::Corrupt(format!(
                    "report.json belongs to job {:?}, expected {:?}",
                    report.job_id, self.job.id
                )));
            }
            self.report = Some(report);
            self.preexisting = true;
            // Heal leftovers a hostile disk blocked the completing run
            // from removing: the report is terminal, nothing else counts.
            let stale = self.quarantine_path();
            if self.vfs.exists(&stale) {
                self.retrying(StorageOp::Remove, &stale, |vfs| vfs.remove_file(&stale))?;
            }
            // Recover segment lengths from disk so `read_trace` sees the
            // whole rotated trace (the report is written only after every
            // trace byte landed durably, so on-disk lengths are exact).
            let mut segs = Vec::new();
            for i in 0.. {
                let seg = self.trace_segment_path(i);
                if !self.vfs.exists(&seg) {
                    break;
                }
                segs.push(self.retrying(StorageOp::Len, &seg, |vfs| vfs.file_len(&seg))?);
            }
            self.trace_len = segs.iter().sum();
            self.durable_trace_len = self.trace_len;
            self.segments = segs;
            return Ok(());
        }

        // A post-mortem without a report: the session was quarantined.
        // Re-opening is the re-arm — clear it and resume from the
        // checkpoint as if the hostile disk had never interfered.
        let quarantine = self.quarantine_path();
        if self.vfs.exists(&quarantine) {
            self.retrying(StorageOp::Remove, &quarantine, |vfs| {
                vfs.remove_file(&quarantine)
            })?;
        }

        if self.vfs.exists(&self.meta_path()) {
            let path = self.meta_path();
            let bytes = self.retrying(StorageOp::Read, &path, |vfs| vfs.read(&path))?;
            let text = String::from_utf8_lossy(&bytes);
            let meta: SessionMeta = serde_json::from_str(text.trim())
                .map_err(|e| SessionError::Corrupt(format!("session.json: {e}")))?;
            if meta.version != META_VERSION {
                return Err(SessionError::Corrupt(format!(
                    "session.json version {} (this build writes {META_VERSION})",
                    meta.version
                )));
            }
            if meta.job_id != self.job.id {
                return Err(SessionError::Corrupt(format!(
                    "session.json belongs to job {:?}, expected {:?}",
                    meta.job_id, self.job.id
                )));
            }
            let durable = meta.segment_lens();
            if durable.iter().sum::<u64>() != meta.trace_len {
                return Err(SessionError::Corrupt(format!(
                    "session.json segment lengths {:?} do not sum to trace_len {}",
                    durable, meta.trace_len
                )));
            }
            // Per segment: drop any bytes a torn slice appended after the
            // last durable meta write; the re-run slice re-appends them
            // identically. Segments past the durable index are wholly
            // torn (rotation raced the crash) and are deleted outright.
            for (i, &len) in durable.iter().enumerate() {
                let seg = self.trace_segment_path(i);
                let on_disk = self.retrying(StorageOp::Len, &seg, |vfs| vfs.file_len(&seg))?;
                if on_disk < len {
                    return Err(SessionError::Corrupt(format!(
                        "{} is {on_disk} bytes but session.json recorded {len}",
                        seg.display()
                    )));
                }
                self.retrying(StorageOp::Truncate, &seg, |vfs| {
                    vfs.truncate_sync(&seg, len)
                })?;
            }
            self.remove_segments_from(durable.len().max(1))?;
            if durable.is_empty() {
                // A zero-length durable trace still pins segment 0 empty.
                let seg = self.trace_path();
                self.retrying(StorageOp::Truncate, &seg, |vfs| vfs.truncate_sync(&seg, 0))?;
            }
            self.segments = durable;
            self.trace_len = meta.trace_len;
            self.durable_trace_len = meta.trace_len;
            self.checkpoint = Some(meta.checkpoint);
        } else {
            // Fresh session (or a crash before the first meta write):
            // the trace restarts from byte zero, with no stray segments.
            // An absent or already-empty trace needs no truncate — and no
            // fsync: nothing vouches for byte zero, so a crash here just
            // re-runs this same reconciliation.
            let trace = self.trace_path();
            if self.retrying(StorageOp::Len, &trace, |vfs| vfs.file_len(&trace))? > 0 {
                self.retrying(StorageOp::Truncate, &trace, |vfs| {
                    vfs.truncate_sync(&trace, 0)
                })?;
            }
            self.remove_segments_from(1)?;
        }
        Ok(())
    }

    /// Delete every on-disk trace segment with index ≥ `from` (segments
    /// are created in order, so stop at the first gap).
    fn remove_segments_from(&mut self, from: usize) -> Result<(), SessionError> {
        for i in from.max(1).. {
            let seg = self.trace_segment_path(i);
            if !self.vfs.exists(&seg) {
                break;
            }
            self.retrying(StorageOp::Remove, &seg, |vfs| vfs.remove_file(&seg))?;
        }
        Ok(())
    }

    /// Run `f` against the session's vfs under the retry policy, counting
    /// retries toward this session's `io_retries`.
    fn retrying<T>(
        &mut self,
        op: StorageOp,
        path: &Path,
        mut f: impl FnMut(&dyn Vfs) -> std::io::Result<T>,
    ) -> Result<T, SessionError> {
        let vfs = Arc::clone(&self.vfs);
        let policy = self.retry;
        with_retries(&policy, op, path, &mut self.io_retries, || f(vfs.as_ref()))
            .map_err(SessionError::Storage)
    }

    /// The job this session runs.
    pub fn job(&self) -> &JobSpec {
        &self.job
    }

    /// Session directory (`tenants/<tenant>/<job-id>/`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Still has work to do (no report, no error, not quarantined)?
    pub fn is_active(&self) -> bool {
        self.report.is_none() && self.error.is_none() && self.quarantine.is_none()
    }

    /// The durable report, once the session finished.
    pub fn report(&self) -> Option<&SessionReport> {
        self.report.as_ref()
    }

    /// The quarantine post-mortem, if this session was quarantined.
    pub fn quarantine(&self) -> Option<&QuarantineRecord> {
        self.quarantine.as_ref()
    }

    /// Storage retries performed on this session's behalf.
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Did this daemon run finish the session (vs. a previous one)?
    pub fn completed_this_run(&self) -> bool {
        self.report.is_some() && !self.preexisting
    }

    /// Completion latency recorded by the daemon, if it finished this run.
    pub fn wall_ms(&self) -> Option<f64> {
        self.wall_ms
    }

    /// Take the first error this session hit, if any.
    pub fn take_error(&mut self) -> Option<SessionError> {
        self.error.take()
    }

    /// Latch an error raised on this session's behalf outside a slice
    /// (e.g. a budget-report write failure); the next barrier
    /// quarantines it.
    pub(crate) fn latch(&mut self, error: SessionError) {
        if self.error.is_none() {
            self.error = Some(error);
        }
    }

    /// The session's cost so far: the report's total when finished, else
    /// the last checkpoint's snapshot, else zero. Deterministic — this is
    /// the quantity tenant budgets sum at round barriers. The checkpoint
    /// only advances after a durable `session.json` write, so a slice
    /// that failed to persist is never charged.
    pub fn cost(&self) -> CostSnapshot {
        if let Some(r) = &self.report {
            return r.cost;
        }
        if let Some(ck) = &self.checkpoint {
            return ck.cost;
        }
        CostSnapshot {
            fitness_evals: 0,
            simulated_ms: 0,
            critical_path_ms: 0,
        }
    }

    /// Run one slice of at most `slice_iterations` update cycles. Errors
    /// are latched into the runner (this is called inside a parallel
    /// region); the daemon surfaces them at the next barrier.
    pub fn run_slice(&mut self, slice_iterations: usize) {
        if !self.is_active() {
            return;
        }
        let _span = mwu_core::prof::span(mwu_core::prof::Phase::SliceRun);
        if let Err(e) = self.try_slice(slice_iterations.max(1)) {
            self.error = Some(e);
        }
    }

    /// Latch a panic caught by the daemon's `catch_unwind` around this
    /// session's slice; the next barrier quarantines it. The runner's
    /// in-memory state may be mid-slice garbage afterwards, but nothing
    /// durable advanced (persistence is crash-ordered), so the retained
    /// checkpoint still resumes byte-identically.
    pub fn latch_panic(&mut self, payload: Box<dyn std::any::Any + Send>) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        self.error = Some(SessionError::Panicked(message));
    }

    /// If an error is latched, quarantine the session: build the
    /// [`QuarantineRecord`], write `quarantine.json` atomically
    /// (best-effort — the disk that broke the session may refuse the
    /// post-mortem too; the in-memory record still reaches the summary),
    /// and deactivate the session while retaining its durable checkpoint.
    /// Returns `true` if a quarantine happened.
    pub fn quarantine_if_failed(&mut self) -> bool {
        let Some(error) = self.error.take() else {
            return false;
        };
        let (kind, op, path, attempts, errors) = match &error {
            SessionError::Storage(f) => (
                "storage",
                Some(f.op.name().to_string()),
                Some(f.path.clone()),
                f.attempts,
                f.errors.clone(),
            ),
            SessionError::Panicked(m) => ("panic", None, None, 1, vec![m.clone()]),
            SessionError::Io(e) => ("io", None, None, 1, vec![e.to_string()]),
            SessionError::Checkpoint(e) => ("checkpoint", None, None, 1, vec![e.to_string()]),
            SessionError::Corrupt(m) => ("corrupt", None, None, 1, vec![m.clone()]),
            SessionError::Intractable(m) => ("intractable", None, None, 1, vec![m.clone()]),
        };
        let record = QuarantineRecord {
            schema: QUARANTINE_SCHEMA.into(),
            job_id: self.job.id.clone(),
            tenant: self.job.tenant.clone(),
            kind: kind.into(),
            op,
            path,
            attempts,
            errors,
            last_checkpoint_iteration: self.checkpoint.as_ref().map(|c| c.iteration),
            last_durable_trace_len: self.durable_trace_len,
        };
        let mut doc = record.to_json();
        doc.push('\n');
        let target = self.quarantine_path();
        let vfs = Arc::clone(&self.vfs);
        let policy = self.retry;
        // catch_unwind: the same bug that panicked the session may live
        // in the persistence path itself — a quarantine must never be
        // able to take the daemon down with it.
        let mut retries = self.io_retries;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = with_retries(
                &policy,
                StorageOp::AtomicWrite,
                &target,
                &mut retries,
                || vfs.write_atomic(&target, doc.as_bytes()),
            );
        }));
        self.io_retries = retries;
        self.report = None;
        self.quarantine = Some(record);
        true
    }

    fn try_slice(&mut self, slice: usize) -> Result<(), SessionError> {
        let arms = effective_arms(self.data.pool.len(), &self.config);
        match self.job.algorithm {
            VariantChoice::Standard => {
                self.drive(StandardMwu::new(arms, StandardConfig::default()), slice)
            }
            VariantChoice::Slate => self.drive(SlateMwu::new(arms, SlateConfig::default()), slice),
            VariantChoice::Distributed => {
                let alg = DistributedMwu::try_new(arms, DistributedConfig::default())
                    .map_err(|e| SessionError::Intractable(e.to_string()))?;
                self.drive(alg, slice)
            }
        }
    }

    fn drive<A>(&mut self, mut alg: A, slice: usize) -> Result<(), SessionError>
    where
        A: MwuAlgorithm + Serialize + Deserialize,
    {
        // Fresh per-slice ledger; repair_resumable restores it from the
        // checkpoint when resuming, so totals stay absolute.
        let ledger = CostLedger::new();
        let mut sink = SuppressRunStart {
            inner: JsonlSink::new(Vec::new()),
            suppress: self.checkpoint.is_some(),
        };
        let control = SessionControl {
            checkpoint: None,
            halt_after_iterations: Some(slice),
        };
        let result = repair_resumable(
            &self.data.scenario,
            &self.data.pool,
            &mut alg,
            &self.config,
            Some(&ledger),
            &mut sink,
            &control,
            self.checkpoint.as_ref(),
        )?;
        self.append_trace(&sink.inner.into_inner())?;
        match result {
            SessionResult::Halted { checkpoint } => {
                let meta = SessionMeta {
                    version: META_VERSION,
                    job_id: self.job.id.clone(),
                    trace_len: self.trace_len,
                    // Single-segment sessions omit the list so their metas
                    // stay byte-identical to the pre-rotation format.
                    segments: (self.segments.len() > 1).then(|| self.segments.clone()),
                    checkpoint: *checkpoint,
                };
                let mut doc = serde_json::to_string(&meta).expect("meta serializes");
                doc.push('\n');
                let path = self.meta_path();
                let _span = mwu_core::prof::span(mwu_core::prof::Phase::SessionReplace);
                if self.group_commit {
                    // Stage the vouch: the tmp is written now, but the
                    // rename (and the checkpoint promotion that lets
                    // budgets charge this slice) waits for the barrier
                    // that makes the trace bytes it vouches for durable.
                    self.retrying(StorageOp::AtomicWrite, &path, |vfs| {
                        vfs.write_atomic_deferred(&path, doc.as_bytes())
                    })?;
                    self.staged.docs.push(path);
                    self.staged.meta = Some((meta.trace_len, meta.checkpoint));
                } else {
                    self.retrying(StorageOp::AtomicWrite, &path, |vfs| {
                        vfs.write_atomic(&path, doc.as_bytes())
                    })?;
                    self.durable_trace_len = meta.trace_len;
                    self.checkpoint = Some(meta.checkpoint);
                }
            }
            SessionResult::Complete(outcome) => {
                let report = SessionReport::completed(&self.job, outcome);
                let mut doc = report.to_json();
                doc.push('\n');
                let path = self.report_path();
                if self.group_commit {
                    self.retrying(StorageOp::AtomicWrite, &path, |vfs| {
                        vfs.write_atomic_deferred(&path, doc.as_bytes())
                    })?;
                    self.staged.docs.push(path);
                    self.staged.removals.push(self.meta_path());
                    self.staged.report = Some(report);
                } else {
                    self.retrying(StorageOp::AtomicWrite, &path, |vfs| {
                        vfs.write_atomic(&path, doc.as_bytes())
                    })?;
                    // The checkpoint is spent; its absence (with a report
                    // present) is unambiguous on reload. The removal goes
                    // through the same retry path so a hostile disk can't
                    // silently leave stale state — exhaustion quarantines,
                    // and the next fault-free open heals the leftovers.
                    let meta = self.meta_path();
                    if self.vfs.exists(&meta) {
                        self.retrying(StorageOp::Remove, &meta, |vfs| vfs.remove_file(&meta))?;
                    }
                    self.durable_trace_len = self.trace_len;
                    self.report = Some(report);
                }
            }
        }
        Ok(())
    }

    /// Switch this runner to deferred durability: slice artifacts are
    /// staged, the daemon's round barrier makes them durable in one
    /// batched [`Vfs::sync_barrier`] pass, and [`SessionRunner::commit_epoch`]
    /// then publishes them. Off by default — standalone runners (and
    /// `mwrepair_run`) keep the eager per-slice fsync discipline.
    pub fn set_group_commit(&mut self, enabled: bool) {
        self.group_commit = enabled;
    }

    /// Paths whose staged bytes this epoch's barrier must make durable:
    /// the trace segments appended to plus the `<doc>.tmp` of every
    /// staged atomic replace. A vfs whose `write_atomic_deferred` falls
    /// back to the eager default leaves no tmp behind (the rename
    /// already happened); the sync target is then the final path.
    /// Empty outside group-commit mode.
    pub(crate) fn staged_sync_paths(&self) -> Vec<PathBuf> {
        let mut paths = self.staged.appends.clone();
        paths.extend(self.staged.docs.iter().map(|d| {
            let tmp = tmp_path(d);
            if self.vfs.exists(&tmp) {
                tmp
            } else {
                d.clone()
            }
        }));
        paths
    }

    /// Re-run one staged path's barrier sync individually after the
    /// batched pass failed for it, under the session's retry policy.
    /// Exhaustion latches the error: the next barrier quarantines this
    /// session alone, without aborting the rest of the epoch.
    pub(crate) fn retry_staged_sync(&mut self, path: &Path) {
        if self.error.is_some() {
            return;
        }
        let p = path.to_path_buf();
        if let Err(e) = self.retrying(StorageOp::SyncFile, &p, |vfs| vfs.sync_file(&p)) {
            self.latch(e);
        }
    }

    /// Commit the current durability epoch after the barrier made its
    /// staged bytes durable: publish staged replaces (rename
    /// `<doc>.tmp` over `<doc>`), apply staged removals, then promote
    /// the staged checkpoint/report — the order that keeps the vouch
    /// contract (no `session.json` durable before its trace bytes).
    /// Sessions with a latched error discard their stage instead:
    /// `durable_trace_len` stays at the last vouched value, so the
    /// quarantine post-mortem and a later re-arm see exactly the durable
    /// prefix. No-op when nothing is staged.
    pub(crate) fn commit_epoch(&mut self) {
        let stage = std::mem::take(&mut self.staged);
        if stage.is_empty() || self.error.is_some() {
            return;
        }
        for doc in &stage.docs {
            if let Err(e) = self.retrying(StorageOp::Rename, doc, |vfs| vfs.commit_atomic(doc)) {
                self.latch(e);
                return;
            }
        }
        for path in &stage.removals {
            if self.vfs.exists(path) {
                if let Err(e) = self.retrying(StorageOp::Remove, path, |vfs| vfs.remove_file(path))
                {
                    self.latch(e);
                    return;
                }
            }
        }
        if let Some((trace_len, checkpoint)) = stage.meta {
            self.durable_trace_len = trace_len;
            self.checkpoint = Some(checkpoint);
        }
        if let Some(report) = stage.report {
            self.durable_trace_len = self.trace_len;
            self.report = Some(report);
        }
    }

    /// Finish the session as budget-exhausted: write the durable report
    /// from the last checkpoint, which stays on disk so the session can be
    /// resumed after a budget raise (delete `report.json` to re-arm it).
    pub fn finish_budget_exhausted(&mut self) -> Result<(), SessionError> {
        if self.report.is_some() {
            return Ok(());
        }
        let ck = self.checkpoint.as_ref().ok_or_else(|| {
            SessionError::Corrupt("budget halt before any slice completed".into())
        })?;
        let report = SessionReport::budget_exhausted(&self.job, ck);
        let mut doc = report.to_json();
        doc.push('\n');
        let path = self.report_path();
        self.retrying(StorageOp::AtomicWrite, &path, |vfs| {
            vfs.write_atomic(&path, doc.as_bytes())
        })?;
        self.report = Some(report);
        Ok(())
    }

    /// Path of the session's JSONL trace — segment 0. Rotated sessions
    /// continue in the numbered segments of [`SessionRunner::trace_segment_path`].
    pub fn trace_path(&self) -> PathBuf {
        self.dir.join("trace.jsonl")
    }

    /// Path of trace segment `i`: segment 0 is `trace.jsonl` (so uncapped
    /// sessions are laid out exactly as before rotation existed), later
    /// segments are `trace.001.jsonl`, `trace.002.jsonl`, …
    pub fn trace_segment_path(&self, i: usize) -> PathBuf {
        if i == 0 {
            self.trace_path()
        } else {
            self.dir.join(format!("trace.{i:03}.jsonl"))
        }
    }

    /// Paths of every trace segment the session currently has bytes in,
    /// in concatenation order.
    pub fn trace_segment_paths(&self) -> Vec<PathBuf> {
        (0..self.segments.len().max(1))
            .map(|i| self.trace_segment_path(i))
            .collect()
    }

    /// Read the logical trace: the in-order concatenation of all segments.
    /// Byte-identical to the single `trace.jsonl` of an uncapped run.
    pub fn read_trace(&mut self) -> Result<Vec<u8>, SessionError> {
        let mut out = Vec::new();
        for i in 0..self.segments.len().max(1) {
            let seg = self.trace_segment_path(i);
            if !self.vfs.exists(&seg) {
                continue;
            }
            let bytes = self.retrying(StorageOp::Read, &seg, |vfs| vfs.read(&seg))?;
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }

    /// Path of the session's durable report.
    pub fn report_path(&self) -> PathBuf {
        self.dir.join("report.json")
    }

    /// Path of the session's quarantine post-mortem.
    pub fn quarantine_path(&self) -> PathBuf {
        self.dir.join("quarantine.json")
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join("session.json")
    }

    fn append_trace(&mut self, bytes: &[u8]) -> Result<(), SessionError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let _span = mwu_core::prof::span(mwu_core::prof::Phase::TraceAppend);
        // Rotation rule: a slice's bytes land wholly in the current (last)
        // segment; once a segment has reached the cap, the *next* append
        // opens a fresh one. Boundaries are therefore a pure function of
        // the durable per-segment lengths — a resumed session re-derives
        // them identically from `session.json`.
        if self.segments.is_empty() {
            self.segments.push(0);
        }
        let last = self.segments.len() - 1;
        let target = match self.segment_cap {
            Some(cap) if self.segments[last] >= cap => {
                self.segments.push(0);
                last + 1
            }
            _ => last,
        };
        let path = self.trace_segment_path(target);
        let expect = self.segments[target];
        let mut first = true;
        let deferred = self.group_commit;
        self.retrying(StorageOp::Append, &path, |vfs| {
            // A failed attempt may have persisted a torn prefix; restore
            // the file to the known-good length before re-appending so
            // every retry writes the identical bytes at the identical
            // offset.
            if !first {
                vfs.truncate_sync(&path, expect)?;
            }
            first = false;
            if deferred {
                vfs.append_deferred(&path, bytes)
            } else {
                vfs.append_sync(&path, bytes)
            }
        })?;
        if deferred {
            self.staged.appends.push(path);
        }
        self.segments[target] += bytes.len() as u64;
        self.trace_len += bytes.len() as u64;
        Ok(())
    }
}

/// Per-slice observer: forwards everything to the inner sink except the
/// `RunStart` the driver re-emits at every resumed `repair_resumable`
/// call, so the concatenated slice traces equal one uninterrupted trace.
struct SuppressRunStart<O> {
    inner: O,
    suppress: bool,
}

impl<O: Observer> Observer for SuppressRunStart<O> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn on_event(&mut self, event: &TraceEvent) {
        self.inner.on_event(event);
    }

    fn on_run_start(&mut self, e: RunStartEvent) {
        if !self.suppress {
            self.inner.on_run_start(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ScenarioSpec;
    use crate::vfs::{FaultVfs, StorageFaultConfig, StorageFaultPlan};
    use std::io::Write;

    fn test_job(id: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            tenant: "t0".into(),
            scenario: ScenarioSpec::Synthetic {
                name: "session-test".into(),
                options: 24,
                x_star: 6,
                statements: 200,
                tests: 10,
                repair_rate: 0.0,
                world_seed: 5,
                pool_size: None,
            },
            algorithm: VariantChoice::Standard,
            seed: 11,
            max_iterations: 9,
        }
    }

    fn data_for(job: &JobSpec) -> Arc<ScenarioData> {
        let scenario = match &job.scenario {
            ScenarioSpec::Synthetic { .. } | ScenarioSpec::Catalog { .. } => {
                job.scenario.build().unwrap()
            }
        };
        let pool = scenario.build_pool(1, None);
        Arc::new(ScenarioData { scenario, pool })
    }

    fn tmp_workdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mwrd-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_to_completion(workdir: &Path, job: &JobSpec, slice: usize) -> (Vec<u8>, String) {
        let data = data_for(job);
        let mut s = SessionRunner::open(job.clone(), data, workdir).unwrap();
        for _ in 0..1000 {
            if !s.is_active() {
                break;
            }
            s.run_slice(slice);
            if let Some(e) = s.take_error() {
                panic!("slice error: {e}");
            }
        }
        assert!(s.report().is_some(), "session did not finish");
        let trace = std::fs::read(s.trace_path()).unwrap();
        let report = std::fs::read_to_string(s.report_path()).unwrap();
        (trace, report)
    }

    #[test]
    fn sliced_trace_matches_uninterrupted_repair_observed() {
        let job = test_job("slice-eq");
        let data = data_for(&job);
        // Uninterrupted library-level run with a plain JSONL sink.
        let mut config = MwRepairConfig::seeded(job.seed);
        config.max_iterations = job.max_iterations;
        let arms = effective_arms(data.pool.len(), &config);
        let mut alg = StandardMwu::new(arms, StandardConfig::default());
        let mut sink = JsonlSink::new(Vec::new());
        mwrepair::repair_observed(
            &data.scenario,
            &data.pool,
            &mut alg,
            &config,
            None,
            &mut sink,
        );
        let reference = sink.into_inner();

        let workdir = tmp_workdir("slice-eq");
        let (trace, _) = run_to_completion(&workdir, &job, 2);
        assert_eq!(
            trace, reference,
            "sliced daemon trace differs from the uninterrupted library trace"
        );
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn slice_size_does_not_change_trace_bytes() {
        let job = test_job("slice-size");
        let wa = tmp_workdir("slice-a");
        let wb = tmp_workdir("slice-b");
        let (ta, ra) = run_to_completion(&wa, &job, 2);
        let (tb, rb) = run_to_completion(&wb, &job, 7);
        assert_eq!(ta, tb);
        assert_eq!(ra, rb);
        std::fs::remove_dir_all(&wa).unwrap();
        std::fs::remove_dir_all(&wb).unwrap();
    }

    #[test]
    fn reopen_mid_flight_resumes_byte_identically() {
        let job = test_job("reopen");
        let reference_dir = tmp_workdir("reopen-ref");
        let (reference_trace, reference_report) = run_to_completion(&reference_dir, &job, 3);

        let workdir = tmp_workdir("reopen");
        let data = data_for(&job);
        // Two slices, then drop the runner (simulated daemon death).
        {
            let mut s = SessionRunner::open(job.clone(), Arc::clone(&data), &workdir).unwrap();
            s.run_slice(3);
            s.run_slice(3);
            assert!(s.is_active());
        }
        // Re-open and also simulate a torn post-meta append.
        {
            let trace_path = workdir
                .join("tenants")
                .join(&job.tenant)
                .join(&job.id)
                .join("trace.jsonl");
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&trace_path)
                .unwrap();
            f.write_all(b"{\"torn\":").unwrap();
        }
        let mut s = SessionRunner::open(job.clone(), data, &workdir).unwrap();
        while s.is_active() {
            s.run_slice(3);
            assert!(s.take_error().is_none());
        }
        let trace = std::fs::read(s.trace_path()).unwrap();
        let report = std::fs::read_to_string(s.report_path()).unwrap();
        assert_eq!(trace, reference_trace, "resume changed the trace bytes");
        assert_eq!(report, reference_report);
        std::fs::remove_dir_all(&workdir).unwrap();
        std::fs::remove_dir_all(&reference_dir).unwrap();
    }

    #[test]
    fn reopen_after_completion_is_terminal() {
        let job = test_job("done");
        let workdir = tmp_workdir("done");
        let (_, report) = run_to_completion(&workdir, &job, 4);
        let data = data_for(&job);
        let s = SessionRunner::open(job.clone(), data, &workdir).unwrap();
        assert!(!s.is_active());
        assert!(!s.completed_this_run());
        assert_eq!(s.report().unwrap().to_json() + "\n", report);
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn transient_faults_retry_to_byte_identical_completion() {
        let job = test_job("transient");
        let clean = tmp_workdir("transient-ref");
        let (reference_trace, reference_report) = run_to_completion(&clean, &job, 3);

        let workdir = tmp_workdir("transient");
        let data = data_for(&job);
        // 30% per-op EIO: with 10 retries allowed every op eventually
        // lands, and the bytes must not care that it took retries.
        // Slice of 1 maximizes op count (slice size is byte-invariant),
        // so the adversary is all but guaranteed to fire.
        let vfs = Arc::new(FaultVfs::new(StorageFaultPlan::new(
            41,
            StorageFaultConfig::eio(0.3),
        )));
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: 1,
        };
        let mut s =
            SessionRunner::open_on(job.clone(), data, &workdir, vfs.clone(), policy).unwrap();
        while s.is_active() {
            s.run_slice(1);
            if let Some(e) = s.take_error() {
                panic!("retries should have absorbed the faults: {e}");
            }
        }
        assert!(vfs.injected_faults() > 0, "adversary never fired");
        assert!(s.io_retries() > 0, "no retries recorded");
        let trace = std::fs::read(s.trace_path()).unwrap();
        let report = std::fs::read_to_string(s.report_path()).unwrap();
        assert_eq!(trace, reference_trace);
        assert_eq!(report, reference_report);
        std::fs::remove_dir_all(&workdir).unwrap();
        std::fs::remove_dir_all(&clean).unwrap();
    }

    #[test]
    fn quarantine_then_rearm_completes_byte_identically() {
        let job = test_job("quarantine");
        let clean = tmp_workdir("quarantine-ref");
        let (reference_trace, reference_report) = run_to_completion(&clean, &job, 3);

        let workdir = tmp_workdir("quarantine");
        let data = data_for(&job);
        // Run two clean slices, then hand the session a disk hostile
        // enough to exhaust the (tiny) retry budget.
        {
            let mut s = SessionRunner::open(job.clone(), Arc::clone(&data), &workdir).unwrap();
            s.run_slice(3);
            s.run_slice(3);
            assert!(s.is_active());
        }
        let durable_len;
        {
            let vfs = Arc::new(FaultVfs::new(StorageFaultPlan::new(
                7,
                StorageFaultConfig::eio(0.95),
            )));
            let policy = RetryPolicy {
                max_attempts: 1,
                base_delay: 1,
            };
            let mut s =
                SessionRunner::open_on(job.clone(), Arc::clone(&data), &workdir, vfs, policy)
                    .unwrap();
            let mut guard = 0;
            while s.is_active() && guard < 100 {
                s.run_slice(3);
                guard += 1;
            }
            assert!(s.quarantine_if_failed(), "a 95% adversary must fail it");
            let record = s.quarantine().unwrap();
            assert_eq!(record.schema, QUARANTINE_SCHEMA);
            assert_eq!(record.job_id, job.id);
            assert!(!record.errors.is_empty(), "post-mortem lost the chain");
            durable_len = record.last_durable_trace_len;
            assert!(!s.is_active(), "quarantined session must deactivate");
        }
        // Re-arm on a working disk: the post-mortem clears and the
        // session resumes from its durable checkpoint to the same bytes.
        let mut s = SessionRunner::open(job.clone(), data, &workdir).unwrap();
        assert!(s.is_active(), "re-open did not re-arm");
        while s.is_active() {
            s.run_slice(3);
            assert!(s.take_error().is_none());
        }
        assert!(
            !s.quarantine_path().exists(),
            "quarantine.json survived re-arm"
        );
        let trace = std::fs::read(s.trace_path()).unwrap();
        assert!(durable_len <= trace.len() as u64);
        let report = std::fs::read_to_string(s.report_path()).unwrap();
        assert_eq!(trace, reference_trace, "re-armed trace bytes diverged");
        assert_eq!(report, reference_report);
        std::fs::remove_dir_all(&workdir).unwrap();
        std::fs::remove_dir_all(&clean).unwrap();
    }

    #[test]
    fn poisoned_tmp_files_never_shadow_a_resume() {
        let job = test_job("tmp-sweep");
        let clean = tmp_workdir("tmp-sweep-ref");
        let (reference_trace, reference_report) = run_to_completion(&clean, &job, 3);

        let workdir = tmp_workdir("tmp-sweep");
        let data = data_for(&job);
        {
            let mut s = SessionRunner::open(job.clone(), Arc::clone(&data), &workdir).unwrap();
            s.run_slice(3);
            assert!(s.is_active());
        }
        // A crash mid-atomic-write strands partial tmp files; poison all
        // three staging names with garbage.
        let dir = workdir.join("tenants").join(&job.tenant).join(&job.id);
        for name in ["session.json.tmp", "report.json.tmp", "quarantine.json.tmp"] {
            std::fs::write(dir.join(name), b"{\"version\":9999,\"garbage").unwrap();
        }
        let mut s = SessionRunner::open(job.clone(), data, &workdir).unwrap();
        assert!(s.is_active(), "poisoned tmp derailed the resume");
        for name in ["session.json.tmp", "report.json.tmp", "quarantine.json.tmp"] {
            assert!(!dir.join(name).exists(), "{name} survived the sweep");
        }
        while s.is_active() {
            s.run_slice(3);
            assert!(s.take_error().is_none());
        }
        let trace = std::fs::read(s.trace_path()).unwrap();
        let report = std::fs::read_to_string(s.report_path()).unwrap();
        assert_eq!(trace, reference_trace);
        assert_eq!(report, reference_report);
        std::fs::remove_dir_all(&workdir).unwrap();
        std::fs::remove_dir_all(&clean).unwrap();
    }

    /// Drive an `open_with`-rotated session to completion; returns the
    /// logical trace, the report, and the number of segments on disk.
    fn run_rotated_to_completion(
        workdir: &Path,
        job: &JobSpec,
        slice: usize,
        cap: u64,
    ) -> (Vec<u8>, String, usize) {
        let data = data_for(job);
        let mut s = SessionRunner::open_with(
            job.clone(),
            data,
            workdir,
            Arc::new(RealVfs),
            RetryPolicy::default(),
            Some(cap),
        )
        .unwrap();
        for _ in 0..1000 {
            if !s.is_active() {
                break;
            }
            s.run_slice(slice);
            if let Some(e) = s.take_error() {
                panic!("slice error: {e}");
            }
        }
        assert!(s.report().is_some(), "rotated session did not finish");
        let segments = s.trace_segment_paths().len();
        let trace = s.read_trace().unwrap();
        let report = std::fs::read_to_string(s.report_path()).unwrap();
        (trace, report, segments)
    }

    #[test]
    fn rotated_segments_concatenate_to_uncapped_trace() {
        let job = test_job("rot-concat");
        let ref_dir = tmp_workdir("rot-concat-ref");
        let (reference_trace, reference_report) = run_to_completion(&ref_dir, &job, 3);

        let workdir = tmp_workdir("rot-concat");
        let (trace, report, segments) = run_rotated_to_completion(&workdir, &job, 3, 200);
        assert!(
            segments >= 2,
            "a 200-byte cap must rotate this trace ({} bytes)",
            reference_trace.len()
        );
        assert_eq!(
            trace, reference_trace,
            "segment concatenation differs from the uncapped trace"
        );
        assert_eq!(report, reference_report);
        std::fs::remove_dir_all(&ref_dir).unwrap();
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn uncapped_sessions_keep_the_single_file_layout() {
        // No cap => exactly the pre-rotation on-disk shape: one
        // trace.jsonl and no numbered segments.
        let job = test_job("rot-uncapped");
        let workdir = tmp_workdir("rot-uncapped");
        let _ = run_to_completion(&workdir, &job, 3);
        let dir = workdir.join("tenants").join(&job.tenant).join(&job.id);
        assert!(dir.join("trace.jsonl").exists());
        assert!(!dir.join("trace.001.jsonl").exists());
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn rotation_kill_resume_rederives_boundaries() {
        let job = test_job("rot-resume");
        let ref_dir = tmp_workdir("rot-resume-ref");
        let (reference_trace, reference_report) = run_to_completion(&ref_dir, &job, 3);

        let workdir = tmp_workdir("rot-resume");
        let data = data_for(&job);
        let open = |cap: u64| {
            SessionRunner::open_with(
                job.clone(),
                Arc::clone(&data),
                &workdir,
                Arc::new(RealVfs),
                RetryPolicy::default(),
                Some(cap),
            )
            .unwrap()
        };
        // Two slices under a tiny cap, then drop mid-flight (daemon death).
        let last_segment = {
            let mut s = open(150);
            s.run_slice(3);
            s.run_slice(3);
            assert!(s.is_active());
            assert!(
                s.trace_segment_paths().len() >= 2,
                "kill must land after at least one rotation"
            );
            s.trace_segment_paths().last().unwrap().clone()
        };
        // Torn append past the durable boundary of the *last* segment.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&last_segment)
                .unwrap();
            f.write_all(b"{\"Iteration\":{\"torn").unwrap();
        }
        // Resume under a *different* cap: boundaries of existing segments
        // are re-derived from the durable lengths, new bytes follow the
        // new cap, and the logical concatenation still matches.
        let mut s = open(400);
        while s.is_active() {
            s.run_slice(3);
            assert!(s.take_error().is_none());
        }
        assert_eq!(s.read_trace().unwrap(), reference_trace);
        assert_eq!(
            std::fs::read_to_string(s.report_path()).unwrap(),
            reference_report
        );
        std::fs::remove_dir_all(&ref_dir).unwrap();
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn completed_rotated_session_reopens_with_full_trace() {
        let job = test_job("rot-done");
        let ref_dir = tmp_workdir("rot-done-ref");
        let (reference_trace, _) = run_to_completion(&ref_dir, &job, 3);

        let workdir = tmp_workdir("rot-done");
        let _ = run_rotated_to_completion(&workdir, &job, 3, 200);
        // A fresh daemon reopening the finished session must recover the
        // segment list from disk (the meta is gone once the report lands).
        let mut s = SessionRunner::open_with(
            job.clone(),
            data_for(&job),
            &workdir,
            Arc::new(RealVfs),
            RetryPolicy::default(),
            Some(200),
        )
        .unwrap();
        assert!(!s.is_active(), "completed session stays terminal");
        assert_eq!(s.read_trace().unwrap(), reference_trace);
        std::fs::remove_dir_all(&ref_dir).unwrap();
        std::fs::remove_dir_all(&workdir).unwrap();
    }

    #[test]
    fn rotation_under_transient_faults_is_byte_identical() {
        let job = test_job("rot-faults");
        let ref_dir = tmp_workdir("rot-faults-ref");
        let (reference_trace, reference_report) = run_to_completion(&ref_dir, &job, 2);

        let workdir = tmp_workdir("rot-faults");
        // 30% per-op EIO with generous retries: every op eventually
        // lands, and rotation must not care that it took retries.
        let plan = StorageFaultPlan::new(97, StorageFaultConfig::eio(0.3));
        let vfs = Arc::new(FaultVfs::rooted(plan, &workdir));
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: 1,
        };
        let mut s = SessionRunner::open_with(
            job.clone(),
            data_for(&job),
            &workdir,
            vfs,
            policy,
            Some(180),
        )
        .unwrap();
        for _ in 0..1000 {
            if !s.is_active() {
                break;
            }
            s.run_slice(2);
            if let Some(e) = s.take_error() {
                panic!("retries should absorb this schedule: {e}");
            }
        }
        assert!(s.report().is_some());
        assert!(
            s.trace_segment_paths().len() >= 2,
            "cap must force rotation under faults too"
        );
        assert_eq!(s.read_trace().unwrap(), reference_trace);
        assert_eq!(
            std::fs::read_to_string(s.report_path()).unwrap(),
            reference_report
        );
        std::fs::remove_dir_all(&ref_dir).unwrap();
        std::fs::remove_dir_all(&workdir).unwrap();
    }
}
